"""FCY011 — interprocedural determinism taint analysis.

The per-file rules flag a wall-clock read or a global-RNG draw only when
it is *textually* inside simulation scope.  Hide the primitive behind a
helper in ``runtime/`` or ``obs/`` and the per-file pass goes blind:
``experiments/fig9.py`` calling ``run_sweep`` never mentions a clock,
yet its output fingerprints now depend on ``time.time()`` three frames
down.  This pass closes the gap with the call graph:

**Propagated nondeterminism.**  Every project function whose body calls
a wall-clock or global-RNG primitive is a taint source; taint propagates
backwards along call (and callback-reference) edges.  A finding is
emitted at each **scope boundary**: a call site in a simulation-scope
file whose direct callee is an out-of-scope tainted project function.
Boundary-only reporting is complete — a tainted callee *inside* sim
scope either trips FCY001/FCY002 itself or contains its own boundary
call site — and yields exactly one finding per entry chain.

**Taint barriers.**  Operational wall-clock use (run-log timestamps,
cache metadata) is sanctioned by suppressing FCY011 **on the primitive
call line**::

    "ts": time.time(),  # fancylint: disable=FCY011 -- operational log timestamp

A barrier stops taint from seeding at that site, so every caller chain
above it comes back clean; the engine counts the barrier as a *used*
suppression (FCY014).

**Seed provenance.**  Call sites passing a ``seed``/``*_seed`` argument
to the sharding planner, the fluid engine, or any ``runtime/`` executor
must pass a value that is either forwarded verbatim (name, attribute,
constant) or derived through :func:`repro.runtime.stable_seed`.
Arithmetic (``seed + shard_index``), ``hash(...)``, and other ad-hoc
derivations are flagged: they re-entangle RNG streams that the PR-8
regrouping-invariance contract requires to be pure functions of
``(base seed, entity id)``.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from .callgraph import CallGraph, FunctionInfo
from .diagnostics import Diagnostic
from .rules import _ALLOWED_NP_RANDOM_ATTRS, _RNG_DRAW_METHODS, _SIM_SCOPE, _WALL_CLOCK
from .suppress import is_suppressed

__all__ = ["TaintResult", "run_taint", "TAINT_CODE"]

TAINT_CODE = "FCY011"

#: files whose seed-accepting entry points are provenance sinks.
_SEED_SINK_FILES = ("fabric/sharding.py", "simulator/fluid.py")
_SEED_SINK_PREFIX = "runtime/"
_SEED_PARAM = re.compile(r"(^|_)seed$")

#: call wrappers that preserve seed provenance (pass-through coercions).
_SEED_PRESERVING_CALLS = frozenset({"int", "abs", "min", "max"})


@dataclass
class TaintResult:
    """Findings plus the barrier suppressions the analysis consumed."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: ``(path, line)`` of FCY011 barrier directives that stopped a
    #: taint source — *used* suppressions for FCY014.
    used_barriers: set[tuple[str, int]] = field(default_factory=set)
    #: qualname -> (primitive, chain) for introspection / tests.
    tainted: dict[str, tuple[str, tuple[str, ...]]] = field(default_factory=dict)


def _primitive_source(canonical: str) -> str | None:
    """Describe ``canonical`` if it is a nondeterminism primitive."""
    if canonical in _WALL_CLOCK:
        return f"wall-clock `{canonical}()`"
    head, _, attr = canonical.rpartition(".")
    if head == "random" and attr in (_RNG_DRAW_METHODS | {"seed"}):
        return f"global RNG `{canonical}()`"
    if head in ("numpy.random", "np.random") and attr not in _ALLOWED_NP_RANDOM_ATTRS:
        return f"global NumPy RNG `{canonical}()`"
    return None


def _in_sim_scope(rel_path: str | None) -> bool:
    return rel_path is not None and rel_path.startswith(_SIM_SCOPE)


def _seed_sink_params(fn: FunctionInfo, rel_path: str | None) -> list[str]:
    """Seed-named parameters of a provenance-sink function, if any."""
    if rel_path is None:
        return []
    if rel_path not in _SEED_SINK_FILES and not rel_path.startswith(_SEED_SINK_PREFIX):
        return []
    return [p for p in fn.params if _SEED_PARAM.search(p)]


def _local_assignment(fn_node: ast.AST, name: str) -> ast.expr | None:
    """Last simple single-target assignment to ``name`` in the function."""
    found: ast.expr | None = None
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and node.targets[0].id == name:
            found = node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name) \
                and node.target.id == name and node.value is not None:
            found = node.value
    return found


def _seed_expr_ok(expr: ast.expr, caller: FunctionInfo, graph: CallGraph,
                  depth: int = 0) -> tuple[bool, str]:
    """Is this seed argument expression provenance-clean?

    Returns ``(ok, reason)`` where ``reason`` names the violation kind.
    Conservative in the other direction than most of the linter: only
    *provably* ad-hoc derivations (arithmetic, ``hash``, unknown calls)
    are flagged; opaque names and attributes are trusted — their own
    producers are checked at their own call sites.
    """
    if isinstance(expr, (ast.Constant, ast.Attribute, ast.Subscript, ast.Starred)):
        return True, ""
    if isinstance(expr, ast.Name):
        if depth >= 2:
            return True, ""
        assigned = _local_assignment(caller.node, expr.id)
        if assigned is None:
            return True, ""
        return _seed_expr_ok(assigned, caller, graph, depth + 1)
    if isinstance(expr, ast.IfExp):
        for branch in (expr.body, expr.orelse):
            ok, reason = _seed_expr_ok(branch, caller, graph, depth)
            if not ok:
                return ok, reason
        return True, ""
    if isinstance(expr, ast.Call):
        dotted_parts: list[str] = []
        cursor: ast.expr = expr.func
        while isinstance(cursor, ast.Attribute):
            dotted_parts.append(cursor.attr)
            cursor = cursor.value
        if isinstance(cursor, ast.Name):
            dotted_parts.append(cursor.id)
        dotted = ".".join(reversed(dotted_parts)) if dotted_parts else ""
        if dotted:
            resolved = graph.resolve(caller.module, dotted)
            if resolved is not None and resolved.rsplit(".", 1)[-1] == "stable_seed":
                return True, ""
            if dotted == "stable_seed" or dotted.endswith(".stable_seed"):
                return True, ""
            if dotted == "hash":
                return False, "`hash()` (PYTHONHASHSEED-dependent)"
            if dotted in _SEED_PRESERVING_CALLS:
                for arg in expr.args:
                    ok, reason = _seed_expr_ok(arg, caller, graph, depth + 1)
                    if not ok:
                        return ok, reason
                return True, ""
        return False, f"ad-hoc call `{dotted or '<expr>'}(...)`"
    if isinstance(expr, (ast.BinOp, ast.UnaryOp, ast.BoolOp)):
        return False, "arithmetic on the seed"
    return True, ""


def run_taint(
    graph: CallGraph,
    rel_paths: Mapping[str, str | None],
    lines: Mapping[str, Sequence[str]],
    suppressions: Mapping[str, Mapping[int, frozenset[str]]],
) -> TaintResult:
    """Run both FCY011 analyses over a built call graph.

    ``rel_paths``/``lines``/``suppressions`` are keyed by the same path
    strings the graph was built from (the engine's AST cache keys).
    """
    result = TaintResult()

    def line_text(path: str, lineno: int) -> str:
        file_lines = lines.get(path, ())
        if 1 <= lineno <= len(file_lines):
            return file_lines[lineno - 1].strip()
        return ""

    # -- pass 1: seed primitive sources (honoring barriers) ---------------
    taint: dict[str, tuple[str, tuple[str, ...]]] = {}
    for caller in sorted(graph.external_calls):
        for canonical, node in graph.external_calls[caller]:
            desc = _primitive_source(canonical)
            if desc is None:
                continue
            fn = graph.functions.get(caller)
            if fn is None:
                continue
            file_supp = suppressions.get(fn.path, {})
            if is_suppressed(TAINT_CODE, node.lineno, file_supp):
                result.used_barriers.add((fn.path, node.lineno))
                continue
            if caller not in taint:
                taint[caller] = (desc, (caller,))

    # -- pass 2: propagate backwards over call/ref edges ------------------
    frontier = sorted(taint)
    while frontier:
        nxt: set[str] = set()
        for fn_name in frontier:
            desc, chain = taint[fn_name]
            for edge in sorted(graph.callers_of(fn_name),
                               key=lambda e: (e.caller, e.lineno, e.col)):
                if edge.caller not in taint:
                    taint[edge.caller] = (desc, (edge.caller, *chain))
                    nxt.add(edge.caller)
        frontier = sorted(nxt)
    result.tainted = taint

    # -- pass 3: report at sim-scope boundary call sites ------------------
    seen: set[tuple[str, int, int, str]] = set()
    diags: list[Diagnostic] = []
    for caller_name in sorted(graph.functions):
        fn = graph.functions[caller_name]
        if not _in_sim_scope(rel_paths.get(fn.path)):
            continue
        for edge in graph.callees_of(caller_name):
            callee = graph.functions.get(edge.callee)
            if callee is None or edge.callee not in taint:
                continue
            if _in_sim_scope(rel_paths.get(callee.path)):
                continue
            desc, chain = taint[edge.callee]
            via = " -> ".join(chain)
            verb = "passes callback" if edge.kind.startswith("ref") else "calls"
            key = (fn.path, edge.lineno, edge.col, edge.callee)
            if key in seen:
                continue
            seen.add(key)
            diags.append(Diagnostic(
                path=fn.path, line=edge.lineno, col=edge.col, code=TAINT_CODE,
                message=(
                    f"simulation-scope code {verb} `{edge.callee}`, which "
                    f"reaches {desc} via {via}"
                ),
                hint="thread the simulated clock / a seeded RNG into the "
                     "helper, or sanction the primitive line with "
                     "`# fancylint: disable=FCY011 -- <why>`",
                line_text=line_text(fn.path, edge.lineno),
            ))

    # -- pass 4: seed provenance at sink call sites -----------------------
    for caller_name in sorted(graph.functions):
        fn = graph.functions[caller_name]
        for edge in graph.callees_of(caller_name):
            if not edge.kind.startswith("call") or not isinstance(edge.node, ast.Call):
                continue
            callee = graph.functions.get(edge.callee)
            if callee is None:
                continue
            sink_params = _seed_sink_params(callee, rel_paths.get(callee.path))
            if not sink_params:
                continue
            params = list(callee.params)
            if callee.cls is not None and params and params[0] in ("self", "cls"):
                params = params[1:]
            bound: list[tuple[str, ast.expr]] = []
            for pos, arg in enumerate(edge.node.args):
                if isinstance(arg, ast.Starred):
                    continue
                if pos < len(params):
                    bound.append((params[pos], arg))
            for kw in edge.node.keywords:
                if kw.arg is not None:
                    bound.append((kw.arg, kw.value))
            for param, arg in bound:
                if not _SEED_PARAM.search(param):
                    continue
                ok, reason = _seed_expr_ok(arg, fn, graph)
                if ok:
                    continue
                key = (fn.path, edge.lineno, edge.col, f"seed:{param}")
                if key in seen:
                    continue
                seen.add(key)
                diags.append(Diagnostic(
                    path=fn.path, line=edge.lineno, col=edge.col,
                    code=TAINT_CODE,
                    message=(
                        f"seed argument `{param}` to `{edge.callee}` is "
                        f"derived via {reason}; seeds entering this sink "
                        "must come from stable_seed"
                    ),
                    hint="derive per-entity seeds with "
                         "repro.runtime.stable_seed(base, ...entity key...)",
                    line_text=line_text(fn.path, edge.lineno),
                ))

    result.diagnostics = sorted(diags)
    return result
