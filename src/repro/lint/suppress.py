"""Per-line ``# fancylint: disable=FCYnnn`` suppression comments.

A finding is suppressed when the physical line it is reported on carries
a trailing comment of the form::

    risky_call()  # fancylint: disable=FCY001
    other_call()  # fancylint: disable=FCY001,FCY004
    anything()    # fancylint: disable=all

Suppressions are parsed from the token stream (not a regex over raw
lines), so the marker inside a string literal does not suppress anything.
The engine records which suppressions actually fired so unused ones can
be reported — the suppression policy (``docs/STATIC_ANALYSIS.md``)
requires every suppression to carry its justification in the same
comment.
"""

from __future__ import annotations

import io
import re
import tokenize

_DIRECTIVE = re.compile(r"#\s*fancylint:\s*disable=([A-Za-z0-9_,\s]+|all)")

#: Sentinel rule set meaning "suppress every rule on this line".
ALL_CODES = frozenset({"all"})


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> set of suppressed rule codes (or ``ALL_CODES``).

    Tolerates syntactically broken files (returns what could be
    tokenized): the engine reports a syntax-error diagnostic separately.
    """
    suppressions: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if match is None:
                continue
            spec = match.group(1).strip()
            if spec.lower() == "all":
                codes = ALL_CODES
            else:
                codes = frozenset(
                    code.strip().upper() for code in spec.split(",") if code.strip()
                )
            line = token.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | codes
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return suppressions


def is_suppressed(code: str, line: int, suppressions: dict[int, frozenset[str]]) -> bool:
    """True when rule ``code`` is disabled on ``line``."""
    codes = suppressions.get(line)
    if codes is None:
        return False
    return codes is ALL_CODES or "all" in codes or code.upper() in codes
