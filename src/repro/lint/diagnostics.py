"""Diagnostic records and their ruff-style rendering.

A :class:`Diagnostic` is one finding: rule code, location, message and an
optional fix hint.  Rendering follows the ``file:line:col: CODE message``
convention so editors and CI annotators that already understand ruff /
flake8 output pick fancylint findings up for free.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One static-analysis finding.

    Attributes:
        path: file the finding is in (as given to the engine).
        line: 1-based source line.
        col: 1-based source column (AST ``col_offset`` + 1).
        code: rule code, e.g. ``"FCY001"``.
        message: what is wrong, with the offending expression quoted.
        hint: how to fix it (rendered after the message).
        line_text: stripped source line, used for the location-independent
            baseline fingerprint.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = ""
    line_text: str = field(default="", compare=False)

    def render(self) -> str:
        """``path:line:col: CODE message (hint: ...)`` — one line."""
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def fingerprint(self, occurrence: int = 0) -> str:
        """Location-independent identity for baseline matching.

        Hashes ``(code, path, stripped source line, occurrence index)``:
        stable when unrelated lines are inserted above the finding, and
        disambiguated when the same violating line appears several times
        in one file.
        """
        payload = json.dumps(
            [self.code, self.path, self.line_text, occurrence],
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_json(self) -> dict[str, object]:
        """Machine-readable form for ``--format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "hint": self.hint,
        }
