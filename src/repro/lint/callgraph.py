"""Project-wide symbol table and call graph for the deep lint passes.

The per-file rules (FCY001–FCY010) see one module at a time, so a
determinism hazard hidden behind a helper in *another* module is
invisible to them: ``experiments/foo.py`` calling a ``runtime`` helper
that reads ``time.time()`` never mentions a clock.  The whole-program
layer (``fancy-repro lint --deep``) closes that gap.  This module builds
its substrate:

* a **symbol table** of every function, method and class defined under
  the linted roots, keyed by dotted qualified name
  (``repro.core.protocol.FancySender.on_control``);
* an **import map** per module that resolves ``import``/``from``
  aliases — including relative imports — through re-export chains
  (``from ..runtime import stable_seed`` resolves to the def in
  ``repro.runtime.jobs``);
* a **call graph** whose edges come from three resolution strategies,
  in decreasing confidence order:

  1. direct calls to names resolved through the import map
     (module-level functions, classes);
  2. ``self.method(...)`` / method references inside a class body, and
     calls through locals whose type is pinned by a visible constructor
     call (``reporter = ProgressReporter(...); reporter.cell_done()``);
  3. attribute calls whose method name is defined by exactly **one**
     class in the whole project (unique-name resolution, marked
     ``heuristic``).

  Bare method references passed as arguments (timer callbacks:
  ``sim.schedule(dt, self._close_session)``) become edges too — a
  callback is a deferred call.

Resolution is deliberately conservative everywhere else: an attribute
call on an unknown receiver produces no edge, and the *unresolved*
canonical name (``time.time``) is recorded on the caller so taint
sources outside the project are still visible.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "CallEdge",
    "CallGraph",
    "FunctionInfo",
    "ModuleInfo",
    "build_callgraph",
    "module_name_for",
]


def module_name_for(path: str | Path) -> str:
    """Dotted module name of a file, from its ``__init__.py`` package chain.

    ``src/repro/core/protocol.py`` → ``repro.core.protocol`` (walking up
    while a sibling ``__init__.py`` exists); a loose file outside any
    package resolves to its bare stem.
    """
    file = Path(path).resolve()
    parts = [file.stem]
    cursor = file.parent
    while (cursor / "__init__.py").exists():
        parts.append(cursor.name)
        cursor = cursor.parent
    if parts[0] == "__init__":
        parts = parts[1:] or [file.parent.name]
    return ".".join(reversed(parts))


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str           #: ``repro.core.protocol.FancySender.on_control``
    module: str             #: ``repro.core.protocol``
    name: str               #: bare name (``on_control``)
    cls: str | None         #: owning class name, ``None`` for module level
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    lineno: int
    params: tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """Per-module import map and definitions."""

    name: str
    path: str
    tree: ast.Module
    #: True for ``__init__.py`` — its relative imports resolve against
    #: the package itself, not the parent package.
    is_package: bool = False
    #: local name -> dotted target (``stable_seed`` -> ``repro.runtime.stable_seed``)
    imports: dict[str, str] = field(default_factory=dict)
    #: names defined at module level (functions, classes, assignments)
    defines: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class CallEdge:
    """One caller → callee edge.

    ``kind`` is ``"call"`` for a direct invocation, ``"ref"`` for a bare
    function/method reference (callback registration), and carries a
    ``"heuristic"`` suffix when resolved by unique-name matching.
    """

    caller: str
    callee: str
    path: str
    lineno: int
    col: int
    kind: str = "call"
    #: the ``ast.Call`` (kind ``call``) or reference expression, for
    #: argument inspection by the taint pass; excluded from identity.
    node: ast.AST | None = field(default=None, compare=False, repr=False)


class CallGraph:
    """Symbol table + directed call graph over the linted file set."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: class qualname -> {method name -> method qualname}
        self.classes: dict[str, dict[str, str]] = {}
        self.edges: list[CallEdge] = []
        self._out: dict[str, list[CallEdge]] = {}
        self._in: dict[str, list[CallEdge]] = {}
        #: caller qualname -> [(canonical unresolved callee, node)]
        self.external_calls: dict[str, list[tuple[str, ast.Call]]] = {}

    # -- queries -----------------------------------------------------------

    def callees_of(self, qualname: str) -> list[CallEdge]:
        return self._out.get(qualname, [])

    def callers_of(self, qualname: str) -> list[CallEdge]:
        return self._in.get(qualname, [])

    def reachable_from(self, roots: set[str]) -> set[str]:
        """Qualnames transitively callable from ``roots`` (roots included)."""
        seen = set(roots)
        stack = list(roots)
        while stack:
            for edge in self.callees_of(stack.pop()):
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    stack.append(edge.callee)
        return seen

    def reaching(self, targets: set[str]) -> set[str]:
        """Qualnames that can transitively reach any of ``targets``."""
        seen = set(targets)
        stack = list(targets)
        while stack:
            for edge in self.callers_of(stack.pop()):
                if edge.caller not in seen:
                    seen.add(edge.caller)
                    stack.append(edge.caller)
        return seen

    def add_edge(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self._out.setdefault(edge.caller, []).append(edge)
        self._in.setdefault(edge.callee, []).append(edge)

    # -- name resolution ---------------------------------------------------

    def resolve(self, module: str, dotted: str, _depth: int = 0) -> str | None:
        """Resolve a dotted name used in ``module`` to a project qualname.

        Follows the import map and up to 8 re-export hops (package
        ``__init__`` files re-importing their submodules' names).
        Returns ``None`` for names outside the project.
        """
        if _depth > 8:
            return None
        info = self.modules.get(module)
        if info is None:
            return None
        head, _, rest = dotted.partition(".")
        target = info.imports.get(head)
        if target is None:
            if head in info.defines:
                qual = f"{module}.{head}" + (f".{rest}" if rest else "")
                return self._canonical_symbol(qual, module, _depth)
            return None
        qual = target + (f".{rest}" if rest else "")
        return self._canonical_symbol(qual, module, _depth)

    def _canonical_symbol(self, qual: str, origin: str, depth: int) -> str | None:
        """Normalize ``qual`` to a defined symbol, following re-exports."""
        if qual in self.functions or qual in self.classes:
            return qual
        # ``pkg.name`` where pkg is a module re-exporting ``name``.
        owner, _, leaf = qual.rpartition(".")
        if owner and owner != origin and owner in self.modules and leaf:
            resolved = self.resolve(owner, leaf, depth + 1)
            if resolved is not None:
                return resolved
        if qual in self.modules:
            return qual
        return None


# --------------------------------------------------------------------------
# builders
# --------------------------------------------------------------------------


def _collect_imports(info: ModuleInfo) -> None:
    pkg_parts = info.name.split(".")
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                info.imports[local] = alias.name if alias.asname else alias.name.split(".", 1)[0]
                if alias.asname:
                    info.imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against this module's package
                # (__package__ semantics: a plain module's package is its
                # parent, an __init__'s package is the module itself).
                drop = node.level - 1 if info.is_package else node.level
                base_parts = pkg_parts[: len(pkg_parts) - drop]
                base = ".".join(base_parts)
                module = f"{base}.{node.module}" if node.module else base
            else:
                module = node.module or ""
            if not module:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                info.imports[alias.asname or alias.name] = f"{module}.{alias.name}"


def _collect_definitions(graph: CallGraph, info: ModuleInfo) -> None:
    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _add_function(graph, info, node, cls=None)
            info.defines[node.name] = "function"
        elif isinstance(node, ast.ClassDef):
            cls_qual = f"{info.name}.{node.name}"
            graph.classes[cls_qual] = {}
            info.defines[node.name] = "class"
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    fn = _add_function(graph, info, item, cls=node.name)
                    graph.classes[cls_qual][item.name] = fn.qualname
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    info.defines[target.id] = "value"
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            info.defines[node.target.id] = "value"


def _add_function(graph: CallGraph, info: ModuleInfo,
                  node: ast.FunctionDef | ast.AsyncFunctionDef,
                  cls: str | None) -> FunctionInfo:
    qual = f"{info.name}.{cls}.{node.name}" if cls else f"{info.name}.{node.name}"
    args = node.args
    params = tuple(
        a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    )
    fn = FunctionInfo(
        qualname=qual, module=info.name, name=node.name, cls=cls,
        node=node, path=info.path, lineno=node.lineno, params=params,
    )
    graph.functions[qual] = fn
    return fn


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chain as a dotted string, else ``None``."""
    parts: list[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    return ".".join(reversed(parts))


def _local_types(fn: ast.FunctionDef | ast.AsyncFunctionDef,
                 graph: CallGraph, module: str) -> dict[str, str]:
    """Locals whose type is pinned by a visible constructor call.

    ``reporter = ProgressReporter(...)`` pins ``reporter``; a ternary
    pins through whichever branch constructs (``RunLog(...) if p else
    None``).  A later re-assignment to anything unrecognized unpins.
    """
    out: dict[str, str] = {}

    def class_of(expr: ast.expr) -> str | None:
        candidates = [expr]
        if isinstance(expr, ast.IfExp):
            candidates = [expr.body, expr.orelse]
        for cand in candidates:
            if isinstance(cand, ast.Call):
                dotted = _dotted(cand.func)
                if dotted is not None:
                    resolved = graph.resolve(module, dotted)
                    if resolved in graph.classes:
                        return resolved
        return None

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            cls = class_of(node.value)
            if cls is not None:
                out[name] = cls
            elif name in out:
                del out[name]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name) \
                and node.value is not None:
            cls = class_of(node.value)
            if cls is not None:
                out[node.target.id] = cls
    return out


def _unique_methods(graph: CallGraph) -> dict[str, str]:
    """Method names defined by exactly one class project-wide."""
    counts: dict[str, list[str]] = {}
    for methods in graph.classes.values():
        for name, qual in methods.items():
            counts.setdefault(name, []).append(qual)
    return {name: quals[0] for name, quals in counts.items() if len(quals) == 1}


def _resolve_callable(graph: CallGraph, info: ModuleInfo, expr: ast.expr,
                      cls_qual: str | None, local_types: dict[str, str],
                      unique: dict[str, str]) -> tuple[str | None, str]:
    """Resolve a call/reference target expression to (qualname, kind tag)."""
    # self.method / cls.method inside a class body
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        recv = expr.value.id
        if recv in ("self", "cls") and cls_qual is not None:
            target = graph.classes.get(cls_qual, {}).get(expr.attr)
            if target is not None:
                return target, "direct"
            return None, "direct"
        pinned = local_types.get(recv)
        if pinned is not None:
            target = graph.classes.get(pinned, {}).get(expr.attr)
            if target is not None:
                return target, "direct"
    dotted = _dotted(expr)
    if dotted is not None:
        resolved = graph.resolve(info.name, dotted)
        if resolved is not None:
            if resolved in graph.classes:
                # constructing a class runs its __init__
                init = graph.classes[resolved].get("__init__")
                return (init or resolved), "direct"
            if resolved in graph.functions:
                return resolved, "direct"
            return None, "direct"
    # unique-name fallback for attribute calls on unknown receivers
    if isinstance(expr, ast.Attribute) and expr.attr in unique:
        return unique[expr.attr], "heuristic"
    return None, "direct"


def _walk_function_calls(graph: CallGraph, info: ModuleInfo, fn: FunctionInfo,
                         unique: dict[str, str]) -> None:
    local_types = _local_types(fn.node, graph, info.name)
    cls_qual = f"{info.name}.{fn.cls}" if fn.cls else None
    caller = fn.qualname

    def add(expr: ast.expr, node: ast.AST, kind: str) -> None:
        target, tag = _resolve_callable(graph, info, expr, cls_qual,
                                        local_types, unique)
        if target is not None and target in graph.functions:
            suffix = "" if tag == "direct" else f"-{tag}"
            graph.add_edge(CallEdge(
                caller=caller, callee=target, path=info.path,
                lineno=getattr(node, "lineno", fn.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                kind=kind + suffix, node=node,
            ))

    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call):
            add(node.func, node, "call")
            dotted = _dotted(node.func)
            if dotted is not None:
                target, _tag = _resolve_callable(
                    graph, info, node.func, cls_qual, local_types, unique)
                if target is None:
                    graph.external_calls.setdefault(caller, []).append(
                        (_canonical_external(info, dotted), node))
            # bare function/method references in argument position are
            # deferred calls (timer callbacks, hook registration)
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(arg, (ast.Attribute, ast.Name)):
                    add(arg, arg, "ref")


def _canonical_external(info: ModuleInfo, dotted: str) -> str:
    """Canonicalize an unresolved name through the module's import map."""
    head, _, rest = dotted.partition(".")
    target = info.imports.get(head)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def _enclosing_functions(graph: CallGraph, info: ModuleInfo) -> list[FunctionInfo]:
    return [fn for fn in graph.functions.values() if fn.module == info.name]


def build_callgraph(parsed: list[tuple[str | Path, ast.Module]]) -> CallGraph:
    """Build the project call graph from ``(path, parsed tree)`` pairs.

    Trees come from the engine's AST cache — the graph never re-parses a
    file the per-file rules already parsed.
    """
    graph = CallGraph()
    infos: list[ModuleInfo] = []
    for path, tree in parsed:
        info = ModuleInfo(name=module_name_for(path), path=str(path), tree=tree,
                          is_package=Path(path).name == "__init__.py")
        # first module wins on name collisions (shadowed scratch copies)
        if info.name not in graph.modules:
            graph.modules[info.name] = info
            infos.append(info)
    for info in infos:
        _collect_imports(info)
        _collect_definitions(graph, info)
    unique = _unique_methods(graph)
    for info in infos:
        for fn in _enclosing_functions(graph, info):
            _walk_function_calls(graph, info, fn, unique)
    return graph
