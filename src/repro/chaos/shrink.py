"""Greedy fault-schedule shrinking and reproducer files.

When a soak run violates an invariant, the raw schedule may contain
faults that have nothing to do with the violation.  :func:`shrink`
re-runs the soak with one fault deleted at a time and keeps any deletion
that preserves a violation of the same invariant, iterating to a fixed
point (delta-debugging's ddmin specialised to single-element deletion —
schedules are at most a handful of faults, so the quadratic worst case
is a few dozen runs, further bounded by ``max_runs``).

Soundness leans on two repo-wide design rules: every fault owns a
private RNG seeded from its *original* schedule index
(:mod:`repro.chaos.schedule`), and both
:class:`~repro.simulator.failures.CompositeFailure` and
:class:`~repro.chaos.perturbations.ChaosModel` evaluate components
without short-circuiting.  Deleting one fault therefore never perturbs
the random streams of the survivors, so a kept deletion reproduces the
violation for the same mechanical reason the original did.

:func:`write_reproducer` pins the end state to a JSON file (uploaded as
a CI artifact by the chaos-soak job) with the exact command to replay
it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable

from .harness import SoakConfig, SoakResult, run_soak
from .schedule import FaultSpec

__all__ = ["shrink", "write_reproducer", "load_reproducer"]

RunFn = Callable[[list[FaultSpec]], SoakResult]


def _violated(result: SoakResult, invariants: set[str]) -> bool:
    return any(v.invariant in invariants for v in result.violations)


def shrink(
    schedule: list[FaultSpec],
    failing: SoakResult,
    run_fn: RunFn,
    max_runs: int = 48,
) -> tuple[list[FaultSpec], SoakResult, int]:
    """Minimise ``schedule`` while some originally-violated invariant stays
    violated.

    Returns ``(minimal_schedule, result_on_minimal, runs_used)``.  The
    returned result is always one that still exhibits a target
    violation, so its details can go straight into the reproducer.
    """
    targets = {v.invariant for v in failing.violations}
    current = list(schedule)
    best = failing
    runs = 0
    changed = True
    while changed and len(current) > 1 and runs < max_runs:
        changed = False
        for i in range(len(current)):
            if runs >= max_runs:
                break
            candidate = current[:i] + current[i + 1:]
            result = run_fn(candidate)
            runs += 1
            if _violated(result, targets):
                current = candidate
                best = result
                changed = True
                break  # restart the scan over the shorter schedule
    return current, best, runs


def shrink_result(
    config: SoakConfig,
    failing: SoakResult,
    max_runs: int = 48,
) -> tuple[list[FaultSpec], SoakResult, int]:
    """Convenience wrapper: shrink a failing run by replaying its config."""
    return shrink(
        failing.schedule, failing,
        lambda candidate: run_soak(config, candidate),
        max_runs=max_runs,
    )


def _replay_command(config: SoakConfig, path: str) -> str:
    cmd = (f"fancy-repro chaos --replay {path}")
    if config.regression:
        cmd += f" --regression {config.regression}"
    return cmd


def write_reproducer(
    path: str | Path,
    config: SoakConfig,
    schedule: list[FaultSpec],
    result: SoakResult,
    runs_used: int = 0,
) -> Path:
    """Persist a minimal failing schedule as a self-describing JSON file."""
    path = Path(path)
    doc = {
        "format": "fancy-chaos-reproducer/1",
        "config": config.to_dict(),
        "schedule": [s.to_dict() for s in schedule],
        "violations": [v.to_dict() for v in result.violations],
        "stats": result.stats,
        "shrink_runs": runs_used,
        "replay": _replay_command(config, str(path)),
    }
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_reproducer(path: str | Path) -> tuple[SoakConfig, list[FaultSpec]]:
    """Load a reproducer file back into a runnable (config, schedule)."""
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != "fancy-chaos-reproducer/1":
        raise ValueError(f"{path}: not a chaos reproducer file")
    config = SoakConfig.from_dict(doc["config"])
    schedule = [FaultSpec.from_dict(d) for d in doc["schedule"]]
    return config, schedule
