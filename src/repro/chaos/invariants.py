"""Soak-harness invariants I1–I6 (docs/ROBUSTNESS.md).

Each checker returns a list of :class:`Violation`; an empty list means
the invariant holds.  Checkers are pure observers — they never mutate
the simulation — and they are deliberately *attributive*: a failure
report is acceptable only if a fault of the right class was active
recently, and a persistent fault is acceptable only if it was reported.
That two-sidedness is what lets the harness catch both regressions that
*miss* failures and regressions that *invent* them (the
``--regression stale-session`` fixture trips the second kind).

The invariants:

* **I1 liveness** — no FSM sits in a timer-driven state without a
  pending timer (a deadlocked FSM can neither detect nor declare).
* **I2 session monotonicity** — sender session ids never regress;
  receiver ids never regress except across an observed receiver restart.
* **I3 attribution (no false flags)** — every loss flag is explained by
  an active loss-class fault scoped to that entry; every LINK_DOWN by an
  active control-affecting fault.
* **I4 eventual detection** — every persistent heavy loss fault is
  flagged on each traffic-bearing entry it covers (or escalated to
  LINK_DOWN when control died too).
* **I5 conservation** — per monitored link, after a full drain:
  ``delivered == tx − dropped_failure − dropped_chaos + dup_scheduled``;
  the process-wide packet pool holds only parked, unique packets.
* **I6 corruption integrity** — every delivered corrupted control
  message was rejected by exactly one hardened FSM:
  ``Σ fsm.rejected_corrupt == Σ chaos.corrupted_control``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.output import FailureKind, FailureLog
from repro.core.protocol import ReceiverState, SenderState
from repro.simulator.packet import POOL

from .schedule import ATTRIBUTION_SLACK_S, FaultSpec

__all__ = [
    "Violation",
    "SessionTracker",
    "check_liveness",
    "check_monotonicity",
    "check_attribution",
    "check_detection",
    "check_conservation",
    "check_pool",
    "check_integrity",
    "LinkInvariantObserver",
]


@dataclass(frozen=True)
class Violation:
    """One invariant breach: which invariant, when, and the evidence."""

    invariant: str  # "I1".."I6"
    time: float
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return {"invariant": self.invariant, "time": self.time,
                "detail": self.detail}


def _sender_fsms(monitor: Any) -> list[Any]:
    return [f for f in (monitor.dedicated_sender, monitor.tree_sender)
            if f is not None]


def _receiver_fsms(monitor: Any) -> list[Any]:
    return [f for f in (monitor.dedicated_receiver, monitor.tree_receiver)
            if f is not None]


# -- I1: liveness --------------------------------------------------------------

_SENDER_TIMED = (SenderState.WAIT_ACK, SenderState.COUNTING,
                 SenderState.WAIT_REPORT)


def check_liveness(monitor: Any, now: float) -> list[Violation]:
    """Every timer-driven FSM state must have a pending timer.

    Sender: WAIT_ACK/WAIT_REPORT are kept alive by the RTX timer and
    COUNTING by the session-close timer; IDLE needs nothing and FAILED
    is a terminal state the harness's recovery hook revives.  Receiver:
    only WAIT_TO_SEND is timer-driven (SEND_ACK/COUNTING advance on
    sender activity, which the sender's own timers guarantee).
    """
    out: list[Violation] = []
    for fsm in _sender_fsms(monitor):
        if fsm.state in _SENDER_TIMED and fsm._timer is None:
            out.append(Violation(
                "I1", now,
                f"sender {fsm.fsm_id} deadlocked in {fsm.state.value} "
                f"(session {fsm.session_id}) with no pending timer"))
    for fsm in _receiver_fsms(monitor):
        if fsm.state is ReceiverState.WAIT_TO_SEND and fsm._timer is None:
            out.append(Violation(
                "I1", now,
                f"receiver {fsm.fsm_id} deadlocked in wait_to_send "
                f"(session {fsm.session_id}) with no pending timer"))
    return out


# -- I2: session monotonicity ---------------------------------------------------


class SessionTracker:
    """Checkpoint-to-checkpoint session-id watcher for one monitor.

    Receiver restarts legitimately reset the receiver's session id to
    zero (the receiver persists nothing across a reboot); the tracker
    re-baselines whenever the FSM's ``restarts`` counter advanced since
    the previous checkpoint, and flags every other regression.
    """

    def __init__(self, monitor: Any) -> None:
        self._last: dict[int, tuple[int, int]] = {}
        self._observe(monitor)

    def _observe(self, monitor: Any) -> None:
        for fsm in _sender_fsms(monitor) + _receiver_fsms(monitor):
            self._last[id(fsm)] = (fsm.session_id, fsm.restarts)

    def check(self, monitor: Any, now: float) -> list[Violation]:
        out: list[Violation] = []
        for fsm in _sender_fsms(monitor):
            prev_sid, _prev_restarts = self._last[id(fsm)]
            # Sender ids are monotone even across restarts (persisted epoch).
            if fsm.session_id < prev_sid:
                out.append(Violation(
                    "I2", now,
                    f"sender {fsm.fsm_id} session id regressed "
                    f"{prev_sid} -> {fsm.session_id}"))
        for fsm in _receiver_fsms(monitor):
            prev_sid, prev_restarts = self._last[id(fsm)]
            if fsm.restarts == prev_restarts and fsm.session_id < prev_sid:
                out.append(Violation(
                    "I2", now,
                    f"receiver {fsm.fsm_id} session id regressed "
                    f"{prev_sid} -> {fsm.session_id} without a restart"))
        self._observe(monitor)
        return out


# -- I3: attribution (no false flags) -------------------------------------------

_LOSS_REPORT_KINDS = (FailureKind.DEDICATED_ENTRY, FailureKind.TREE_LEAF,
                      FailureKind.UNIFORM)


def check_attribution(
    log: FailureLog,
    schedule: list[FaultSpec],
    monitor: Any,
    dedicated: list[Any],
    best_effort: list[Any],
    since: int = 0,
) -> list[Violation]:
    """Every failure report must be explained by a recently active fault.

    This is the "no false flags" half of the soak: benign chaos —
    reordering, duplication, checksum-detected corruption — must never
    surface as a loss flag, and loss must never surface without a
    loss-class fault scoped to the flagged entry.

    ``since`` makes the check incremental: only reports from that log
    index onward are examined (reports are append-only), so an online
    observer can attribute each checkpoint's new reports as they land
    instead of rescanning the whole log at teardown.
    """
    out: list[Violation] = []
    dedicated_set = set(dedicated)
    tree = monitor.tree_strategy.tree if monitor.tree_strategy else None
    leaf_entries: dict[tuple[int, ...], list[Any]] = {}
    if tree is not None:
        for entry in list(dedicated) + list(best_effort):
            leaf_entries.setdefault(tree.hash_path(entry), []).append(entry)
    for report in log.reports[since:]:
        lo, hi = report.time - ATTRIBUTION_SLACK_S, report.time
        if report.kind is FailureKind.LINK_DOWN:
            if not any(s.is_control_class() and s.active_in(lo, hi)
                       for s in schedule):
                out.append(Violation(
                    "I3", report.time,
                    f"LINK_DOWN from {report.entry} at t={report.time:.3f} "
                    "with no control-affecting fault active in "
                    f"[{lo:.3f}, {hi:.3f}]"))
            continue
        if report.kind not in _LOSS_REPORT_KINDS:
            continue
        if report.kind is FailureKind.DEDICATED_ENTRY:
            candidates = [(report.entry, True)]
        elif report.kind is FailureKind.TREE_LEAF:
            candidates = [(e, False)
                          for e in leaf_entries.get(report.hash_path, [])]
        else:  # UNIFORM: any covered entry justifies it
            candidates = [(e, e in dedicated_set)
                          for e in list(dedicated) + list(best_effort)]
        explained = any(
            s.active_in(lo, hi) and s.affects_entry(entry, is_dedicated)
            for s in schedule
            for entry, is_dedicated in candidates
        )
        if not explained:
            out.append(Violation(
                "I3", report.time,
                f"{report.kind.value} flag for entry={report.entry!r} "
                f"hash_path={report.hash_path} at t={report.time:.3f} with "
                f"no loss-class fault covering it in [{lo:.3f}, {hi:.3f}]"))
    return out


# -- I4: eventual detection -----------------------------------------------------


def check_detection(
    log: FailureLog,
    schedule: list[FaultSpec],
    monitor: Any,
    dedicated: list[Any],
    best_effort: list[Any],
    horizon: float,
) -> list[Violation]:
    """Persistent heavy loss must be flagged on every covered entry.

    ``horizon`` is the instant traffic stopped: a fault only counts as
    persistent if it was still active then (see
    :meth:`FaultSpec.is_persistent`).  Escalation to LINK_DOWN counts as
    detection — a fault schedule may kill the control channel alongside
    the data loss, and declaring the whole link dead is the correct
    (§4.1) answer there.
    """
    out: list[Violation] = []
    link_down = bool(log.by_kind(FailureKind.LINK_DOWN))
    uniform = bool(log.by_kind(FailureKind.UNIFORM))
    tree = monitor.tree_strategy.tree if monitor.tree_strategy else None
    for spec in schedule:
        if not spec.is_persistent(horizon):
            continue
        if spec.kind == "entry_loss":
            covered = list(spec.params["entries"])
        else:
            covered = list(dedicated) + list(best_effort)
        for entry in covered:
            if monitor.entry_is_flagged(entry):
                continue
            if entry in set(dedicated):
                if log.first_report(FailureKind.DEDICATED_ENTRY, entry):
                    continue
            elif tree is not None and log.first_report(
                    FailureKind.TREE_LEAF,
                    hash_path=tree.hash_path(entry)):
                continue
            if uniform or link_down:
                continue
            out.append(Violation(
                "I4", horizon,
                f"persistent {spec.kind} (rate="
                f"{spec.params.get('rate')}, window={spec.window()}) never "
                f"detected for entry {entry!r}: no flag, no report, no "
                "link-down escalation"))
    return out


# -- I5: conservation -----------------------------------------------------------


def check_conservation(links: list[Any], now: float) -> list[Violation]:
    """Packet conservation per monitored link, after a full drain."""
    out: list[Violation] = []
    for link in links:
        stats = link.stats
        dup = link.chaos.dup_scheduled if link.chaos is not None else 0
        expect = stats.tx_packets - stats.dropped_failure \
            - stats.dropped_chaos + dup
        if stats.delivered != expect:
            out.append(Violation(
                "I5", now,
                f"link {link.name}: delivered={stats.delivered} != "
                f"tx({stats.tx_packets}) - failure({stats.dropped_failure}) "
                f"- chaos({stats.dropped_chaos}) + dup({dup}) = {expect}"))
    out.extend(check_pool(now))
    return out


def check_pool(now: float) -> list[Violation]:
    """Pool half of I5: only parked, unique packets on the free list.

    Unlike the per-link arithmetic — which only balances after a full
    drain — these hold at *every* instant, so an online observer can
    evaluate them mid-run.
    """
    out: list[Violation] = []
    if POOL.enabled:
        free = POOL.free
        if any(p.pid != -1 for p in free):
            out.append(Violation(
                "I5", now, "packet pool holds a non-parked packet "
                "(pid != -1): double-release or use-after-release"))
        if len({id(p) for p in free}) != len(free):
            out.append(Violation(
                "I5", now, "packet pool holds the same packet twice"))
        if len(free) > POOL.max_size:
            out.append(Violation(
                "I5", now,
                f"packet pool overfull: {len(free)} > {POOL.max_size}"))
    return out


# -- I6: corruption integrity ---------------------------------------------------


def check_integrity(monitor: Any, chaos_models: list[Any], now: float,
                    allow_in_flight: bool = False) -> list[Violation]:
    """Delivered corrupted control messages == checksum rejections.

    With ``allow_in_flight`` the check relaxes to ``rejected <=
    corrupted``: mid-run, a corrupted message the chaos layer already
    counted may still be sitting in a link's delivery queue, but the
    FSMs can never have rejected *more* than chaos delivered.
    """
    rejected = sum(f.rejected_corrupt
                   for f in _sender_fsms(monitor) + _receiver_fsms(monitor))
    corrupted = sum(m.corrupted_control for m in chaos_models)
    broken = rejected > corrupted if allow_in_flight \
        else rejected != corrupted
    if broken:
        return [Violation(
            "I6", now,
            f"corruption accounting mismatch: chaos delivered {corrupted} "
            f"corrupted control messages but the FSMs rejected {rejected} "
            "— either a corrupted message was acted on, or a clean one "
            "was rejected")]
    return []


# -- online supervision ---------------------------------------------------------


class LinkInvariantObserver:
    """Incremental I1–I6 evaluation for one monitored link.

    The teardown-time checkers above scan whole logs and assume a fully
    drained network; this observer re-expresses them as an online
    protocol for the serve supervisor (docs/ROBUSTNESS.md):

    * :meth:`tick` — called between engine events while traffic still
      flows.  Evaluates liveness (I1), session monotonicity (I2), the
      attribution of every report that landed since the previous tick
      (I3, via ``check_attribution(since=...)``), the pool half of
      conservation (I5), and in-flight-tolerant corruption accounting
      (I6).
    * :meth:`final` — called once after wind-down and drain.  Evaluates
      the tail of I3, eventual detection (I4), full per-link
      conservation (I5) and exact corruption equality (I6).

    Every breach is appended to :attr:`breaches` and reported through
    the optional ``on_breach`` callback (the supervisor uses it to meter
    ``fancy_invariant_breach_total``).
    """

    def __init__(
        self,
        monitor: Any,
        schedule: list[FaultSpec],
        dedicated: list[Any],
        best_effort: list[Any],
        links: list[Any],
        chaos_models: list[Any],
        link_id: str = "link",
        on_breach: Any | None = None,
    ) -> None:
        self.monitor = monitor
        self.schedule = schedule
        self.dedicated = list(dedicated)
        self.best_effort = list(best_effort)
        self.links = list(links)
        self.chaos_models = list(chaos_models)
        self.link_id = link_id
        self.on_breach = on_breach
        self.tracker = SessionTracker(monitor)
        self.breaches: list[Violation] = []
        self._log_pos = 0
        self.ticks = 0

    def update_entries(self, dedicated: list[Any],
                       best_effort: list[Any]) -> None:
        """Track an entry-churn swap so attribution scopes stay correct."""
        self.dedicated = list(dedicated)
        self.best_effort = list(best_effort)

    def _record(self, found: list[Violation]) -> list[Violation]:
        self.breaches.extend(found)
        if self.on_breach is not None:
            for violation in found:
                self.on_breach(self.link_id, violation)
        return found

    def tick(self, now: float) -> list[Violation]:
        """Continuously-valid invariants, evaluated mid-run."""
        self.ticks += 1
        found = check_liveness(self.monitor, now)
        found += self.tracker.check(self.monitor, now)
        found += check_attribution(
            self.monitor.log, self.schedule, self.monitor,
            self.dedicated, self.best_effort, since=self._log_pos)
        self._log_pos = len(self.monitor.log.reports)
        found += check_pool(now)
        found += check_integrity(self.monitor, self.chaos_models, now,
                                 allow_in_flight=True)
        return self._record(found)

    def final(self, now: float, horizon: float) -> list[Violation]:
        """Drain-time invariants, evaluated once after wind-down."""
        found = check_attribution(
            self.monitor.log, self.schedule, self.monitor,
            self.dedicated, self.best_effort, since=self._log_pos)
        self._log_pos = len(self.monitor.log.reports)
        found += check_detection(
            self.monitor.log, self.schedule, self.monitor,
            self.dedicated, self.best_effort, horizon)
        found += check_conservation(self.links, now)
        found += check_integrity(self.monitor, self.chaos_models, now)
        return self._record(found)
