"""Wire perturbation models beyond plain loss.

Table 1 of the paper lists gray-failure symptoms that are *not* silent
drops: CRC/memory corruption, intermittent links, faulty line cards that
reorder or duplicate frames.  The simulator's ``loss_model`` hooks
(:mod:`repro.simulator.failures`) only ever answer "drop or deliver"; the
classes here inject the remaining behaviours through the link's ``chaos``
hook (:attr:`repro.simulator.link.Link.chaos`):

* :class:`Reorder` — bounded positive displacement of delivery time.
* :class:`Duplicate` — deliver extra copies of a packet.
* :class:`CorruptField` — bit-flips on header/payload fields (counter ids,
  Report payloads, sequence numbers).
* :class:`DelaySpike` — deterministic latency spike with optional jitter.
* :class:`LinkFlap` — scheduled hard down-windows (drops everything,
  control included).

Composition contract (mirrors :class:`~repro.simulator.failures.
CompositeFailure`): a :class:`ChaosModel` evaluates **every** perturbation
for every packet, with no short-circuiting, and each perturbation draws
only from its **own** seeded ``random.Random``.  RNG streams therefore
never depend on perturbation order or on other perturbations' verdicts,
so seeded runs are stable under schedule reordering — the property the
shrinker (:mod:`repro.chaos.shrink`) relies on when deleting faults.

Timing contract (mirrors PR 3's wire-loss discipline): the link calls
:meth:`ChaosModel.on_wire` with the *pinned departure timestamp*, at send
time on the fused pipeline and at depart time on the reference pipeline.
All draws key off that timestamp and all chaos-scheduled deliveries are
computed as ``depart_t + link.delay_s + displacement`` — absolute times
independent of which pipeline scheduled them — so fused and reference
runs stay bit-identical with perturbations attached (guarded by
``tests/simulator/test_fastpath_equivalence.py``).
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from repro.simulator.link import CHAOS_CONSUMED, CHAOS_DROP, CHAOS_PASS, Link
from repro.simulator.packet import Packet, PacketKind

__all__ = [
    "Perturbation",
    "Reorder",
    "Duplicate",
    "CorruptField",
    "DelaySpike",
    "LinkFlap",
    "ChaosModel",
    "Intent",
]

#: What a perturbation wants to do to one packet:
#: ``(drop, extra_delay_s, copies, corrupt_fn)``.  ``corrupt_fn`` mutates
#: the packet in place and returns ``"control"`` or ``"data"`` for the
#: integrity accounting.
Intent = tuple[bool, float, int, "Callable[[Packet], str] | None"]

_NO_INTENT: Intent = (False, 0.0, 0, None)


class Perturbation:
    """Base class: activation window + per-fault seeded RNG + packet scope.

    Follows the same normalised-window discipline as
    :class:`repro.simulator.failures.GrayFailure`: the window is stored as
    ``[_start, _end)`` with ``_end = +inf`` when open-ended.

    Args:
        rate: Bernoulli probability that a matching packet is perturbed.
        start_time: window start (inclusive), simulated seconds.
        end_time: window end (exclusive); ``None`` = open-ended.
        seed: seed for this fault's **private** ``random.Random``.  Chaos
            code must never draw from the module-level ``random`` functions
            or another object's RNG (lint rule FCY007).
        kinds: restrict to these :class:`PacketKind` values; ``None``
            means the perturbation's default scope (see ``default_kinds``).
    """

    #: Short identifier used in schedules, reproducers and telemetry.
    kind: str = "perturbation"
    #: Scope applied when ``kinds`` is not given; ``None`` = all packets.
    default_kinds: frozenset[PacketKind] | None = None

    def __init__(
        self,
        rate: float = 1.0,
        start_time: float = 0.0,
        end_time: float | None = None,
        seed: int = 0,
        kinds: Iterable[PacketKind] | None = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._start = start_time
        self._end = math.inf if end_time is None else end_time
        self.seed = seed
        self.rng = random.Random(seed)
        self.kinds = (frozenset(kinds) if kinds is not None
                      else self.default_kinds)
        #: Number of packets this perturbation actually fired on.
        self.events = 0

    @property
    def start_time(self) -> float:
        return self._start

    @property
    def end_time(self) -> float | None:
        return None if self._end == math.inf else self._end

    def active(self, now: float) -> bool:
        return self._start <= now < self._end

    def matches(self, packet: Packet) -> bool:
        return self.kinds is None or packet.kind in self.kinds

    def fires(self, packet: Packet, depart_t: float) -> bool:
        """Shared window/scope/Bernoulli gate.

        Consumes exactly one draw from this fault's private RNG per
        matching in-window packet — and *only* then — so the stream is a
        pure function of the packet sequence this perturbation sees,
        independent of every other perturbation.
        """
        if not self._start <= depart_t < self._end:
            return False
        if not self.matches(packet):
            return False
        if self.rate < 1.0 and self.rng.random() >= self.rate:
            return False
        self.events += 1
        return True

    def evaluate(self, packet: Packet, depart_t: float) -> Intent:
        """Return this perturbation's intent for ``packet`` (no mutation)."""
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        """JSON-friendly description (used by reproducer files)."""
        return {
            "kind": self.kind,
            "rate": self.rate,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "seed": self.seed,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        window = f"[{self._start:g}, {'inf' if self._end == math.inf else f'{self._end:g}'})"
        return f"{type(self).__name__}(rate={self.rate:g}, window={window})"


class Reorder(Perturbation):
    """Displace a packet's delivery by a bounded positive amount.

    Models out-of-order delivery from a flapping LAG member or a faulty
    line card: the packet still arrives, but up to ``max_displacement_s``
    late, letting packets behind it overtake.  Displacement is strictly
    positive, never negative — a link cannot deliver a packet before it
    was sent — so Stop can never overtake the tagged data packets it
    delimits *in the other direction* (earlier packets may still arrive
    after it, which is the interesting case for §4.1).
    """

    kind = "reorder"

    def __init__(self, rate: float, max_displacement_s: float,
                 **kwargs: Any) -> None:
        super().__init__(rate, **kwargs)
        if max_displacement_s <= 0:
            raise ValueError("max_displacement_s must be positive")
        self.max_displacement_s = max_displacement_s

    def evaluate(self, packet: Packet, depart_t: float) -> Intent:
        if not self.fires(packet, depart_t):
            return _NO_INTENT
        return (False, self.rng.uniform(0.0, self.max_displacement_s), 0, None)

    def describe(self) -> dict[str, Any]:
        d = super().describe()
        d["max_displacement_s"] = self.max_displacement_s
        return d


class Duplicate(Perturbation):
    """Deliver extra copies of a packet.

    Models retransmission bugs and loops in faulty hardware.  Copies are
    delivered ``offset_s`` apart after the original and bypass the link's
    loss model (they materialise on the wire past the failure point); the
    per-link conservation bookkeeping is exposed via
    :attr:`ChaosModel.dup_scheduled`.
    """

    kind = "duplicate"

    def __init__(self, rate: float, copies: int = 1, offset_s: float = 1e-6,
                 **kwargs: Any) -> None:
        super().__init__(rate, **kwargs)
        if copies < 1:
            raise ValueError("copies must be >= 1")
        if offset_s <= 0:
            raise ValueError("offset_s must be positive")
        self.copies = copies
        self.offset_s = offset_s

    def evaluate(self, packet: Packet, depart_t: float) -> Intent:
        if not self.fires(packet, depart_t):
            return _NO_INTENT
        return (False, 0.0, self.copies, None)

    def describe(self) -> dict[str, Any]:
        d = super().describe()
        d["copies"] = self.copies
        d["offset_s"] = self.offset_s
        return d


class CorruptField(Perturbation):
    """Bit-flip a header or payload field (CRC/memory corruption, Table 1).

    Supported fields:

    * ``"seq"`` — transport sequence number of data packets.  Benign for
      FANcY (counters count packets, not sequence numbers); exercises the
      transport's tolerance.
    * ``"entry"`` — the forwarding-entry key of data packets is replaced
      by a corrupted sentinel (models VPN-label / prefix corruption); the
      packet effectively leaves its entry, i.e. a loss-class symptom the
      detector is expected to flag.
    * ``"tag"`` — flips bits of the FANcY counter id carried by tagged
      data packets (the paper's header-corruption case that *matters* to
      counting): the downstream counts the wrong — or, after the bounds
      check, no — dedicated counter, so the original entry's remote count
      comes up short and the entry is flagged.  Loss-class by
      construction.
    * ``"session"`` — flips a low bit of the session id in a FANcY
      control payload; the hardened protocol detects this via the payload
      checksum (§4.1's hostile-channel assumption) and rejects it.
    * ``"snapshot"`` — flips a low bit of one counter value inside a
      Report payload; also checksum-detected.

    Control-payload corruption deliberately never touches the ``"fsm"``
    dispatch field or the checksum itself: the corrupted message must
    still *reach* ``on_control`` so detection is attributable (the
    integrity invariant counts delivered corruptions against FSM
    rejections).  Payload dicts are corrupted **by copy** — receivers
    cache report payloads (``_last_report``) and sharing the mutated
    object would corrupt state retroactively.
    """

    kind = "corrupt"

    _CONTROL_FIELDS = frozenset({"session", "snapshot"})
    _DATA_FIELDS = frozenset({"seq", "entry", "tag"})

    #: Entry key marking a corrupted forwarding entry; never routable.
    CORRUPT_ENTRY = "__corrupt__"

    def __init__(self, rate: float, field: str = "seq", **kwargs: Any) -> None:
        if field not in self._CONTROL_FIELDS | self._DATA_FIELDS:
            raise ValueError(f"unsupported corruption field: {field!r}")
        if field in self._CONTROL_FIELDS:
            kwargs.setdefault(
                "kinds",
                (PacketKind.FANCY_START, PacketKind.FANCY_START_ACK,
                 PacketKind.FANCY_STOP, PacketKind.FANCY_REPORT),
            )
        else:
            kwargs.setdefault("kinds", (PacketKind.DATA,))
        super().__init__(rate, **kwargs)
        self.field = field

    def matches(self, packet: Packet) -> bool:
        if not super().matches(packet):
            return False
        if self.field in self._CONTROL_FIELDS:
            payload = packet.payload
            return payload is not None and self.field in payload
        if self.field == "tag":
            # Only dedicated-counter tags carry an integer index to flip.
            return packet.tag_dedicated and packet.tag is not None
        return True

    def evaluate(self, packet: Packet, depart_t: float) -> Intent:
        if not self.fires(packet, depart_t):
            return _NO_INTENT
        # All randomness is drawn *now*, at evaluate time, so the RNG
        # stream does not depend on whether some other perturbation drops
        # the packet before the corruption is applied.
        field = self.field
        if field == "seq":
            bit = 1 << self.rng.randrange(8)

            def corrupt_seq(p: Packet) -> str:
                p.seq ^= bit
                return "data"

            return (False, 0.0, 0, corrupt_seq)
        if field == "entry":
            def corrupt_entry(p: Packet) -> str:
                p.entry = self.CORRUPT_ENTRY
                return "data"

            return (False, 0.0, 0, corrupt_entry)
        if field == "tag":
            flip = 1 + self.rng.randrange(7)

            def corrupt_tag(p: Packet) -> str:
                if p.tag_dedicated and p.tag is not None:
                    p.tag = (p.tag[0] ^ flip,) + tuple(p.tag[1:])
                return "data"

            return (False, 0.0, 0, corrupt_tag)
        if field == "session":
            bit = 1 << self.rng.randrange(4)

            def corrupt_session(p: Packet) -> str:
                payload = dict(p.payload or {})
                payload["session"] = int(payload.get("session", 0)) ^ bit
                p.payload = payload
                return "control"

            return (False, 0.0, 0, corrupt_session)
        # field == "snapshot"
        pick = self.rng.random()
        bit = 1 << self.rng.randrange(4)

        def corrupt_snapshot(p: Packet) -> str:
            payload = dict(p.payload or {})
            snapshot = payload.get("snapshot")
            if isinstance(snapshot, Sequence) and len(snapshot) > 0:
                cells = list(snapshot)
                idx = min(int(pick * len(cells)), len(cells) - 1)
                try:
                    cells[idx] = int(cells[idx]) ^ bit
                except (TypeError, ValueError):
                    cells[idx] = bit
                payload["snapshot"] = cells
            else:
                payload["snapshot"] = [bit]
            p.payload = payload
            return "control"

        return (False, 0.0, 0, corrupt_snapshot)

    def describe(self) -> dict[str, Any]:
        d = super().describe()
        d["field"] = self.field
        return d


class DelaySpike(Perturbation):
    """Latency spike: every matching in-window packet is held back.

    Models transient buffering pathologies (a wedged line card flushing
    late).  Deterministic ``spike_s`` plus optional uniform jitter in
    ``[0, jitter_s]``; with ``jitter_s=0`` no RNG draw is consumed beyond
    the rate gate, keeping pure spikes fully deterministic.
    """

    kind = "delay_spike"

    def __init__(self, spike_s: float, jitter_s: float = 0.0,
                 rate: float = 1.0, **kwargs: Any) -> None:
        super().__init__(rate, **kwargs)
        if spike_s <= 0:
            raise ValueError("spike_s must be positive")
        if jitter_s < 0:
            raise ValueError("jitter_s must be non-negative")
        self.spike_s = spike_s
        self.jitter_s = jitter_s

    def evaluate(self, packet: Packet, depart_t: float) -> Intent:
        if not self.fires(packet, depart_t):
            return _NO_INTENT
        delay = self.spike_s
        if self.jitter_s > 0.0:
            delay += self.rng.uniform(0.0, self.jitter_s)
        return (False, delay, 0, None)

    def describe(self) -> dict[str, Any]:
        d = super().describe()
        d["spike_s"] = self.spike_s
        d["jitter_s"] = self.jitter_s
        return d


class LinkFlap(Perturbation):
    """Hard up/down schedule: during a down-window *everything* is dropped.

    Models an intermittently failing link (§2.1), the all-entries /
    all-packets cell of Table 1 — but time-bounded, which is precisely
    what makes it "gray": between flaps the link looks healthy.  The
    down-windows are an explicit schedule, deterministic by construction
    (no RNG), so a shrunk reproducer pins the exact outage instants.
    """

    kind = "link_flap"

    def __init__(self, down_windows: Iterable[tuple[float, float]],
                 **kwargs: Any) -> None:
        windows = sorted((float(a), float(b)) for a, b in down_windows)
        if not windows:
            raise ValueError("LinkFlap needs at least one down window")
        for a, b in windows:
            if b <= a:
                raise ValueError(f"empty down window ({a}, {b})")
        # The perturbation's own activation window is the envelope of the
        # down schedule, so out-of-envelope packets exit via the shared
        # cheap gate in :meth:`Perturbation.fires`.
        kwargs.setdefault("start_time", windows[0][0])
        kwargs.setdefault("end_time", windows[-1][1])
        super().__init__(1.0, **kwargs)
        self.down_windows = windows

    def is_down(self, now: float) -> bool:
        for a, b in self.down_windows:
            if a <= now < b:
                return True
            if now < a:
                break
        return False

    def evaluate(self, packet: Packet, depart_t: float) -> Intent:
        if not self.fires(packet, depart_t):
            return _NO_INTENT
        if not self.is_down(depart_t):
            return _NO_INTENT
        return (True, 0.0, 0, None)

    def describe(self) -> dict[str, Any]:
        d = super().describe()
        d["down_windows"] = [list(w) for w in self.down_windows]
        return d


class ChaosModel:
    """Composes perturbations on one link; implements the ``chaos`` hook.

    Evaluation is *intent-based*: every perturbation is asked for its
    intent on every packet (consuming its own RNG independently of the
    others — see module docstring), the intents are merged, and only then
    is anything applied:

    1. any drop intent wins → :data:`~repro.simulator.link.CHAOS_DROP`
       (no corruption applied, no copies scheduled);
    2. corruptions are applied to the delivered packet (counted for the
       integrity invariant);
    3. displacement intents sum; a displaced packet is rescheduled at
       ``depart_t + link.delay_s + displacement``
       (→ :data:`~repro.simulator.link.CHAOS_CONSUMED`);
    4. duplicate copies are scheduled behind the original's arrival.

    A model instance attaches to exactly **one** link (:meth:`attach`), so
    each perturbation observes a single FIFO packet sequence and the RNG
    streams are identical on the fused and reference pipelines.
    """

    def __init__(self, perturbations: Iterable[Perturbation],
                 name: str = "") -> None:
        self.perturbations = list(perturbations)
        self.name = name
        self.link: Link | None = None
        #: Duplicate copies scheduled (for packet-conservation checks:
        #: ``delivered == tx - dropped_failure - dropped_chaos + dup_scheduled``
        #: once the wire is drained).
        self.dup_scheduled = 0
        #: Delivered packets whose FANcY control payload was corrupted —
        #: each must be rejected by the hardened FSMs (integrity invariant).
        self.corrupted_control = 0
        #: Delivered data packets corrupted (seq/entry).
        self.corrupted_data = 0
        #: Packets rescheduled with a displacement.
        self.displaced = 0
        #: Telemetry hook: optional callable ``(event, packet, t)`` for
        #: the fault-event timeline (set by the harness).
        self.on_event: Callable[[str, Packet, float], None] | None = None

    def attach(self, link: Link) -> "ChaosModel":
        if self.link is not None and self.link is not link:
            raise ValueError(
                "a ChaosModel attaches to exactly one link; create one "
                "model per link so RNG streams stay per-wire FIFO")
        self.link = link
        link.chaos = self
        if not self.name:
            self.name = link.name
        return self

    def on_wire(self, packet: Packet, depart_t: float, link: Link) -> int:
        """Link hook: merge every perturbation's intent for ``packet``."""
        drop = False
        displacement = 0.0
        copies = 0
        corrupters: list[Callable[[Packet], str]] | None = None
        for p in self.perturbations:
            p_drop, p_delay, p_copies, p_corrupt = p.evaluate(packet, depart_t)
            drop |= p_drop
            displacement += p_delay
            copies += p_copies
            if p_corrupt is not None:
                if corrupters is None:
                    corrupters = [p_corrupt]
                else:
                    corrupters.append(p_corrupt)
        if drop:
            if self.on_event is not None:
                self.on_event("chaos_drop", packet, depart_t)
            return CHAOS_DROP
        if displacement == 0.0 and copies == 0 and corrupters is None:
            return CHAOS_PASS
        if corrupters is not None:
            # Copies are cloned *after* corruption is applied, so every
            # scheduled duplicate delivers the corruption too: count each
            # corrupted packet once per wire arrival (original + copies),
            # so the integrity invariant can equate delivered control
            # corruptions with FSM rejections.  Counting is per *packet*,
            # not per corrupter — the FSM rejects a mangled Report once no
            # matter how many faults touched it — and a control packet
            # only counts if the merged result actually fails
            # verification (two co-firing faults flipping the same bit
            # restore the payload: nothing is corrupt on the wire).
            classes = {corrupt(packet) for corrupt in corrupters}
            mult = 1 + copies
            if "control" in classes and not _control_payload_intact(packet):
                self.corrupted_control += mult
            if "data" in classes:
                self.corrupted_data += mult
            if self.on_event is not None:
                self.on_event("chaos_corrupt", packet, depart_t)
        arrival_t = depart_t + link.delay_s + displacement
        if copies:
            self.dup_scheduled += copies
            if self.on_event is not None:
                self.on_event("chaos_duplicate", packet, depart_t)
            offset = 1e-6
            for p in self.perturbations:
                if isinstance(p, Duplicate):
                    offset = p.offset_s
                    break
            for i in range(copies):
                copy = _clone_packet(packet)
                link.sim.schedule_at(arrival_t + (i + 1) * offset,
                                     link._deliver, copy)
        if displacement == 0.0 and copies == 0:
            # Pure in-place corruption: let the link finish delivery on
            # its own (keeps burst coalescing on instant links).
            return CHAOS_PASS
        if displacement > 0.0:
            self.displaced += 1
            if self.on_event is not None:
                self.on_event("chaos_displace", packet, depart_t)
            link.sim.schedule_at(arrival_t, link._deliver, packet)
            return CHAOS_CONSUMED
        # Copies scheduled but the original is undisplaced: deliver the
        # original through the normal pipeline.
        return CHAOS_PASS

    def describe(self) -> list[dict[str, Any]]:
        return [p.describe() for p in self.perturbations]

    def stats(self) -> dict[str, int]:
        return {
            "dup_scheduled": self.dup_scheduled,
            "corrupted_control": self.corrupted_control,
            "corrupted_data": self.corrupted_data,
            "displaced": self.displaced,
            "events": sum(p.events for p in self.perturbations),
        }


def _control_payload_intact(packet: Packet) -> bool:
    """Whether a control payload still verifies after corruption merged.

    Imported lazily from the protocol layer: chaos sits above both the
    simulator and the core protocol (it may look *down* at either), and
    the checksum definition must be the single one the FSMs use — a
    private reimplementation here could drift and desynchronise the
    integrity invariant.
    """
    from repro.core.protocol import verify_payload

    payload = packet.payload
    return payload is None or verify_payload(payload)


def _clone_packet(packet: Packet) -> Packet:
    """Duplicate a packet for redelivery (pool-aware, deep enough).

    The payload dict is shallow-copied so later corruption of one copy
    cannot leak into the other; tags are immutable tuples and copied by
    reference.
    """
    payload = dict(packet.payload) if packet.payload is not None else None
    copy = Packet.acquire(
        packet.kind, packet.entry, packet.size, flow_id=packet.flow_id,
        seq=packet.seq, ack=packet.ack, created_at=packet.created_at,
        payload=payload, reverse=packet.reverse)
    copy.tag = packet.tag
    copy.tag_session = packet.tag_session
    copy.tag_dedicated = packet.tag_dedicated
    return copy
