"""``fancy-repro chaos``: run the invariant-checked soak.

Exit status is 0 when every seed satisfies every invariant, 1 otherwise.
On failure the first failing seed's schedule is shrunk to a minimal
reproducer and written to ``--reproducer`` (JSON; CI uploads it as an
artifact).  ``--replay FILE`` re-runs a previously written reproducer,
and ``--regression NAME`` runs a named protocol-regression fixture.
Each fixture carries an expectation (``REGRESSION_EXPECTATIONS``):
``violate`` fixtures are *expected* to fail, proving the harness has
teeth (CI negates their exit status); ``clean`` fixtures pin robustness
behaviour — e.g. ``control-plane-grey`` must run violation-free — and
CI runs them plain.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.runtime import RuntimeContext

from .harness import (
    REGRESSION_EXPECTATIONS,
    REGRESSIONS,
    SoakConfig,
    SoakResult,
    regression_scenario,
    run_many,
    run_soak,
)
from .shrink import load_reproducer, shrink, write_reproducer

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fancy-repro chaos",
        description="Randomized fault soak with invariant checking "
                    "(docs/ROBUSTNESS.md).",
    )
    parser.add_argument("--seeds", type=int, default=25,
                        help="number of seeded runs (default 25)")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first seed; runs cover [base, base+seeds)")
    parser.add_argument("--quick", action="store_true",
                        help="short runs: 4 s of traffic instead of 8 s")
    parser.add_argument("--duration", type=float, default=None,
                        help="explicit traffic duration in simulated seconds")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel soak processes (default: serial)")
    parser.add_argument("--reproducer", default="chaos_reproducer.json",
                        help="where to write the shrunk failing schedule")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip schedule shrinking on failure")
    parser.add_argument("--regression", choices=sorted(REGRESSIONS),
                        default=None,
                        help="run a named protocol-regression fixture "
                             "(expected to violate an invariant)")
    parser.add_argument("--replay", default=None, metavar="FILE",
                        help="replay a reproducer JSON instead of generating "
                             "schedules")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print per-seed schedules and stats")
    return parser


def _base_config(args: argparse.Namespace) -> SoakConfig:
    duration = args.duration if args.duration is not None \
        else (4.0 if args.quick else 8.0)
    return SoakConfig(seed=args.seed_base, duration_s=duration)


def _print_result(result: dict, verbose: bool) -> None:
    seed = result["seed"]
    status = "ok" if result["ok"] else "FAIL"
    kinds = ", ".join(f"{s['kind']}({s['target']})"
                      for s in result["schedule"]) or "—"
    print(f"  seed {seed:>4}  {status:<4}  faults: {kinds}")
    for v in result["violations"]:
        print(f"        {v['invariant']} @ t={v['time']:.3f}: {v['detail']}")
    if verbose:
        stats = result.get("stats", {})
        reports = stats.get("reports", {})
        print(f"        sessions={stats.get('sessions_completed')} "
              f"reports={reports} revivals={stats.get('revivals')}")


def _shrink_and_write(config: SoakConfig, failing: SoakResult,
                      args: argparse.Namespace) -> None:
    if args.no_shrink:
        schedule, result, runs = failing.schedule, failing, 0
    else:
        print(f"shrinking seed {failing.seed}'s schedule "
              f"({len(failing.schedule)} faults)...")
        schedule, result, runs = shrink(
            failing.schedule, failing,
            lambda candidate: run_soak(config, candidate))
        print(f"  -> {len(schedule)} fault(s) after {runs} replay(s)")
    path = write_reproducer(args.reproducer, config, schedule, result,
                            runs_used=runs)
    print(f"reproducer written to {path}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    base = _base_config(args)

    if args.replay is not None:
        config, schedule = load_reproducer(args.replay)
        print(f"replaying {args.replay} (seed {config.seed}, "
              f"{len(schedule)} faults)")
        result = run_soak(config, schedule)
        _print_result(result.to_dict(), args.verbose)
        return 0 if result.ok else 1

    if args.regression is not None:
        config, schedule = regression_scenario(args.regression, base)
        expectation = REGRESSION_EXPECTATIONS.get(args.regression, "violate")
        expected = ("expected to violate an invariant"
                    if expectation == "violate"
                    else "expected to run clean")
        print(f"regression fixture: {args.regression} ({expected})")
        result = run_soak(config, schedule)
        _print_result(result.to_dict(), args.verbose)
        if not result.ok:
            _shrink_and_write(config, result, args)
        return 0 if result.ok else 1

    seeds = list(range(args.seed_base, args.seed_base + args.seeds))
    runtime = RuntimeContext(workers=args.workers, cache_dir=None,
                             progress=False)
    print(f"chaos soak: {len(seeds)} seed(s), "
          f"{base.duration_s:g}s traffic + {base.grace_s:g}s grace each")
    results = run_many(base, seeds, runtime=runtime)
    failing_seeds = [s for s in seeds if not results[s]["ok"]]
    for seed in seeds:
        if args.verbose or not results[seed]["ok"]:
            _print_result(results[seed], args.verbose)
    print(f"{len(seeds) - len(failing_seeds)}/{len(seeds)} seeds clean")
    if not failing_seeds:
        return 0

    first = failing_seeds[0]
    doc = results[first]
    import dataclasses as _dc

    from .schedule import FaultSpec
    from .invariants import Violation

    config = _dc.replace(base, seed=first)
    failing = SoakResult(
        seed=first,
        violations=[Violation(v["invariant"], float(v["time"]), v["detail"])
                    for v in doc["violations"]],
        schedule=[FaultSpec.from_dict(d) for d in doc["schedule"]],
        stats=doc.get("stats", {}),
    )
    if failing.schedule:
        _shrink_and_write(config, failing, args)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
