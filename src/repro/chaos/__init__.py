"""Chaos-injection subsystem: fault models beyond loss, soak, shrink.

The paper's Table 1 taxonomises gray failures by *which packets
disappear*; real gray hardware also reorders, duplicates, corrupts,
delays, flaps and reboots.  This package injects those behaviours into
the simulator and checks that the (hardened) FANcY protocol neither
deadlocks, nor invents failures, nor misses persistent ones:

* :mod:`~repro.chaos.perturbations` — composable wire perturbation
  models attached to links via ``link.chaos``;
* :mod:`~repro.chaos.schedule` — seeded random fault schedules and
  their wiring onto a topology;
* :mod:`~repro.chaos.invariants` — the I1–I6 robustness invariants;
* :mod:`~repro.chaos.harness` — the soak runner
  (``fancy-repro chaos``), including named regression fixtures;
* :mod:`~repro.chaos.shrink` — minimal-reproducer schedule shrinking.

See docs/ROBUSTNESS.md for the fault taxonomy, the protocol-hardening
guarantees, and how to replay a CI reproducer artifact.
"""

from .harness import (
    REGRESSIONS,
    SoakConfig,
    SoakResult,
    regression_scenario,
    run_many,
    run_soak,
    soak_worker,
)
from .invariants import Violation
from .perturbations import (
    ChaosModel,
    CorruptField,
    DelaySpike,
    Duplicate,
    LinkFlap,
    Perturbation,
    Reorder,
)
from .schedule import FaultSpec, generate_schedule, materialize
from .shrink import load_reproducer, shrink, write_reproducer

__all__ = [
    "ChaosModel",
    "CorruptField",
    "DelaySpike",
    "Duplicate",
    "FaultSpec",
    "LinkFlap",
    "Perturbation",
    "REGRESSIONS",
    "Reorder",
    "SoakConfig",
    "SoakResult",
    "Violation",
    "generate_schedule",
    "load_reproducer",
    "materialize",
    "regression_scenario",
    "run_many",
    "run_soak",
    "shrink",
    "soak_worker",
    "write_reproducer",
]
