"""Randomized fault schedules: generation, (de)serialisation, wiring.

A *fault schedule* is a JSON-serialisable list of :class:`FaultSpec` —
the unit the soak harness runs, the shrinker deletes from, and the
reproducer file pins.  :func:`generate_schedule` draws a schedule from a
seed under guardrails that keep every fault inside the envelope the
hardened protocol is *supposed* to survive (e.g. total forward data
displacement stays below the monitor's T_wait, so reordering alone can
never legitimately produce a loss flag); :func:`materialize` turns specs
into live loss models, :class:`~repro.chaos.perturbations.ChaosModel`
instances and scheduled switch restarts on a
:class:`~repro.simulator.topology.TwoSwitchTopology`.

Determinism contract: every fault gets its own RNG seeded by
``stable_seed(base_seed, "fault", index)``, where ``index`` is the
fault's position in the *original* generated schedule and is stored in
the spec.  Deleting a fault therefore never re-seeds the survivors,
which is what makes greedy schedule shrinking sound.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Any

from repro.runtime import stable_seed
from repro.simulator.engine import Simulator
from repro.simulator.failures import (
    CompositeFailure,
    ControlPlaneFailure,
    EntryLossFailure,
    GrayFailure,
    UniformLossFailure,
)
from repro.simulator.packet import PacketKind
from repro.simulator.topology import TwoSwitchTopology

from .perturbations import (
    ChaosModel,
    CorruptField,
    DelaySpike,
    Duplicate,
    LinkFlap,
    Perturbation,
    Reorder,
)

__all__ = [
    "FaultSpec",
    "Materialized",
    "generate_schedule",
    "materialize",
    "build_loss",
    "build_perturbation",
    "ATTRIBUTION_SLACK_S",
    "PERSISTENT_MIN_RATE",
]

#: How far back (simulated seconds) an invariant checker looks for a
#: fault that explains a failure report.  Covers the worst-case
#: detection latency of the FSMs: a link-down declaration arrives up to
#: ``sum(min(2**i, cap)) * rtx = 1.15 s`` after the fault's last dropped
#: attempt, plus one tree session.
ATTRIBUTION_SLACK_S = 3.0

#: Minimum loss rate at which an open-ended fault is considered
#: *persistent* — i.e. the eventual-detection invariant requires the
#: detector to flag it (cf. the paper's §5 evaluation floor of 0.1%;
#: the soak keeps a wide margin so detection is deterministic within a
#: few-second horizon).
PERSISTENT_MIN_RATE = 0.25

#: Guardrail: total worst-case displacement (reorder + delay spikes) on
#: forward DATA packets must stay below the monitor's T_wait (0.015 s in
#: the harness), or late tagged packets would miss their session's
#: Report and masquerade as loss.
_FORWARD_DISPLACEMENT_BUDGET_S = 0.012

#: Guardrail: reverse-direction (control) displacement budget.  Kept far
#: below the sender's worst-case patience (~1.5 s of capped-backoff
#: retries), so displacement alone can never exhaust ``max_attempts``.
_REVERSE_DISPLACEMENT_BUDGET_S = 0.300

_LOSS_KINDS = frozenset({"entry_loss", "uniform_loss", "link_flap"})
_CONTROL_KINDS = frozenset({"control_loss", "link_flap", "switch_restart"})


@dataclass
class FaultSpec:
    """One serialisable fault: what, where, when, and its seed index.

    Attributes:
        kind: one of ``entry_loss``, ``uniform_loss``, ``control_loss``,
            ``reorder``, ``duplicate``, ``corrupt``, ``delay_spike``,
            ``link_flap``, ``switch_restart``.
        target: ``"forward"`` (A→B, the data direction) or ``"reverse"``
            (B→A, ACKs/Reports).  Ignored by ``switch_restart``, which
            uses ``params["side"]``.
        params: kind-specific parameters (JSON-scalar values only).
        index: position in the originally generated schedule; the fault's
            RNG seed is derived from it and survives shrinking.
    """

    kind: str
    target: str = "forward"
    params: dict[str, Any] = dc_field(default_factory=dict)
    index: int = 0

    # -- serialisation ----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "target": self.target,
                "params": dict(self.params), "index": self.index}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FaultSpec":
        return cls(kind=str(d["kind"]), target=str(d.get("target", "forward")),
                   params=dict(d.get("params", {})),
                   index=int(d.get("index", 0)))

    # -- classification helpers (used by the invariants) ------------------

    def window(self) -> tuple[float, float]:
        """Activation window ``[start, end)`` with ``inf`` for open end."""
        if self.kind == "link_flap":
            windows = self.params["windows"]
            return float(windows[0][0]), float(windows[-1][1])
        if self.kind == "switch_restart":
            t = float(self.params["time"])
            return t, t
        start = float(self.params.get("start", 0.0))
        end = self.params.get("end")
        return start, (float("inf") if end is None else float(end))

    def active_in(self, lo: float, hi: float) -> bool:
        """Whether the fault's window intersects ``[lo, hi]``."""
        start, end = self.window()
        return start <= hi and end >= lo

    def is_loss_class(self) -> bool:
        """Can this fault legitimately cause entry/tree/uniform flags?

        Only faults that remove (or mis-attribute) forward data packets
        qualify; reordering, duplication and benign corruption must
        *never* be blamed for a loss flag — that asymmetry is exactly
        what the attribution invariant checks.
        """
        if self.target != "forward" and self.kind != "switch_restart":
            return False
        if self.kind in _LOSS_KINDS:
            return True
        return self.kind == "corrupt" and self.params.get("field") == "tag"

    def affects_entry(self, entry: Any, dedicated: bool) -> bool:
        """Loss-class scoping: can this fault hit ``entry``'s packets?"""
        if not self.is_loss_class():
            return False
        if self.kind == "entry_loss":
            return entry in self.params["entries"]
        if self.kind == "corrupt":  # tag corruption: dedicated tags only
            return dedicated
        return True  # uniform_loss / link_flap hit everything

    def is_control_class(self) -> bool:
        """Can this fault legitimately cause a LINK_DOWN declaration?"""
        if self.kind in _CONTROL_KINDS:
            return True
        return (self.kind == "corrupt"
                and self.params.get("field") in ("session", "snapshot"))

    def is_persistent(self, horizon: float) -> bool:
        """Open-ended, heavy enough that detection is *required* (I4)."""
        if self.kind not in ("entry_loss", "uniform_loss"):
            return False
        if self.target != "forward":
            return False
        start, end = self.window()
        if end < horizon:
            return False
        if float(self.params.get("rate", 0.0)) < PERSISTENT_MIN_RATE:
            return False
        return start <= horizon - 2.5


def generate_schedule(
    seed: int,
    duration_s: float,
    dedicated: list[Any],
    best_effort: list[Any],
) -> list[FaultSpec]:
    """Draw a guardrailed random fault schedule for one soak run."""
    rng = random.Random(stable_seed(seed, "chaos", "schedule"))
    n_faults = rng.randint(1, 4)
    fwd_budget = _FORWARD_DISPLACEMENT_BUDGET_S
    rev_budget = _REVERSE_DISPLACEMENT_BUDGET_S
    entries = list(dedicated) + list(best_effort)
    kinds = ["entry_loss", "uniform_loss", "control_loss", "reorder",
             "duplicate", "corrupt", "delay_spike", "link_flap",
             "switch_restart"]
    schedule: list[FaultSpec] = []
    for index in range(n_faults):
        kind = rng.choice(kinds)
        spec = _draw_fault(kind, rng, duration_s, entries, dedicated,
                           fwd_budget, rev_budget, index)
        if spec is None:
            continue
        if spec.kind in ("reorder", "delay_spike"):
            cost = float(spec.params.get("max_displacement_s", 0.0)) \
                + float(spec.params.get("spike_s", 0.0)) \
                + float(spec.params.get("jitter_s", 0.0))
            if spec.target == "forward":
                fwd_budget -= cost
            else:
                rev_budget -= cost
        schedule.append(spec)
    if not schedule:  # never emit an empty schedule: re-draw one fault
        spec = _draw_fault("uniform_loss", rng, duration_s, entries,
                           dedicated, fwd_budget, rev_budget, n_faults)
        assert spec is not None
        schedule.append(spec)
    return schedule


def _window_params(rng: random.Random, duration_s: float,
                   allow_persistent: bool) -> dict[str, Any]:
    """A start/end pair: either open-ended or a bounded window."""
    if allow_persistent and rng.random() < 0.5:
        return {"start": round(rng.uniform(0.0, max(duration_s - 2.5, 0.5)), 3),
                "end": None}
    start = round(rng.uniform(0.0, duration_s * 0.6), 3)
    return {"start": start,
            "end": round(start + rng.uniform(0.4, 1.2), 3)}


def _draw_fault(
    kind: str,
    rng: random.Random,
    duration_s: float,
    entries: list[Any],
    dedicated: list[Any],
    fwd_budget: float,
    rev_budget: float,
    index: int,
) -> FaultSpec | None:
    if kind == "entry_loss":
        k = rng.randint(1, max(1, len(entries) // 2))
        chosen = rng.sample(entries, k)
        params = {"entries": chosen,
                  "rate": round(rng.uniform(0.3, 1.0), 3)}
        params.update(_window_params(rng, duration_s, allow_persistent=True))
        return FaultSpec("entry_loss", "forward", params, index)
    if kind == "uniform_loss":
        params = {"rate": round(rng.uniform(0.3, 0.9), 3)}
        params.update(_window_params(rng, duration_s, allow_persistent=True))
        return FaultSpec("uniform_loss", "forward", params, index)
    if kind == "control_loss":
        target = rng.choice(["forward", "reverse"])
        if rng.random() < 0.25:  # dead control channel: LINK_DOWN expected
            params: dict[str, Any] = {"rate": 1.0}
            params.update({"start": round(rng.uniform(0.0, duration_s - 2.5), 3),
                           "end": None})
        else:
            params = {"rate": round(rng.uniform(0.2, 0.6), 3)}
            params.update(_window_params(rng, duration_s,
                                         allow_persistent=False))
        return FaultSpec("control_loss", target, params, index)
    if kind == "reorder":
        target = rng.choice(["forward", "reverse"])
        cap = min(0.005, fwd_budget) if target == "forward" \
            else min(0.15, rev_budget)
        if cap <= 0.0005:
            return None  # displacement budget exhausted
        params = {"rate": round(rng.uniform(0.1, 0.8), 3),
                  "max_displacement_s": round(rng.uniform(0.0005, cap), 5)}
        params.update(_window_params(rng, duration_s, allow_persistent=True))
        return FaultSpec("reorder", target, params, index)
    if kind == "delay_spike":
        target = rng.choice(["forward", "reverse"])
        cap = min(0.004, fwd_budget) if target == "forward" \
            else min(0.1, rev_budget)
        if cap <= 0.0005:
            return None
        spike = round(rng.uniform(0.0005, cap * 0.75), 5)
        params = {"spike_s": spike,
                  "jitter_s": round(rng.uniform(0.0, cap - spike), 5),
                  "rate": round(rng.uniform(0.2, 1.0), 3)}
        params.update(_window_params(rng, duration_s, allow_persistent=False))
        return FaultSpec("delay_spike", target, params, index)
    if kind == "duplicate":
        target = rng.choice(["forward", "reverse"])
        params = {"rate": round(rng.uniform(0.05, 0.3), 3),
                  "copies": rng.randint(1, 2)}
        params.update(_window_params(rng, duration_s, allow_persistent=True))
        return FaultSpec("duplicate", target, params, index)
    if kind == "corrupt":
        field = rng.choice(["seq", "tag", "session", "snapshot"])
        if field == "snapshot":
            target = "reverse"  # Reports travel B→A
        elif field == "session":
            target = rng.choice(["forward", "reverse"])
        else:
            target = "forward"  # data fields ride the data direction
        params = {"field": field, "rate": round(rng.uniform(0.05, 0.5), 3)}
        params.update(_window_params(rng, duration_s, allow_persistent=True))
        return FaultSpec("corrupt", target, params, index)
    if kind == "link_flap":
        target = rng.choice(["forward", "reverse"])
        n = rng.randint(1, 3)
        windows = []
        t = rng.uniform(0.2, duration_s * 0.5)
        for _ in range(n):
            width = rng.uniform(0.05, 0.4)
            windows.append([round(t, 3), round(t + width, 3)])
            t += width + rng.uniform(0.3, 1.0)
        return FaultSpec("link_flap", target, {"windows": windows}, index)
    if kind == "switch_restart":
        params = {"time": round(rng.uniform(0.5, max(duration_s - 1.5, 0.6)), 3),
                  "side": rng.choice(["upstream", "downstream", "both"])}
        return FaultSpec("switch_restart", "forward", params, index)
    raise ValueError(f"unknown fault kind: {kind!r}")  # pragma: no cover


@dataclass
class Materialized:
    """Live objects built from a schedule, for invariant bookkeeping."""

    schedule: list[FaultSpec]
    chaos_forward: ChaosModel | None = None
    chaos_reverse: ChaosModel | None = None
    failures_forward: list[GrayFailure] = dc_field(default_factory=list)
    failures_reverse: list[GrayFailure] = dc_field(default_factory=list)
    restarts: list[FaultSpec] = dc_field(default_factory=list)

    def chaos_models(self) -> list[ChaosModel]:
        return [m for m in (self.chaos_forward, self.chaos_reverse)
                if m is not None]


#: PacketKind scopes for forward-direction displacement faults: only
#: DATA packets may be displaced on the data direction, so Start/Stop
#: delimiters are never reordered past the tagged packets they bracket
#: (the guarantee the T_wait budget above is computed against).
_FORWARD_DISPLACE_KINDS = (PacketKind.DATA,)


def _build_perturbation(spec: FaultSpec, seed: int) -> Perturbation:
    p = spec.params
    start = float(p.get("start", 0.0))
    end = p.get("end")
    end_f = None if end is None else float(end)
    common: dict[str, Any] = {"start_time": start, "end_time": end_f,
                              "seed": seed}
    if spec.kind == "reorder":
        if spec.target == "forward":
            common["kinds"] = _FORWARD_DISPLACE_KINDS
        return Reorder(float(p["rate"]), float(p["max_displacement_s"]),
                       **common)
    if spec.kind == "delay_spike":
        if spec.target == "forward":
            common["kinds"] = _FORWARD_DISPLACE_KINDS
        return DelaySpike(float(p["spike_s"]), float(p.get("jitter_s", 0.0)),
                          rate=float(p.get("rate", 1.0)), **common)
    if spec.kind == "duplicate":
        return Duplicate(float(p["rate"]), copies=int(p.get("copies", 1)),
                         **common)
    if spec.kind == "corrupt":
        return CorruptField(float(p["rate"]), field=str(p["field"]), **common)
    if spec.kind == "link_flap":
        return LinkFlap([tuple(w) for w in p["windows"]],
                        seed=seed)
    raise ValueError(f"not a perturbation kind: {spec.kind!r}")


def _build_loss(spec: FaultSpec, seed: int) -> GrayFailure:
    p = spec.params
    window = {"start_time": float(p.get("start", 0.0)),
              "end_time": None if p.get("end") is None else float(p["end"]),
              "seed": seed}
    if spec.kind == "entry_loss":
        return EntryLossFailure(p["entries"], float(p["rate"]), **window)
    if spec.kind == "uniform_loss":
        return UniformLossFailure(float(p["rate"]), **window)
    if spec.kind == "control_loss":
        return ControlPlaneFailure(float(p["rate"]), **window)
    raise ValueError(f"not a loss kind: {spec.kind!r}")


def build_loss(spec: FaultSpec, seed: int) -> GrayFailure:
    """Public loss-model factory for one spec (used by fabric chaos).

    ``seed`` must be ``stable_seed(base_seed, "fault", spec.index)`` —
    the same derivation :func:`materialize` uses — so a spec replays the
    identical RNG stream whether it runs on the two-switch topology or
    addressed to a fabric link.
    """
    return _build_loss(spec, seed)


def build_perturbation(spec: FaultSpec, seed: int) -> Perturbation:
    """Public perturbation factory for one spec (see :func:`build_loss`)."""
    return _build_perturbation(spec, seed)


def materialize(
    schedule: list[FaultSpec],
    base_seed: int,
    sim: Simulator,
    topo: TwoSwitchTopology,
    monitor: Any,
) -> Materialized:
    """Wire a schedule onto a two-switch topology and its monitor.

    Loss-model faults compose through
    :class:`~repro.simulator.failures.CompositeFailure` (order-independent
    by design), perturbations through one
    :class:`~repro.chaos.perturbations.ChaosModel` per direction, and
    switch restarts become engine events calling
    ``monitor.restart(side)``.
    """
    out = Materialized(schedule=list(schedule))
    loss: dict[str, list[GrayFailure]] = {"forward": [], "reverse": []}
    perts: dict[str, list[Perturbation]] = {"forward": [], "reverse": []}
    for spec in schedule:
        seed = stable_seed(base_seed, "fault", spec.index)
        if spec.kind in ("entry_loss", "uniform_loss", "control_loss"):
            loss[spec.target].append(_build_loss(spec, seed))
        elif spec.kind == "switch_restart":
            out.restarts.append(spec)
            sim.schedule_at(float(spec.params["time"]), monitor.restart,
                            str(spec.params["side"]))
        else:
            perts[spec.target].append(_build_perturbation(spec, seed))
    out.failures_forward = loss["forward"]
    out.failures_reverse = loss["reverse"]
    if loss["forward"]:
        topo.link_ab.loss_model = CompositeFailure(loss["forward"])
    if loss["reverse"]:
        topo.link_ba.loss_model = CompositeFailure(loss["reverse"])
    if perts["forward"]:
        out.chaos_forward = ChaosModel(perts["forward"],
                                       name="forward").attach(topo.link_ab)
    if perts["reverse"]:
        out.chaos_reverse = ChaosModel(perts["reverse"],
                                       name="reverse").attach(topo.link_ba)
    return out
