"""Invariant-checked soak harness (``fancy-repro chaos``).

One soak run builds the canonical two-switch topology, deploys a full
FANcY monitor (dedicated counters + a small zooming tree), drives
jittered UDP over a handful of entries, materialises a seeded random
fault schedule (:mod:`repro.chaos.schedule`), and then checks the
robustness invariants (:mod:`repro.chaos.invariants`):

* I1 liveness and I2 session monotonicity at every checkpoint;
* I3 attribution, I4 eventual detection, I5 conservation and
  I6 corruption integrity once, after the wind-down drain.

Wind-down sequence — order matters: traffic stops at ``duration_s``, the
monitor keeps running through a grace period (late detections of a
just-started persistent fault land here), then the harness marks itself
stopped, tears the monitor down, and drains the event queue completely
so conservation and integrity are checked against a quiescent wire.

The harness also installs a *recovery hook*: when a sender FSM declares
the link dead (state FAILED — terminal by design, §4.1 leaves
re-establishment to the control plane), the harness plays control plane
and revives the FSM shortly after.  Without this, one early LINK_DOWN
would end monitoring and trivially mask every later invariant.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from repro.core.detector import FancyConfig, FancyLinkMonitor
from repro.core.hashtree import HashTreeParams
from repro.core.output import FailureKind
from repro.core.protocol import SenderState
from repro.runtime import Job, RuntimeContext, run_sweep, stable_seed
from repro.simulator.engine import Simulator
from repro.simulator.topology import PORT_TO_PEER, TwoSwitchTopology
from repro.simulator.udp import UdpSource

from .invariants import (
    SessionTracker,
    Violation,
    check_attribution,
    check_conservation,
    check_detection,
    check_integrity,
    check_liveness,
)
from .schedule import FaultSpec, Materialized, generate_schedule, materialize

__all__ = [
    "SoakConfig",
    "SoakResult",
    "run_soak",
    "run_many",
    "soak_worker",
    "regression_scenario",
    "REGRESSIONS",
    "REGRESSION_EXPECTATIONS",
]

#: Seconds after a LINK_DOWN declaration before the harness's stand-in
#: control plane revives the FAILED sender FSM.
_REVIVE_DELAY_S = 0.3


@dataclass(frozen=True)
class SoakConfig:
    """One soak run's knobs (JSON-round-trippable for the reproducer)."""

    seed: int = 0
    duration_s: float = 4.0          #: traffic horizon (faults live here)
    grace_s: float = 2.5             #: monitor-only tail for late detections
    checkpoint_s: float = 0.25       #: I1/I2 sampling period
    n_dedicated: int = 4
    n_best_effort: int = 2
    rate_bps: float = 640_000.0      #: per-entry (200 pps of 400 B frames)
    packet_size: int = 400
    regression: str | None = None    #: named protocol-regression fixture

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "SoakConfig":
        return cls(**{f.name: d[f.name] for f in dataclasses.fields(cls)
                      if f.name in d})


@dataclass
class SoakResult:
    """Outcome of one soak run."""

    seed: int
    violations: list[Violation]
    schedule: list[FaultSpec]
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "schedule": [s.to_dict() for s in self.schedule],
            "stats": self.stats,
        }


class _RecoveryState:
    """Shared stop flag + revival counter for the link-failure hook."""

    __slots__ = ("stopped", "revivals")

    def __init__(self) -> None:
        self.stopped = False
        self.revivals = 0


def _install_recovery(monitor: FancyLinkMonitor, sim: Simulator,
                      state: _RecoveryState) -> None:
    """Chain a delayed FSM revival behind each sender's failure callback."""
    for sender in (monitor.dedicated_sender, monitor.tree_sender):
        if sender is None:
            continue

        original = sender.on_link_failure

        def wrapped(fsm_id: str, now: float, _sender: Any = sender,
                    _original: Any = original) -> None:
            if _original is not None:
                _original(fsm_id, now)  # record the LINK_DOWN report first

            def revive() -> None:
                # Guarded: never revive after teardown (a post-stop restart
                # would re-arm timers and the drain would never finish),
                # and never touch an FSM something else already revived.
                if state.stopped or _sender.state is not SenderState.FAILED:
                    return
                state.revivals += 1
                _sender.restart()

            sim.schedule(_REVIVE_DELAY_S, revive)

        sender.on_link_failure = wrapped


def _entries(config: SoakConfig) -> tuple[list[str], list[str]]:
    dedicated = [f"hp/{i}" for i in range(config.n_dedicated)]
    best_effort = [f"be/{i}" for i in range(config.n_best_effort)]
    return dedicated, best_effort


def run_soak(config: SoakConfig,
             schedule: list[FaultSpec] | None = None) -> SoakResult:
    """Execute one seeded soak run; return its violations and stats.

    ``schedule`` overrides the generated fault schedule — this is how the
    shrinker replays reduced schedules and how reproducer files replay
    pinned ones.  Everything else (traffic jitter, fault RNGs, hash
    seeds) derives from ``config.seed`` via ``stable_seed``.
    """
    dedicated, best_effort = _entries(config)
    if schedule is None:
        schedule = generate_schedule(config.seed, config.duration_s,
                                     dedicated, best_effort)

    sim = Simulator()
    topo = TwoSwitchTopology(sim)
    fancy = FancyConfig(
        high_priority=dedicated,
        tree_params=HashTreeParams(width=8, depth=2, split=2, pipelined=True),
        dedicated_session_s=0.050,
        tree_session_s=0.200,
        twait_s=0.015,  # > worst-case forward displacement budget (12 ms)
        seed=stable_seed(config.seed, "fancy", bits=31),
        accept_stale_responses=config.regression == "stale-session",
    )
    monitor = FancyLinkMonitor(sim, topo.upstream, PORT_TO_PEER,
                               topo.downstream, PORT_TO_PEER, config=fancy)
    state = _RecoveryState()
    _install_recovery(monitor, sim, state)

    sources: list[UdpSource] = []
    for i, entry in enumerate(dedicated + best_effort):
        src = UdpSource(
            sim, topo.source.send, entry, flow_id=i,
            rate_bps=config.rate_bps, packet_size=config.packet_size,
            jitter=0.1, seed=stable_seed(config.seed, "src", i),
        )
        src.start(delay=0.001 * i)
        sources.append(src)
        sim.schedule_at(config.duration_s, src.stop)

    materialized: Materialized = materialize(schedule, config.seed, sim,
                                             topo, monitor)
    monitor.start(delay=0.005)

    # -- run with periodic I1/I2 checkpoints --------------------------------
    violations: list[Violation] = []
    tracker = SessionTracker(monitor)
    end = config.duration_s + config.grace_s
    t = config.checkpoint_s
    while t < end - 1e-9:
        sim.run(until=t)
        violations.extend(check_liveness(monitor, sim.now))
        violations.extend(tracker.check(monitor, sim.now))
        t += config.checkpoint_s
    sim.run(until=end)
    violations.extend(check_liveness(monitor, sim.now))
    violations.extend(tracker.check(monitor, sim.now))

    # -- wind-down: stop, then drain to quiescence --------------------------
    state.stopped = True
    monitor.stop()
    sim.run()  # complete drain: in-flight packets, guarded revivals, etc.

    violations.extend(check_attribution(monitor.log, schedule, monitor,
                                        dedicated, best_effort))
    violations.extend(check_detection(monitor.log, schedule, monitor,
                                      dedicated, best_effort,
                                      horizon=config.duration_s))
    violations.extend(check_conservation([topo.link_ab, topo.link_ba],
                                         sim.now))
    violations.extend(check_integrity(monitor, materialized.chaos_models(),
                                      sim.now))

    stats = _collect_stats(monitor, topo, materialized, sources, state, sim)
    return SoakResult(seed=config.seed, violations=violations,
                      schedule=list(schedule), stats=stats)


def _collect_stats(monitor: FancyLinkMonitor, topo: TwoSwitchTopology,
                   materialized: Materialized, sources: list[UdpSource],
                   state: _RecoveryState, sim: Simulator) -> dict[str, Any]:
    fsms = {
        "dedicated_sender": monitor.dedicated_sender,
        "tree_sender": monitor.tree_sender,
        "dedicated_receiver": monitor.dedicated_receiver,
        "tree_receiver": monitor.tree_receiver,
    }
    reports: dict[str, int] = {}
    for kind in FailureKind:
        n = len(monitor.log.by_kind(kind))
        if n:
            reports[kind.value] = n
    return {
        "sim_time": sim.now,
        "packets_sent": sum(s.packets_sent for s in sources),
        "link_ab": topo.link_ab.stats.as_dict(),
        "link_ba": topo.link_ba.stats.as_dict(),
        "chaos": {m.name: m.stats() for m in materialized.chaos_models()},
        "sessions_completed": {
            name: fsm.sessions_completed
            for name, fsm in fsms.items()
            if fsm is not None and hasattr(fsm, "sessions_completed")
        },
        "rejected": {
            name: {"corrupt": fsm.rejected_corrupt,
                   "stale": fsm.rejected_stale}
            for name, fsm in fsms.items() if fsm is not None
        },
        "fsm_restarts": {
            name: fsm.restarts for name, fsm in fsms.items()
            if fsm is not None
        },
        "revivals": state.revivals,
        "reports": reports,
    }


# -- named protocol-regression fixtures ----------------------------------------


def _stale_session_scenario(config: SoakConfig) -> tuple[SoakConfig,
                                                         list[FaultSpec]]:
    """Disable stale-session rejection, then reorder + duplicate Reports.

    Every B→A control message is displaced by up to 300 ms and
    triplicated, so Reports from session *s* routinely straggle into the
    WAIT_REPORT window of session *s+1* (which opens ~130 ms after *s*
    completes — the displacement must exceed that gap for stragglers to
    land inside it).  The un-hardened sender acts on them, compares the
    wrong session's snapshot against its live counters, and raises loss
    flags with no loss-class fault anywhere in the schedule — an I3
    attribution violation the soak must catch.  The hardened protocol
    (``accept_stale_responses=False``) passes this exact schedule
    silently (guarded by tests/chaos/test_harness.py).
    """
    config = dataclasses.replace(
        config,
        regression="stale-session",
        duration_s=max(config.duration_s, 8.0),
    )
    schedule = [
        FaultSpec("reorder", "reverse",
                  {"rate": 1.0, "max_displacement_s": 0.3,
                   "start": 0.3, "end": None}, index=0),
        FaultSpec("duplicate", "reverse",
                  {"rate": 1.0, "copies": 2, "start": 0.3, "end": None},
                  index=1),
    ]
    return config, schedule


def _control_plane_grey_scenario(config: SoakConfig) -> tuple[SoakConfig,
                                                              list[FaultSpec]]:
    """Persistent asymmetric loss on the control channel only.

    20% of B→A control messages (ACKs, counter Reports) vanish while the
    data plane stays perfect — the grey scenario the degradation ladder
    exists for (docs/ROBUSTNESS.md).  Unlike ``stale-session`` this
    fixture is expected to come back *clean*: lost responses are covered
    by the capped-backoff retransmit budget, any exhaustion that does
    slip through is attributable to the control-class fault (I3), and no
    loss flag may appear because no data packet was dropped.  CI runs it
    without negation — a violation here is a real protocol regression.
    """
    config = dataclasses.replace(
        config,
        regression="control-plane-grey",
        duration_s=max(config.duration_s, 8.0),
    )
    schedule = [
        FaultSpec("control_loss", "reverse",
                  {"rate": 0.2, "start": 0.3, "end": None}, index=0),
    ]
    return config, schedule


REGRESSIONS = {
    "stale-session": _stale_session_scenario,
    "control-plane-grey": _control_plane_grey_scenario,
}

#: What each named fixture is expected to produce: ``"violate"`` fixtures
#: prove the harness has teeth (CI negates their exit status),
#: ``"clean"`` fixtures pin hard-won robustness behaviour (CI runs them
#: plain — a violation is a regression).
REGRESSION_EXPECTATIONS = {
    "stale-session": "violate",
    "control-plane-grey": "clean",
}


def regression_scenario(name: str,
                        config: SoakConfig) -> tuple[SoakConfig,
                                                     list[FaultSpec]]:
    """Resolve a named regression fixture into (config, pinned schedule)."""
    try:
        builder = REGRESSIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown regression {name!r}; "
            f"available: {', '.join(sorted(REGRESSIONS))}") from None
    return builder(config)


# -- parallel multi-seed execution ---------------------------------------------


def soak_worker(payload: dict[str, Any]) -> dict[str, Any]:
    """Module-level (picklable) worker for :func:`repro.runtime.run_sweep`."""
    config = SoakConfig.from_dict(payload["config"])
    schedule = payload.get("schedule")
    specs = ([FaultSpec.from_dict(d) for d in schedule]
             if schedule is not None else None)
    return run_soak(config, specs).to_dict()


def run_many(base: SoakConfig, seeds: list[int],
             runtime: RuntimeContext | None = None) -> dict[int, dict[str, Any]]:
    """Run one soak per seed (parallel under ``runtime.workers``).

    Soak jobs are deliberately uncacheable (empty fingerprint): a soak
    asserts *current-code* behaviour, and serving yesterday's verdict
    from the result cache would defeat the point of running it in CI.
    """
    jobs = [
        Job(key=seed,
            payload={"config": dataclasses.replace(base, seed=seed).to_dict()},
            fingerprint="", sim_s=base.duration_s + base.grace_s)
        for seed in seeds
    ]
    sweep = run_sweep(jobs, soak_worker, runtime=runtime, label="chaos-soak")
    out: dict[int, dict[str, Any]] = dict(sweep.results)
    for seed, err in sweep.errors.items():
        out[seed] = {"seed": seed, "ok": False, "schedule": [],
                     "stats": {},
                     "violations": [{"invariant": "CRASH", "time": -1.0,
                                     "detail": str(err)}]}
    return out
