"""Topology builders: ring, Clos/fat-tree, and ISP-style graphs.

All builders return a :class:`~repro.fabric.graph.FabricGraph` whose
node and edge insertion order is a pure function of the arguments —
the order is what fixes switch port assignment, BFS tie-breaking and
ECMP hashing downstream, so builders must never iterate sets or draw
from unseeded RNGs (fancylint FCY001/FCY008).
"""

from __future__ import annotations

import random

from ..runtime import stable_seed
from .graph import FabricGraph

__all__ = ["ring", "clos", "fat_tree", "abilene", "random_isp"]


def ring(n: int) -> FabricGraph:
    """``n`` switches in a cycle: ``s0 - s1 - ... - s{n-1} - s0``."""
    if n < 3:
        raise ValueError("ring needs at least three switches")
    g = FabricGraph(f"ring{n}")
    for i in range(n):
        g.add_node(f"s{i}")
    for i in range(n):
        g.add_edge(f"s{i}", f"s{(i + 1) % n}")
    return g


def clos(n_leaves: int, n_spines: int) -> FabricGraph:
    """Two-tier leaf-spine Clos: every leaf connects to every spine."""
    if n_leaves < 2 or n_spines < 1:
        raise ValueError("clos needs >= 2 leaves and >= 1 spine")
    g = FabricGraph(f"clos{n_leaves}x{n_spines}")
    for i in range(n_leaves):
        g.add_node(f"leaf{i}")
    for j in range(n_spines):
        g.add_node(f"spine{j}")
    for i in range(n_leaves):
        for j in range(n_spines):
            g.add_edge(f"leaf{i}", f"spine{j}")
    return g


def fat_tree(k: int) -> FabricGraph:
    """The canonical ``k``-ary fat tree (k even).

    ``(k/2)^2`` cores, ``k`` pods of ``k/2`` aggregation and ``k/2``
    edge switches; core group ``g`` connects to aggregation switch
    ``g`` of every pod.  ``k=4`` yields 20 switches and 32 edges — 64
    directed links, enough for the ≥32-concurrent-session experiments.
    """
    if k < 2 or k % 2:
        raise ValueError("fat tree arity must be even and >= 2")
    half = k // 2
    g = FabricGraph(f"fat{k}")
    for j in range(half * half):
        g.add_node(f"core{j}")
    for p in range(k):
        for i in range(half):
            g.add_node(f"agg{p}-{i}")
        for i in range(half):
            g.add_node(f"edge{p}-{i}")
    for p in range(k):
        for a in range(half):
            for e in range(half):
                g.add_edge(f"agg{p}-{a}", f"edge{p}-{e}")
        for a in range(half):
            for c in range(half):
                g.add_edge(f"core{a * half + c}", f"agg{p}-{a}")
    return g


#: Internet2/Abilene backbone (11 PoPs, 14 links) — the Rocketfuel-style
#: ISP topology used by the fabric experiments' WAN scenario.
_ABILENE_EDGES = (
    ("Seattle", "Sunnyvale"),
    ("Seattle", "Denver"),
    ("Sunnyvale", "LosAngeles"),
    ("Sunnyvale", "Denver"),
    ("LosAngeles", "Houston"),
    ("Denver", "KansasCity"),
    ("KansasCity", "Houston"),
    ("KansasCity", "Indianapolis"),
    ("Houston", "Atlanta"),
    ("Chicago", "Indianapolis"),
    ("Chicago", "NewYork"),
    ("Indianapolis", "Atlanta"),
    ("Atlanta", "Washington"),
    ("NewYork", "Washington"),
)


def abilene() -> FabricGraph:
    """The Abilene (Internet2) research backbone."""
    g = FabricGraph("abilene")
    for a, b in _ABILENE_EDGES:
        g.add_edge(a, b)
    return g


def random_isp(n: int, extra_edges: int = 0, seed: int = 0) -> FabricGraph:
    """A connected random graph shaped like a small ISP core.

    A random spanning tree (guaranteeing connectivity) plus
    ``extra_edges`` random chords.  Fully determined by ``(n,
    extra_edges, seed)`` via :func:`repro.runtime.stable_seed`.
    """
    if n < 2:
        raise ValueError("random ISP needs at least two nodes")
    rng = random.Random(stable_seed(seed, "isp", n, extra_edges))
    g = FabricGraph(f"isp{n}")
    names = [f"r{i}" for i in range(n)]
    for name in names:
        g.add_node(name)
    for i in range(1, n):
        g.add_edge(names[rng.randrange(i)], names[i])
    attempts = 0
    added = 0
    while added < extra_edges and attempts < extra_edges * 20 + 20:
        attempts += 1
        a, b = rng.sample(names, 2)
        if not g.has_edge(a, b):
            g.add_edge(a, b)
            added += 1
    return g
