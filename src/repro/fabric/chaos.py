"""Fabric-addressed chaos: fault schedules on fabric links + ring soak.

The two-switch chaos subsystem addresses faults as ``"forward"`` /
``"reverse"``; a fabric has many links, so fabric schedules address a
*directed link id*: ``target="link:s1->s2"``.  The specs are otherwise
unchanged :class:`~repro.chaos.schedule.FaultSpec` objects — same JSON
shape, same per-fault seed derivation ``stable_seed(base, "fault",
index)`` (FCY007), so fabric schedules shrink and replay with the
existing tooling.

:func:`fabric_soak` is the invariant-checked soak on a six-switch ring:
UDP entries cross three monitored hops, a fabric-link-addressed fault
schedule runs, and the robustness invariants I1–I6 of
:mod:`repro.chaos.invariants` are asserted *per monitored link* — the
faulted link's monitor must flag exactly the covered entries, every
other monitor must stay silent (attribution against an empty schedule),
and conservation/integrity hold on every wire.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any

from ..chaos.invariants import (
    SessionTracker,
    Violation,
    check_attribution,
    check_conservation,
    check_detection,
    check_integrity,
    check_liveness,
)
from ..chaos.perturbations import ChaosModel, Perturbation
from ..chaos.schedule import FaultSpec, build_loss, build_perturbation
from ..core.detector import FancyConfig
from ..core.hashtree import HashTreeParams
from ..core.output import FailureKind
from ..runtime import stable_seed
from ..simulator.engine import Simulator
from ..simulator.failures import CompositeFailure, GrayFailure
from ..simulator.udp import UdpSource
from .builders import ring
from .deployment import FabricDeployment
from .graph import FabricNetwork

__all__ = [
    "LINK_TARGET_PREFIX",
    "link_target",
    "parse_link_target",
    "as_directional",
    "FabricMaterialized",
    "materialize_on_fabric",
    "FabricSoakConfig",
    "FabricSoakResult",
    "fabric_soak",
]

LINK_TARGET_PREFIX = "link:"


def link_target(a: str, b: str) -> str:
    """The ``FaultSpec.target`` string addressing directed link a→b."""
    return f"{LINK_TARGET_PREFIX}{a}->{b}"


def parse_link_target(target: str) -> str | None:
    """``"link:A->B"`` → ``"A->B"``; ``None`` for non-link targets."""
    if target.startswith(LINK_TARGET_PREFIX):
        return target[len(LINK_TARGET_PREFIX):]
    return None


def as_directional(spec: FaultSpec) -> FaultSpec:
    """Translate a link-addressed spec for the two-switch invariants.

    The invariant checkers classify loss faults by ``target ==
    "forward"``; from the perspective of the faulted link's own monitor
    a ``link:`` target *is* the forward (data) direction.
    """
    return FaultSpec(kind=spec.kind, target="forward",
                     params=dict(spec.params), index=spec.index)


@dataclass
class FabricMaterialized:
    """Live fault objects per fabric link, for invariant bookkeeping."""

    schedule: list[FaultSpec]
    #: link id -> loss models installed on that wire.
    losses: dict[str, list[GrayFailure]] = field(default_factory=dict)
    #: link id -> chaos (perturbation) model attached to that wire.
    chaos: dict[str, ChaosModel] = field(default_factory=dict)
    restarts: list[FaultSpec] = field(default_factory=list)

    def chaos_models_for(self, *link_ids: str) -> list[ChaosModel]:
        return [self.chaos[lid] for lid in link_ids if lid in self.chaos]


def materialize_on_fabric(
    schedule: list[FaultSpec],
    base_seed: int,
    net: FabricNetwork,
    deployment: FabricDeployment | None = None,
) -> FabricMaterialized:
    """Wire link-addressed faults onto a fabric.

    Loss faults compose per link through :class:`CompositeFailure`,
    perturbations through one :class:`ChaosModel` per link, and
    ``switch_restart`` specs (their link id naming the monitored link
    whose monitor reboots) become engine events — mirroring
    :func:`repro.chaos.schedule.materialize` on the two-switch topology.
    """
    out = FabricMaterialized(schedule=list(schedule))
    perts: dict[str, list[Perturbation]] = {}
    for spec in schedule:
        link_id = parse_link_target(spec.target)
        if link_id is None:
            raise ValueError(
                f"fabric schedules need link-addressed targets, got "
                f"{spec.target!r} (use link_target(a, b))")
        net.endpoints(link_id)  # validate early: unknown links fail loudly
        seed = stable_seed(base_seed, "fault", spec.index)
        _schedule_fault_episode(net, deployment, link_id, spec)
        if spec.kind in ("entry_loss", "uniform_loss", "control_loss"):
            out.losses.setdefault(link_id, []).append(build_loss(spec, seed))
        elif spec.kind == "switch_restart":
            if deployment is None or link_id not in deployment.monitors:
                raise ValueError(
                    f"switch_restart targets monitored link {link_id!r}, "
                    "which has no monitor deployed")
            out.restarts.append(spec)
            monitor = deployment.monitors[link_id]
            net.sim.schedule_at(float(spec.params["time"]), monitor.restart,
                                str(spec.params["side"]))
        else:
            perts.setdefault(link_id, []).append(
                build_perturbation(spec, seed))
    for link_id, models in out.losses.items():
        net.links[link_id].loss_model = CompositeFailure(models)
    for link_id, plist in perts.items():
        out.chaos[link_id] = ChaosModel(
            plist, name=link_id).attach(net.links[link_id])
    return out


def _fault_start(spec: FaultSpec) -> float:
    """Activation time of a fault spec (``start``/``time`` param, else 0)."""
    for key in ("start", "time"):
        value = spec.params.get(key)
        if value is not None:
            return float(value)
    return 0.0


def _schedule_fault_episode(net: FabricNetwork,
                            deployment: FabricDeployment | None,
                            link_id: str, spec: FaultSpec) -> None:
    """Open a detection-trace episode when the fault activates.

    The chaos harness is the only actor that knows the *root cause*, so
    it roots each trace: the episode opens at the fault's start time on
    the faulted link's trace collector, and every span the monitor emits
    afterwards (divergence → zoom → flag → reroute) hangs under it.
    No-op when the link is unmonitored or telemetry is off.
    """
    if deployment is None:
        return
    monitor = deployment.monitors.get(link_id)
    if monitor is None:
        return
    traces = getattr(monitor.telemetry, "traces", None)
    if traces is None:
        return
    net.sim.schedule_at(
        _fault_start(spec),
        lambda: traces.begin_episode(
            net.sim.now, cause="fault", name=spec.kind, link=link_id,
            target=spec.target, index=spec.index, params=spec.params))


# -- the ring soak -------------------------------------------------------------


@dataclass(frozen=True)
class FabricSoakConfig:
    """Knobs of the six-switch ring soak (JSON-round-trippable)."""

    seed: int = 0
    ring_size: int = 6
    duration_s: float = 3.5          #: traffic horizon
    grace_s: float = 2.5             #: monitor-only tail for late detections
    checkpoint_s: float = 0.25       #: I1/I2 sampling period
    n_dedicated: int = 3
    n_best_effort: int = 2
    rate_bps: float = 640_000.0
    packet_size: int = 400
    fault_link: str = "s1->s2"       #: directed fabric link the fault hits
    fault_rate: float = 0.9
    fault_start_s: float = 0.5

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FabricSoakConfig":
        return cls(**{f.name: d[f.name] for f in dataclasses.fields(cls)
                      if f.name in d})


@dataclass
class FabricSoakResult:
    """Outcome of one fabric soak run."""

    seed: int
    violations: list[Violation]
    schedule: list[FaultSpec]
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "schedule": [s.to_dict() for s in self.schedule],
            "stats": self.stats,
        }


def _soak_entries(config: FabricSoakConfig) -> tuple[list[str], list[str]]:
    dedicated = [f"hp/{i}" for i in range(config.n_dedicated)]
    best_effort = [f"be/{i}" for i in range(config.n_best_effort)]
    return dedicated, best_effort


def default_fabric_schedule(config: FabricSoakConfig) -> list[FaultSpec]:
    """The pinned soak schedule: one persistent entry-loss gray failure
    addressed to ``config.fault_link``, covering every entry."""
    dedicated, best_effort = _soak_entries(config)
    return [FaultSpec(
        "entry_loss",
        target=LINK_TARGET_PREFIX + config.fault_link,
        params={"entries": dedicated + best_effort,
                "rate": config.fault_rate,
                "start": config.fault_start_s, "end": None},
        index=0,
    )]


def fabric_soak(config: FabricSoakConfig,
                schedule: list[FaultSpec] | None = None,
                telemetry: Any | None = None) -> FabricSoakResult:
    """One invariant-checked soak on the ring fabric.

    Entries travel ``s0 → s2`` over the unique two-hop shortest path
    (``dst`` is chosen off the ring's antipode so ECMP never splits the
    flows), crossing monitors on ``s0->s1`` and ``s1->s2``; a third
    monitor on ``s2->s3`` carries no entry traffic and acts as the
    false-positive sentinel.  I1/I2 are checkpointed per monitor during
    the run; I3–I6 are asserted per monitored link after a full drain.
    """
    if config.ring_size < 4:
        raise ValueError("the ring soak needs at least four switches")
    dedicated, best_effort = _soak_entries(config)
    if schedule is None:
        schedule = default_fabric_schedule(config)

    sim = Simulator()
    net = FabricNetwork(sim, ring(config.ring_size))
    src, dst, sentinel_hop = "s0", "s2", "s3"
    for entry in dedicated + best_effort:
        net.add_entry(entry, src, dst)
    monitored = ["s0->s1", "s1->s2", f"{dst}->{sentinel_hop}"]

    fancy = FancyConfig(
        high_priority=dedicated,
        tree_params=HashTreeParams(width=8, depth=2, split=2, pipelined=True),
        dedicated_session_s=0.050,
        tree_session_s=0.200,
        twait_s=0.015,
        seed=stable_seed(config.seed, "fancy", bits=31),
    )
    deployment = FabricDeployment(net, config=fancy, links=monitored,
                                  telemetry=telemetry)

    sources: list[UdpSource] = []
    for i, entry in enumerate(dedicated + best_effort):
        source = UdpSource(
            sim, net.host(src).send, entry, flow_id=i,
            rate_bps=config.rate_bps, packet_size=config.packet_size,
            jitter=0.1, seed=stable_seed(config.seed, "src", i),
        )
        source.start(delay=0.001 * i)
        sources.append(source)
        sim.schedule_at(config.duration_s, source.stop)

    materialized = materialize_on_fabric(schedule, config.seed, net,
                                         deployment)
    deployment.start(stagger_s=0.005)

    # -- run with periodic I1/I2 checkpoints per monitor --------------------
    violations: list[Violation] = []
    trackers = {lid: SessionTracker(mon)
                for lid, mon in deployment.monitors.items()}
    end = config.duration_s + config.grace_s
    t = config.checkpoint_s
    while t < end + config.checkpoint_s / 2:
        sim.run(until=min(t, end))
        for lid, monitor in deployment.monitors.items():
            violations.extend(check_liveness(monitor, sim.now))
            violations.extend(trackers[lid].check(monitor, sim.now))
        t += config.checkpoint_s

    # -- wind-down: stop monitors, then drain to quiescence -----------------
    deployment.stop()
    sim.run()

    # -- I3/I4/I6 per monitored link ----------------------------------------
    faulted = {lid: [as_directional(s) for s in schedule
                     if parse_link_target(s.target) == lid]
               for lid in deployment.monitors}
    for lid, monitor in deployment.monitors.items():
        link_schedule = faulted[lid]
        violations.extend(check_attribution(
            monitor.log, link_schedule, monitor, dedicated, best_effort))
        violations.extend(check_detection(
            monitor.log, link_schedule, monitor, dedicated, best_effort,
            horizon=config.duration_s))
        violations.extend(check_integrity(
            monitor, materialized.chaos_models_for(lid), sim.now))
    # -- I5 on every wire of the fabric -------------------------------------
    violations.extend(check_conservation(
        [net.links[lid] for lid in sorted(net.links)], sim.now))

    if telemetry is not None:
        for monitor in deployment.monitors.values():
            traces = getattr(monitor.telemetry, "traces", None)
            if traces is not None:
                traces.finalize(sim.now)

    stats = {
        "sim_time": sim.now,
        "packets_sent": sum(s.packets_sent for s in sources),
        "links": {lid: net.links[lid].stats.as_dict() for lid in monitored},
        "sessions_completed": deployment.sessions_completed(),
        "reports": {
            lid: {kind.value: n for kind in FailureKind
                  if (n := len(mon.log.by_kind(kind)))}
            for lid, mon in deployment.monitors.items()
        },
        "detections": deployment.detection_records(),
    }
    if telemetry is not None:
        stats["trace_spans"] = {
            lid: len(getattr(mon.telemetry, "traces", []) or [])
            for lid, mon in deployment.monitors.items()
        }
    return FabricSoakResult(seed=config.seed, violations=violations,
                            schedule=list(schedule), stats=stats)
