"""Topology graphs and their materialization onto the simulator.

:class:`FabricGraph` is a deliberately small undirected graph whose
adjacency is stored in *insertion-ordered* dicts — never sets — so every
traversal (BFS, ECMP enumeration, port assignment) is reproducible under
any ``PYTHONHASHSEED`` (fancylint FCY003/FCY008 guard this).

:class:`FabricNetwork` turns a graph into live ``Switch``/``Link``
objects.  Forwarding is destination-based per monitoring entry: an entry
registered with :meth:`FabricNetwork.add_entry` gets next-hop port sets
installed on **every** switch (distance-vector style), so a packet
steered off its shortest path — by a selective reroute — keeps making
progress from wherever it lands.  ECMP ties are broken by a
flowlet-stable CRC32 hash of ``(switch, entry, flow_id, direction)``:
one flow always takes one port, so rerouting never reorders within a
flow, and the choice is independent of ``hash()`` randomization.
"""

from __future__ import annotations

import zlib
from collections import deque
from collections.abc import Callable, Sequence
from typing import Any

from ..simulator.apps import Host
from ..simulator.engine import Simulator
from ..simulator.link import Link, connect_duplex
from ..simulator.switch import Switch

__all__ = ["FabricGraph", "FabricNetwork", "PORT_TO_HOST", "flowlet_port"]

#: Every fabric switch reserves port 0 for its (lazily created) host.
PORT_TO_HOST = 0


class FabricGraph:
    """An undirected graph with deterministic adjacency order.

    Nodes and neighbors keep insertion order; adjacency is a
    dict-of-dicts rather than a dict-of-sets so iteration never depends
    on ``PYTHONHASHSEED``.
    """

    def __init__(self, name: str = "fabric") -> None:
        self.name = name
        # node -> {neighbor: None}; the inner dict is an ordered set.
        self._adj: dict[str, dict[str, None]] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, node: str) -> None:
        self._adj.setdefault(node, {})

    def add_edge(self, a: str, b: str) -> None:
        if a == b:
            raise ValueError(f"self-loop on {a!r}")
        self.add_node(a)
        self.add_node(b)
        self._adj[a].setdefault(b)
        self._adj[b].setdefault(a)

    # -- queries ----------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        return list(self._adj)

    def neighbors(self, node: str) -> list[str]:
        return list(self._adj[node])

    def degree(self, node: str) -> int:
        return len(self._adj[node])

    def has_edge(self, a: str, b: str) -> bool:
        return b in self._adj.get(a, {})

    def edges(self) -> list[tuple[str, str]]:
        """Undirected edges, each once, in insertion order."""
        seen: dict[tuple[str, str], None] = {}
        for a in self._adj:
            for b in self._adj[a]:
                if (b, a) not in seen:
                    seen[(a, b)] = None
        return list(seen)

    def directed_links(self) -> list[tuple[str, str]]:
        """Both directions of every edge, in insertion order."""
        out: list[tuple[str, str]] = []
        for a, b in self.edges():
            out.append((a, b))
            out.append((b, a))
        return out

    def distances(self, dst: str, without: tuple[str, str] | None = None) -> dict[str, int]:
        """Hop counts to ``dst`` (BFS over reversed edges).

        ``without`` excludes one *directed* link ``(a, b)``: paths may
        not forward over a→b (the pruned-graph computation used for
        repair paths around a failed directional link).
        """
        dist = {dst: 0}
        queue = deque([dst])
        while queue:
            node = queue.popleft()
            for nbr in self._adj[node]:
                # Traversing dst-outwards: nbr would forward nbr -> node.
                if without is not None and (nbr, node) == without:
                    continue
                if nbr not in dist:
                    dist[nbr] = dist[node] + 1
                    queue.append(nbr)
        return dist

    def ecmp_next_hops(self, src: str, dst: str) -> list[str]:
        """Neighbors of ``src`` on some shortest path toward ``dst``."""
        if src == dst:
            return []
        dist = self.distances(dst)
        if src not in dist:
            return []
        return [n for n in self._adj[src] if dist.get(n) == dist[src] - 1]

    def shortest_path(
        self, src: str, dst: str, without: tuple[str, str] | None = None
    ) -> list[str] | None:
        """One deterministic shortest path, optionally avoiding a
        directed link; ``None`` when disconnected."""
        if src == dst:
            return [src]
        dist = self.distances(dst, without=without)
        if src not in dist:
            return None
        path = [src]
        node = src
        while node != dst:
            for nbr in self._adj[node]:
                if without is not None and (node, nbr) == without:
                    continue
                if dist.get(nbr) == dist[node] - 1:
                    path.append(nbr)
                    node = nbr
                    break
            else:  # pragma: no cover - dist guarantees a next hop
                return None
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FabricGraph({self.name!r}, nodes={len(self._adj)}, "
                f"edges={len(self.edges())})")


def flowlet_port(node: str, entry: Any, flow_id: int, reverse: bool,
                 ports: Sequence[int]) -> int:
    """Deterministic flowlet-stable ECMP choice among ``ports``.

    CRC32 rather than ``hash()``: stable across processes and
    ``PYTHONHASHSEED`` values, so sweeps replay bit-identically.
    """
    key = f"{node}|{entry!r}|{flow_id}|{int(reverse)}"
    return ports[zlib.crc32(key.encode()) % len(ports)]


class FabricNetwork:
    """A :class:`FabricGraph` materialized as switches, links and hosts.

    Port convention: port 0 of every switch faces its host (created
    lazily by :meth:`host`); ports 1.. face the node's neighbors in
    adjacency order.  Directed links are addressable by the id
    ``"A->B"`` — the same id :class:`~repro.fabric.deployment.
    FabricDeployment` keys its monitors by and fabric chaos schedules
    target.
    """

    def __init__(
        self,
        sim: Simulator,
        graph: FabricGraph,
        link_delay_s: float = 0.010,
        link_bandwidth_bps: float | None = 100e9,
        access_delay_s: float = 0.0001,
        tm_queue_packets: int | None = 10000,
        telemetry: Any | None = None,
    ) -> None:
        self.sim = sim
        self.graph = graph
        self.telemetry = telemetry
        self.switches: dict[str, Switch] = {}
        self.hosts: dict[str, Host] = {}
        self._access_delay_s = access_delay_s
        #: directed "A->B" -> Link carrying A's transmissions toward B.
        self.links: dict[str, Link] = {}
        #: (node, neighbor) -> node's egress port toward that neighbor.
        self._port_to: dict[tuple[str, str], int] = {}
        #: (node, port) -> the neighbor behind that port.
        self._peer_on_port: dict[tuple[str, int], str] = {}
        #: (entry, reverse) -> {node: (ports,)} ECMP port sets.
        self._entry_ports: dict[tuple[Any, bool], dict[str, tuple[int, ...]]] = {}
        self.entry_src: dict[Any, str] = {}
        self.entry_dst: dict[Any, str] = {}

        for node in graph.nodes:
            self.switches[node] = Switch(
                sim, node, tm_queue_packets=tm_queue_packets, telemetry=telemetry
            )
            for i, nbr in enumerate(graph.neighbors(node)):
                port = PORT_TO_HOST + 1 + i
                self._port_to[(node, nbr)] = port
                self._peer_on_port[(node, port)] = nbr
        for a, b in graph.edges():
            ab, ba = connect_duplex(
                sim, self.switches[a], self._port_to[(a, b)],
                self.switches[b], self._port_to[(b, a)],
                bandwidth_bps=link_bandwidth_bps, delay_s=link_delay_s,
                telemetry=telemetry,
            )
            self.links[f"{a}->{b}"] = ab
            self.links[f"{b}->{a}"] = ba
        for node in graph.nodes:
            self.switches[node].add_forwarding_override(self._forwarder(node))

    # -- addressing --------------------------------------------------------

    def switch(self, node: str) -> Switch:
        return self.switches[node]

    @property
    def access_delay_s(self) -> float:
        """Host access-link delay (the first leg of any fluid delay chain)."""
        return self._access_delay_s

    def host(self, node: str) -> Host:
        """The node's host, wired to switch port 0 on first use."""
        h = self.hosts.get(node)
        if h is None:
            h = Host(self.sim, f"host-{node}", auto_sink=True)
            connect_duplex(self.sim, h, 0, self.switches[node], PORT_TO_HOST,
                           bandwidth_bps=None, delay_s=self._access_delay_s)
            self.hosts[node] = h
        return h

    def port_to(self, node: str, neighbor: str) -> int:
        """``node``'s egress port toward an adjacent ``neighbor``."""
        try:
            return self._port_to[(node, neighbor)]
        except KeyError:
            raise KeyError(f"{node} is not adjacent to {neighbor}") from None

    def link(self, a: str, b: str) -> Link:
        """The directed link carrying ``a``'s transmissions toward ``b``."""
        return self.links[f"{a}->{b}"]

    @staticmethod
    def link_id(a: str, b: str) -> str:
        return f"{a}->{b}"

    # -- entries and forwarding --------------------------------------------

    def add_entry(self, entry: Any, src: str, dst: str) -> None:
        """Register a monitoring entry flowing ``src`` host → ``dst`` host.

        Installs ECMP next-hop port sets on every switch for both the
        forward direction (toward ``dst``) and the reverse (ACKs toward
        ``src``), so reroutes landing traffic anywhere keep it routable.
        """
        if src == dst:
            raise ValueError("entry endpoints must differ")
        if entry in self.entry_dst:
            raise ValueError(f"entry {entry!r} already registered")
        self.host(src)
        self.host(dst)
        self.entry_src[entry] = src
        self.entry_dst[entry] = dst
        self._entry_ports[(entry, False)] = self._ports_toward(dst)
        self._entry_ports[(entry, True)] = self._ports_toward(src)

    def _ports_toward(self, target: str) -> dict[str, tuple[int, ...]]:
        dist = self.graph.distances(target)
        out: dict[str, tuple[int, ...]] = {}
        for node in self.graph.nodes:
            if node == target:
                out[node] = (PORT_TO_HOST,)
                continue
            if node not in dist:
                continue  # disconnected: no route installed
            hops = [n for n in self.graph.neighbors(node)
                    if dist.get(n) == dist[node] - 1]
            out[node] = tuple(self._port_to[(node, n)] for n in hops)
        return out

    def flow_path(self, entry: Any, flow_id: int,
                  reverse: bool = False) -> list[str]:
        """The node sequence one flow takes under baseline ECMP.

        Replays the forwarder's flowlet-hash decisions without any
        reroute overrides — how experiments pick a failed link that is
        guaranteed to carry a given flow's packets.
        """
        table = self._entry_ports[(entry, reverse)]
        node = self.entry_dst[entry] if reverse else self.entry_src[entry]
        target = self.entry_src[entry] if reverse else self.entry_dst[entry]
        path = [node]
        while node != target:
            ports = table[node]
            port = ports[0] if len(ports) == 1 else flowlet_port(
                node, entry, flow_id, reverse, ports)
            node = self._peer_on_port[(node, port)]
            path.append(node)
        return path

    def entry_links(self, entry: Any) -> list[str]:
        """Directed switch-switch link ids on the entry's forward ECMP DAG."""
        dst = self.entry_dst[entry]
        src = self.entry_src[entry]
        dist = self.graph.distances(dst)
        out: list[str] = []
        reached = {src}
        frontier = [src]
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                if node == dst:
                    continue
                for nbr in self.graph.neighbors(node):
                    if dist.get(nbr) == dist[node] - 1:
                        out.append(self.link_id(node, nbr))
                        if nbr not in reached:
                            reached.add(nbr)
                            nxt.append(nbr)
            frontier = nxt
        return out

    def _forwarder(self, node: str) -> Callable[[Any], int | None]:
        """Terminal member of ``node``'s override chain: entry ECMP."""
        entry_ports = self._entry_ports

        def forward(packet: Any) -> int | None:
            table = entry_ports.get((packet.entry, packet.reverse))
            if table is None:
                return None
            ports = table.get(node)
            if ports is None:
                return None
            if len(ports) == 1:
                return ports[0]
            return flowlet_port(node, packet.entry, packet.flow_id,
                                packet.reverse, ports)

        return forward

    # -- bookkeeping -------------------------------------------------------

    def directed_link_ids(self) -> list[str]:
        return [self.link_id(a, b) for a, b in self.graph.directed_links()]

    def link_stats(self) -> dict[str, dict[str, int]]:
        return {lid: link.stats.as_dict()
                for lid, link in sorted(self.links.items())}

    def endpoints(self, link_id: str) -> tuple[str, str]:
        a, _, b = link_id.partition("->")
        if not b or f"{a}->{b}" not in self.links:
            raise KeyError(f"unknown fabric link {link_id!r}")
        return a, b
