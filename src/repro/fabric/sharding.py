"""Process-sharded fabric execution: plan, seed, and merge link shards.

A fabric's link monitors share no simulator state with each other beyond
the packets that happen to cross them — which is why a fabric run can be
sharded across processes at all.  The unit of determinism here is the
**link**, not the shard: every per-link probe simulation is a pure
function of ``(experiment config, case, link_id)``, and a shard is
merely a batch of links one worker happens to execute.  Grouping is an
execution knob — ``--shards 1``, ``2`` and ``4`` must (and do) produce
byte-identical merged output.

Three pieces enforce that contract:

* :func:`plan_shards` partitions the link list round-robin and derives a
  per-link seed with :func:`~repro.runtime.stable_seed` keyed **only**
  on ``(base seed, link_id)`` — never on the shard index or count, so
  regrouping cannot reshuffle anyone's RNG stream.  (fancylint FCY010
  flags shard-spec seeding that bypasses ``stable_seed``.)
* each per-link probe runs its own :class:`~repro.telemetry.session.
  Telemetry` whose forks are scoped by link id, so minted trace ids are
  grouping-independent.
* :func:`merge_link_results` folds the per-link payloads back together
  in **sorted link order**: detection records re-sorted under the
  deployment's contract, metric registries merged with
  :func:`~repro.telemetry.registry.merge_snapshots` (commutative over
  sorted input), trace spans concatenated then serialized once — so the
  Prometheus text and trace JSONL are byte-identical for any worker or
  shard count.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from ..obs.trace import spans_to_jsonl
from ..runtime import stable_seed
from ..telemetry.export import to_prometheus
from ..telemetry.registry import merge_snapshots

__all__ = ["ShardSpec", "plan_shards", "merge_link_results"]


@dataclass(frozen=True)
class ShardSpec:
    """One worker's batch of per-link probe simulations.

    ``link_seeds[i]`` is the derived seed for ``links[i]`` — a pure
    function of the base seed and the link id, never of ``index`` or the
    shard count (the regrouping-invariance contract).
    """

    index: int
    links: tuple[str, ...]
    link_seeds: tuple[int, ...]


def plan_shards(link_ids: Sequence[str], n_shards: int,
                seed: int = 0) -> list[ShardSpec]:
    """Partition ``link_ids`` into ``n_shards`` round-robin batches.

    Empty shards are dropped (a 4-shard plan over 3 links yields 3
    specs), so callers can pass ``--shards`` values larger than the
    fabric without special-casing.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    ordered = list(link_ids)
    if len(set(ordered)) != len(ordered):
        raise ValueError("duplicate link ids in shard plan")
    specs: list[ShardSpec] = []
    for index in range(n_shards):
        links = tuple(ordered[index::n_shards])
        if not links:
            continue
        seeds = tuple(
            stable_seed(seed, "fabric-shard", link_id, bits=31)
            for link_id in links
        )
        specs.append(ShardSpec(index=index, links=links, link_seeds=seeds))
    return specs


def _as_record(record: Iterable[Any]) -> tuple[Any, ...]:
    """Normalize a detection record (JSON cache round-trips lists)."""
    return tuple(record)


def merge_link_results(per_link: Mapping[str, Mapping[str, Any]]) -> dict[str, Any]:
    """Deterministically merge per-link probe payloads.

    Each payload carries ``detections`` (deployment-contract tuples),
    ``metrics`` (a registry snapshot dict), ``spans`` (span dicts),
    ``sessions_completed``, ``events_processed`` and ``fluid_absorbed``.
    Links are folded in sorted id order so the output is a pure function
    of the payload *set* — the shards 1/2/4 byte-equality contract.
    """
    ordered = sorted(per_link)
    detections = sorted(
        _as_record(rec)
        for link_id in ordered
        for rec in per_link[link_id].get("detections", ())
    )
    snapshots = [per_link[link_id]["metrics"] for link_id in ordered
                 if per_link[link_id].get("metrics") is not None]
    metrics = merge_snapshots(*snapshots) if snapshots else {"metrics": []}
    spans = [span for link_id in ordered
             for span in per_link[link_id].get("spans", ())]
    return {
        "links": ordered,
        "detections": detections,
        "metrics": metrics,
        "prometheus": to_prometheus(metrics),
        "trace_jsonl": spans_to_jsonl(spans),
        "sessions_completed": {
            link_id: per_link[link_id].get("sessions_completed", 0)
            for link_id in ordered
        },
        "events_processed": sum(
            per_link[link_id].get("events_processed", 0)
            for link_id in ordered),
        "fluid_absorbed": sum(
            per_link[link_id].get("fluid_absorbed", 0)
            for link_id in ordered),
    }
