"""Fabric-wide FANcY deployment: one monitor per selected directed link.

A :class:`FabricDeployment` instantiates a :class:`~repro.core.detector.
FancyLinkMonitor` on each requested directed link ``A->B`` of a
:class:`~repro.fabric.graph.FabricNetwork` — upstream side in A's egress
pipeline on the port facing B, receiver side in B's ingress pipeline on
the port facing A, exactly the §3 placement the single-link experiments
use.  Monitors are mutually safe on a shared switch: egress tagging is
per-port (one monitor claims each egress port) and control messages are
dispatched by FSM id, so a 64-link fabric runs 64 independent counting
sessions concurrently.

Per-link seeds derive from ``stable_seed(config.seed, "fabric",
link_id)`` — adding or removing a monitored link never reshuffles the
hash seeds of the others.  When a telemetry session is supplied, each
monitor gets a :meth:`~repro.telemetry.session.Telemetry.fork`: shared
metrics registry, private timeline and trace collector scoped to the
link id (so minted trace ids read ``"s1->s2#001"``).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable
from typing import Any

from ..core.detector import FancyConfig, FancyLinkMonitor
from ..runtime import stable_seed
from .graph import FabricNetwork

__all__ = ["FabricDeployment"]


class FabricDeployment:
    """FANcY monitors over a fabric's links.

    Args:
        net: the materialized fabric.
        config: base monitor configuration; each link's monitor gets a
            copy with a link-derived hash seed.
        links: directed links to monitor — ``"A->B"`` ids or ``(a, b)``
            pairs.  Defaults to every directed switch-switch link.
        telemetry: optional shared telemetry session; monitors receive
            per-link forks off its registry.
    """

    def __init__(
        self,
        net: FabricNetwork,
        config: FancyConfig | None = None,
        links: Iterable[Any] | None = None,
        telemetry: Any | None = None,
    ) -> None:
        self.net = net
        self.telemetry = telemetry
        base = config if config is not None else FancyConfig()
        if links is None:
            wanted = net.directed_link_ids()
        else:
            wanted = [sel if isinstance(sel, str) else net.link_id(*sel)
                      for sel in links]
        self.monitors: dict[str, FancyLinkMonitor] = {}
        for link_id in wanted:
            a, b = net.endpoints(link_id)
            cfg = dataclasses.replace(
                base, seed=stable_seed(base.seed, "fabric", link_id, bits=31)
            )
            fork = telemetry.fork(scope=link_id) if telemetry is not None else None
            self.monitors[link_id] = FancyLinkMonitor(
                net.sim,
                net.switch(a), net.port_to(a, b),
                net.switch(b), net.port_to(b, a),
                config=cfg, telemetry=fork,
            )

    # -- lifecycle --------------------------------------------------------

    def start(self, stagger_s: float = 0.0) -> None:
        """Open all counting sessions, optionally staggered.

        Staggering desynchronizes session boundaries across links (the
        realistic operating mode); the offsets follow monitor insertion
        order, so a given deployment always staggers identically.
        """
        for i, monitor in enumerate(self.monitors.values()):
            monitor.start(delay=i * stagger_s)

    def stop(self) -> None:
        for monitor in self.monitors.values():
            monitor.stop()

    def update_entries(self, entries: Iterable[Any]) -> dict[str, bool]:
        """Rotate the dedicated entry set on every monitor (entry churn).

        Per-link swap timing follows :meth:`~repro.core.detector.
        FancyLinkMonitor.update_entries` — each monitor defers to its own
        next verified-Report boundary.  Returns, per link, whether the
        swap applied immediately (True) or was deferred (False).
        """
        wanted = list(entries)
        return {link_id: monitor.update_entries(wanted)
                for link_id, monitor in self.monitors.items()}

    # -- queries ----------------------------------------------------------

    def monitor(self, a: str, b: str) -> FancyLinkMonitor:
        return self.monitors[self.net.link_id(a, b)]

    @property
    def n_sessions(self) -> int:
        """Concurrent per-link counting sessions (monitors deployed)."""
        return len(self.monitors)

    def flagged(self) -> dict[str, list[Any]]:
        """Flagged dedicated entries per link, links in insertion order."""
        out: dict[str, list[Any]] = {}
        for link_id, monitor in self.monitors.items():
            entries = monitor.flagged_entries()
            if entries:
                out[link_id] = list(entries)
        return out

    def detection_records(self) -> list[tuple[str, str, str, float, int]]:
        """Every failure report as a sorted, comparable tuple.

        ``(link_id, kind, entry, time, session)`` — the determinism
        contract of the fabric experiments: equal seeds must produce an
        identical record list.
        """
        records = [
            (link_id, report.kind.value, repr(report.entry), report.time,
             report.session_id if report.session_id is not None else -1)
            for link_id, monitor in self.monitors.items()
            for report in monitor.log.reports
        ]
        return sorted(records)

    def sessions_completed(self) -> dict[str, int]:
        """Completed sender sessions per link (dedicated + tree FSMs)."""
        out: dict[str, int] = {}
        for link_id, monitor in self.monitors.items():
            total = 0
            for fsm in (monitor.dedicated_sender, monitor.tree_sender):
                if fsm is not None:
                    total += fsm.sessions_completed
            out[link_id] = total
        return out
