"""Network-wide FANcY: topology graphs, per-link deployment, rerouting.

The paper evaluates FANcY on one monitored link; an ISP deploys it on
*every* adjacent link of a fabric and closes the loop from detection to
selective rerouting (§6.1).  This package is that scenario generator:

* :mod:`repro.fabric.graph` — :class:`FabricGraph` (deterministic
  adjacency, BFS distances, ECMP next-hop sets) and
  :class:`FabricNetwork`, which materializes a graph onto the existing
  ``Simulator``/``Switch``/``Link`` primitives with flowlet-stable ECMP
  forwarding.
* :mod:`repro.fabric.builders` — ring, leaf-spine Clos, fat-tree, the
  Abilene ISP backbone, and seeded random ISP graphs.
* :mod:`repro.fabric.deployment` — one :class:`~repro.core.detector.
  FancyLinkMonitor` per (selected) directed link, telemetry forked off a
  shared registry.
* :mod:`repro.fabric.reroute` — loop-free-alternate precomputation and
  the controller that installs sticky selective reroutes when a link's
  monitor flags an entry.
* :mod:`repro.fabric.chaos` — fabric-link-addressed fault schedules and
  the invariant-checked ring soak.

See ``docs/FABRIC.md`` for the architecture and CLI usage.
"""

from .builders import abilene, clos, fat_tree, random_isp, ring
from .chaos import FabricSoakConfig, FabricSoakResult, fabric_soak
from .deployment import FabricDeployment
from .graph import FabricGraph, FabricNetwork
from .reroute import FabricRerouteController, LfaTable, SelectiveRerouteApp

__all__ = [
    "FabricGraph",
    "FabricNetwork",
    "FabricDeployment",
    "FabricRerouteController",
    "LfaTable",
    "SelectiveRerouteApp",
    "FabricSoakConfig",
    "FabricSoakResult",
    "fabric_soak",
    "ring",
    "clos",
    "fat_tree",
    "abilene",
    "random_isp",
]
