"""Detection → selective reroute control plane for fabrics (§6.1 scaled up).

Three pieces close the loop the single-link ``apps/rerouting.py`` case
study only gestures at:

* :class:`LfaTable` precomputes loop-free alternates: for a (node,
  destination, protected directed link) triple it derives the full
  repair path in the graph with the protected link pruned.  A plain
  next-hop LFA condition is *not* sufficient on rings — with even
  cycles the distance tie lets ECMP bounce traffic straight back over
  the protecting switch — so the controller installs the whole repair
  path, which is loop-free by construction regardless of ECMP ties.
* :class:`SelectiveRerouteApp` is the per-switch data-plane agent: a
  sticky per-entry port override sitting at the *front* of the switch's
  forwarding-override chain (ahead of the fabric's ECMP forwarder).
* :class:`FabricRerouteController` polls every monitor's flags on a
  deterministic tick and, for each newly flagged ``(link, entry)``,
  installs the repair path hop by hop.  Installed reroutes are sticky:
  once traffic leaves the gray link it stops being counted there, the
  flag may age out, and flapping back would re-enter the failure.
"""

from __future__ import annotations

from typing import Any

from ..simulator.packet import Packet, PacketKind
from ..simulator.switch import Switch
from .deployment import FabricDeployment
from .graph import FabricGraph, FabricNetwork

__all__ = ["LfaTable", "SelectiveRerouteApp", "FabricRerouteController"]


class LfaTable:
    """Loop-free-alternate repair paths on a :class:`FabricGraph`.

    ``repair_path(node, dst, failed)`` is the shortest path from
    ``node`` to ``dst`` in the graph with the *directed* link
    ``failed`` pruned (gray failures are directional; the reverse
    direction of the same fiber stays usable).  Paths are cached — the
    table is precomputation, the controller is policy.
    """

    def __init__(self, graph: FabricGraph) -> None:
        self.graph = graph
        self._cache: dict[tuple[str, str, tuple[str, str]], list[str] | None] = {}

    def repair_path(self, node: str, dst: str,
                    failed: tuple[str, str]) -> list[str] | None:
        key = (node, dst, failed)
        if key not in self._cache:
            self._cache[key] = self.graph.shortest_path(node, dst,
                                                        without=failed)
        return self._cache[key]

    def backup_next_hop(self, node: str, dst: str,
                        failed: tuple[str, str]) -> str | None:
        """First hop of the repair path (the classic LFA answer)."""
        path = self.repair_path(node, dst, failed)
        if path is None or len(path) < 2:
            return None
        return path[1]

    def protectable(self, failed: tuple[str, str], dst: str) -> bool:
        return self.repair_path(failed[0], dst, failed) is not None


class SelectiveRerouteApp:
    """Sticky per-entry forwarding overrides on one fabric switch.

    Installed at the front of the override chain, so reroutes win over
    the fabric's ECMP forwarder but still compose with it: entries
    without an override fall through untouched.  Only forward DATA is
    steered — control messages and ACKs keep their normal paths, same
    contract as the single-link :class:`~repro.apps.rerouting.
    FastRerouteApp`.
    """

    def __init__(self, switch: Switch) -> None:
        self.switch = switch
        self.overrides: dict[Any, int] = {}
        self.rerouted_packets = 0
        #: Called once per entry on the first packet actually steered —
        #: the controller closes its recovery span off this signal.
        self.on_steered: Any = None
        self._steered: set[Any] = set()
        self._installed = self._decide
        switch.add_forwarding_override(self._installed, front=True)

    def _decide(self, packet: Packet) -> int | None:
        if packet.kind is not PacketKind.DATA or packet.reverse:
            return None
        port = self.overrides.get(packet.entry)
        if port is None:
            return None
        self.rerouted_packets += 1
        if self.on_steered is not None and packet.entry not in self._steered:
            self._steered.add(packet.entry)
            self.on_steered(packet.entry)
        return port

    def set_override(self, entry: Any, port: int) -> None:
        """Install a sticky override; the first installer wins.

        First-wins keeps concurrently installed repair paths
        consistent: a node shared by two repair paths keeps steering
        the entry along the path installed first, which is still
        loop-free end to end.
        """
        self.overrides.setdefault(entry, port)

    def clear(self, entry: Any | None = None) -> None:
        if entry is None:
            self.overrides.clear()
        else:
            self.overrides.pop(entry, None)

    def uninstall(self) -> None:
        self.switch.remove_forwarding_override(self._installed)


class FabricRerouteController:
    """Polls fabric monitors and installs selective repair paths.

    Args:
        net: the materialized fabric (entries must be registered on it).
        deployment: the monitors to poll.
        poll_interval_s: flag-polling period; detection latency adds at
            most one period before traffic moves.
        lfa: optionally share a precomputed :class:`LfaTable`.
    """

    def __init__(
        self,
        net: FabricNetwork,
        deployment: FabricDeployment,
        poll_interval_s: float = 0.050,
        lfa: LfaTable | None = None,
    ) -> None:
        self.net = net
        self.deployment = deployment
        self.poll_interval_s = poll_interval_s
        self.lfa = lfa if lfa is not None else LfaTable(net.graph)
        self.apps: dict[str, SelectiveRerouteApp] = {
            node: SelectiveRerouteApp(net.switch(node))
            for node in net.graph.nodes
        }
        #: (link_id, entry) -> install time of its repair path.
        self.reroute_times: dict[tuple[str, Any], float] = {}
        #: flagged (link_id, entry) pairs with no repair path available.
        self.unprotectable: list[tuple[str, Any]] = []
        #: open recovery spans (install → first packet steered), keyed by
        #: (link_id, entry) -> (trace collector, span id).
        self._recovery_spans: dict[tuple[str, Any], tuple[Any, int]] = {}
        for app in self.apps.values():
            app.on_steered = self._on_steered
        self._running = False

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        self._running = True
        self.net.sim.schedule(self.poll_interval_s, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        flagged = self.deployment.flagged()
        for link_id in sorted(flagged):
            for entry in sorted(flagged[link_id], key=repr):
                self._install(link_id, entry)
        self.net.sim.schedule(self.poll_interval_s, self._tick)

    # -- installation -----------------------------------------------------

    def _install(self, link_id: str, entry: Any) -> None:
        key = (link_id, entry)
        if key in self.reroute_times or key in self.unprotectable:
            return
        a, b = self.net.endpoints(link_id)
        dst = self.net.entry_dst.get(entry)
        if dst is None:  # flag for an entry the fabric never registered
            self.unprotectable.append(key)
            self._trace_unprotectable(link_id, entry)
            return
        path = self.lfa.repair_path(a, dst, (a, b))
        if path is None or len(path) < 2:
            self.unprotectable.append(key)
            self._trace_unprotectable(link_id, entry)
            return
        for u, v in zip(path, path[1:]):
            self.apps[u].set_override(entry, self.net.port_to(u, v))
        now = self.net.sim.now
        self.reroute_times[key] = now
        traces = self._trace_collector(link_id)
        if traces is not None and traces.active:
            traces.emit("reroute_install", now, category="reroute",
                        link=link_id, entry=entry, path=path)
            span = traces.open_span("recovery", now, category="reroute",
                                    link=link_id, entry=entry)
            if span is not None:
                self._recovery_spans[key] = (traces, span)

    def _trace_collector(self, link_id: str) -> Any:
        monitor = self.deployment.monitors.get(link_id)
        if monitor is None:
            return None
        return getattr(monitor.telemetry, "traces", None)

    def _trace_unprotectable(self, link_id: str, entry: Any) -> None:
        traces = self._trace_collector(link_id)
        if traces is not None and traces.active:
            traces.emit("reroute_unprotectable", self.net.sim.now,
                        category="reroute", link=link_id, entry=entry)

    def _on_steered(self, entry: Any) -> None:
        """Close recovery spans once the first packet actually moves."""
        now = self.net.sim.now
        for key in [k for k in self._recovery_spans if k[1] == entry]:
            traces, span = self._recovery_spans.pop(key)
            traces.close_span(span, now)

    # -- queries ----------------------------------------------------------

    def reroute_time(self, entry: Any) -> float | None:
        """Earliest repair-path install time for ``entry`` (any link)."""
        times = [t for (_lid, e), t in self.reroute_times.items()
                 if e == entry]
        return min(times) if times else None

    @property
    def rerouted_packets(self) -> int:
        return sum(app.rerouted_packets for app in self.apps.values())
