"""Global fast-path configuration for the simulator.

The simulator has two dataplane implementations per feature: a *reference*
path (one event per pipeline stage, a fresh :class:`~repro.simulator.
packet.Packet` per packet) and a *fast* path (fused link events, packet
pooling, batched UDP ticks).  Both are equivalence-tested — same RNG
draws produce identical experiment outputs (see
``tests/simulator/test_fastpath_equivalence.py``) — so the fast path is
safe to enable wholesale for sweeps.

Defaults: fused links are ON (they change nothing observable and are the
single biggest event-count win); packet pooling is OFF because it recycles
packet objects after the sink consumed them, which is unsafe only if user
code retains packet references past delivery (e.g. an ``rx_tap`` that
stores packets).  Enable pooling per run via :func:`configure` or the
:func:`scoped` context manager::

    from repro.simulator import fastpath

    with fastpath.scoped(packet_pool=True):
        run_experiment()          # pooled packets, fused links

    with fastpath.reference():
        run_experiment()          # the unoptimized reference dataplane

Links snapshot ``CONFIG.fused_links`` at construction time, so toggle the
configuration *before* building a topology.
"""

from __future__ import annotations

from contextlib import contextmanager
from collections.abc import Iterator

__all__ = ["CONFIG", "FastPathConfig", "configure", "scoped", "reference"]


class FastPathConfig:
    """Mutable global switchboard for the simulator fast paths."""

    __slots__ = ("fused_links", "packet_pool", "fluid")

    def __init__(self, fused_links: bool = True, packet_pool: bool = False,
                 fluid: bool = False) -> None:
        #: Collapse serialize->propagate->deliver into one event on
        #: uncontended links (falls back to the full path under contention
        #: or telemetry/tracing instrumentation).
        self.fused_links = fused_links
        #: Recycle Packet objects through a free list; sinks release
        #: consumed packets back to the pool.
        self.packet_pool = packet_pool
        #: Model open-loop background UDP as fluid rate segments feeding
        #: counters at protocol exchange boundaries instead of per-packet
        #: events (repro.simulator.fluid).  Consulted by experiments when
        #: choosing how to source background traffic; discrete packets
        #: (protocol/control/TCP/flagged entries) are never affected —
        #: the equivalence suite runs its discrete scenarios under
        #: ``fluid=True`` to pin that down.
        self.fluid = fluid

    def snapshot(self) -> dict[str, bool]:
        return {"fused_links": self.fused_links, "packet_pool": self.packet_pool,
                "fluid": self.fluid}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FastPathConfig(fused_links={self.fused_links}, "
                f"packet_pool={self.packet_pool}, fluid={self.fluid})")


#: The process-wide configuration consulted by Link and Packet.
CONFIG = FastPathConfig()


def configure(
    fused_links: bool | None = None,
    packet_pool: bool | None = None,
    fluid: bool | None = None,
) -> dict[str, bool]:
    """Update the global fast-path switches; returns the previous snapshot."""
    from .packet import POOL

    previous = CONFIG.snapshot()
    if fused_links is not None:
        CONFIG.fused_links = fused_links
    if packet_pool is not None:
        CONFIG.packet_pool = packet_pool
        POOL.enabled = packet_pool
        if not packet_pool:
            POOL.drain()
    if fluid is not None:
        CONFIG.fluid = fluid
    return previous


@contextmanager
def scoped(
    fused_links: bool | None = None,
    packet_pool: bool | None = None,
    fluid: bool | None = None,
) -> Iterator[FastPathConfig]:
    """Temporarily reconfigure the fast path (restores on exit)."""
    previous = configure(fused_links=fused_links, packet_pool=packet_pool,
                         fluid=fluid)
    try:
        yield CONFIG
    finally:
        configure(**previous)


@contextmanager
def reference() -> Iterator[FastPathConfig]:
    """Run with every fast path disabled — the reference dataplane."""
    with scoped(fused_links=False, packet_pool=False, fluid=False) as cfg:
        yield cfg
