"""Discrete-event simulation engine.

This module is the foundation of the packet-level simulator that stands in
for ns-3 in this reproduction.  It provides a binary-heap event queue with
a monotonically increasing simulated clock, cancellable timers, and a few
convenience helpers (periodic events, run-until predicates).

Events scheduled for the same timestamp fire in FIFO order, which the
protocol state machines rely on for determinism.

Fast path: the engine keeps the uninstrumented dispatch a bare
``callback(*args)``.  ``run()`` inlines the heap pop (no ``peek_time`` /
``step`` double traversal), heap entries are plain ``(time, seq, handle)``
tuples — every sift comparison is a C-level tuple compare that resolves
on ``(time, seq)`` before ever reaching the handle, instead of a
Python-level ``EventHandle.__lt__`` call (the single hottest function of
a packet-level run) — and the heap is compacted in place whenever more
than half of its entries are cancelled handles: TCP retransmission
timers cancel and re-arm on every ACK, which otherwise pins tens of
thousands of dead handles in the heap of a long experiment.  See
``docs/PERFORMANCE.md`` for the measurement methodology.

Telemetry: pass a :class:`repro.telemetry.Telemetry` session to observe
the event loop — ``sim_events_total``, the ``sim_queue_depth`` gauge,
and (with ``profile=True`` on the session) a per-callback wall-time
histogram ``sim_callback_seconds{callback=...}`` for hotspot profiling
via :func:`repro.telemetry.hotspots`.  With ``telemetry=None`` (the
default) the per-event cost is one attribute check.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from collections.abc import Callable
from typing import Any

__all__ = ["EventHandle", "Simulator", "SimulationError"]

#: Compaction trigger: at least this many cancelled handles *and* more
#: than half the heap dead.  Small heaps are cheap to scan anyway.
_COMPACT_MIN_CANCELLED = 512


class SimulationError(RuntimeError):
    """Raised when the engine is used inconsistently (e.g. scheduling in the past)."""


class EventHandle:
    """Handle to a scheduled event, usable to cancel it before it fires."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "owner")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple[Any, ...],
        owner: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Owning simulator, used to account cancelled-but-pinned handles
        #: for heap compaction.  ``None`` for detached proxy handles.
        self.owner = owner

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        if not self.cancelled:
            self.cancelled = True
            if self.owner is not None:
                self.owner._cancelled += 1
        # Drop references so cancelled events do not pin objects in memory
        # while they remain in the heap.
        self.callback = _noop
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        # Kept for API compatibility (sorting handles in user code); the
        # engine's heap orders plain (time, seq, handle) tuples and never
        # calls this — seq is unique, so tuple comparison stops before
        # reaching the handle element.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.9f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


def _callback_name(callback: Callable[..., Any]) -> str:
    """Stable human-readable label for a profiled callback."""
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:  # partials, callables
        qualname = type(callback).__name__
    module = getattr(callback, "__module__", "") or ""
    short_module = module.rsplit(".", 1)[-1] if module else ""
    return f"{short_module}.{qualname}" if short_module else qualname


class Simulator:
    """A discrete-event simulator with a cancellable timer wheel.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, lambda: print("one second in"))
        sim.run(until=10.0)

    The clock unit is seconds (floats).  The engine guarantees that events
    fire in non-decreasing time order and, for equal timestamps, in the
    order they were scheduled.
    """

    def __init__(self, telemetry: Any | None = None) -> None:
        #: Binary heap of (time, seq, handle) entries; see module docstring.
        self._queue: list[tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: Cancelled handles still sitting in the heap (compaction trigger).
        self._cancelled = 0
        #: Heap compactions performed (observability / tests).
        self.compactions = 0
        self._telemetry: Any | None = None
        self._profile = False
        self._m_events: Any = None
        self._m_depth: Any = None
        #: Memoized per-callback profile histograms, keyed by label —
        #: the registry lookup must stay off the per-event path (FCY009).
        self._profile_hists: dict[str, Any] = {}
        if telemetry is not None:
            self.bind_telemetry(telemetry)

    def bind_telemetry(self, telemetry: Any) -> None:
        """Attach a telemetry session (pre-binds the hot-path instruments).

        Bind before calling :meth:`run`: the run loop snapshots the
        telemetry binding once on entry for speed.
        """
        self._telemetry = telemetry
        self._profile = bool(getattr(telemetry, "profile", False))
        self._profile_hists = {}
        metrics = telemetry.metrics
        self._m_events = metrics.counter(
            "sim_events_total", "Events processed by the discrete-event engine")
        self._m_depth = metrics.gauge(
            "sim_queue_depth", "Pending events in the engine's binary heap")

    def _profile_histogram(self, callback: Callable[..., Any]) -> Any:
        """Per-callback wall-time histogram, created once per label."""
        label = _callback_name(callback)
        hist = self._profile_hists.get(label)
        if hist is None:
            assert self._telemetry is not None
            hist = self._telemetry.metrics.histogram(
                "sim_callback_seconds",
                "Wall-clock seconds spent inside one event callback",
                start=1e-7, base=10.0, n_buckets=8, callback=label,
            )
            self._profile_hists[label] = hist
        return hist

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        The body mirrors :meth:`schedule_at` rather than delegating to
        it: this is the most frequently called engine entry point, and
        the extra frame is measurable at packet rates.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        time = self._now + delay
        seq = next(self._seq)
        handle = EventHandle(time, seq, callback, args, self)
        heapq.heappush(self._queue, (time, seq, handle))
        if (self._cancelled > _COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > len(self._queue)):
            self.compact()
        return handle

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        seq = next(self._seq)
        handle = EventHandle(time, seq, callback, args, self)
        heapq.heappush(self._queue, (time, seq, handle))
        if (self._cancelled > _COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > len(self._queue)):
            self.compact()
        return handle

    def compact(self) -> int:
        """Drop cancelled handles from the heap (in place) and re-heapify.

        Returns the number of handles removed.  Called automatically from
        :meth:`schedule_at` when more than half the heap is dead; safe to
        call manually at any point (including from within a running
        simulation — the heap list identity is preserved).
        """
        queue = self._queue
        before = len(queue)
        live = [entry for entry in queue if not entry[2].cancelled]
        queue[:] = live
        heapq.heapify(queue)
        self._cancelled = 0
        removed = before - len(live)
        if removed:
            self.compactions += 1
        return removed

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: float | None = None,
    ) -> EventHandle:
        """Schedule ``callback`` every ``interval`` seconds until cancelled.

        Returns the handle of the *next* pending occurrence; cancelling it
        stops the whole periodic chain because each firing checks the shared
        cell before rescheduling.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        cell: list[EventHandle] = []

        def fire() -> None:
            callback(*args)
            if not cell[0].cancelled:
                cell[0] = self.schedule(interval, fire)
                handle_proxy.time = cell[0].time

        first = self.schedule(start_delay if start_delay is not None else interval, fire)
        cell.append(first)

        # Proxy whose .cancel() stops the chain regardless of which link is live.
        class _PeriodicHandle(EventHandle):
            __slots__ = ()

            def cancel(self) -> None:  # noqa: D102 - same contract as base
                cell[0].cancel()
                self.cancelled = True

        handle_proxy = _PeriodicHandle(first.time, first.seq, _noop, ())
        return handle_proxy

    def peek_time(self) -> float | None:
        """Return the timestamp of the next pending event, or ``None`` if idle."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._cancelled -= 1
        return queue[0][0] if queue else None

    def step(self) -> bool:
        """Process the single next event.  Returns False when queue is empty."""
        queue = self._queue
        while queue:
            time, _, handle = heapq.heappop(queue)
            if handle.cancelled:
                self._cancelled -= 1
                continue
            self._now = time
            if self._telemetry is not None:
                self._step_instrumented(handle)
            else:
                handle.callback(*handle.args)
            self.events_processed += 1
            return True
        return False

    def _step_instrumented(self, handle: EventHandle) -> None:
        """Telemetry-enabled event dispatch (split out of the hot loop)."""
        telemetry = self._telemetry
        assert telemetry is not None  # callers gate on the binding
        if self._profile:
            started = _time.perf_counter()
            handle.callback(*handle.args)
            elapsed = _time.perf_counter() - started
            self._profile_histogram(handle.callback).observe(elapsed)
        else:
            handle.callback(*handle.args)
        self._m_events.inc()
        self._m_depth.set(len(self._queue))

    def run(self, until: float | None = None) -> None:
        """Run events until the queue drains or the clock passes ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        on return even if the queue drained earlier, so that measurements
        taken "at the end of the experiment" see a consistent timestamp.

        The uninstrumented loop is inlined: one heap pop per event (no
        ``peek_time``/``step`` double traversal) and a bare
        ``callback(*args)`` dispatch.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        queue = self._queue  # compact() preserves the list identity
        pop = heapq.heappop
        instrumented = self._telemetry is not None
        try:
            while queue and not self._stopped:
                head = queue[0]
                handle = head[2]
                if handle.cancelled:
                    pop(queue)
                    self._cancelled -= 1
                    continue
                if until is not None and head[0] > until:
                    break
                pop(queue)
                self._now = head[0]
                if instrumented:
                    self._step_instrumented(handle)
                else:
                    handle.callback(*handle.args)
                self.events_processed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop a ``run()`` in progress after the current event completes."""
        self._stopped = True

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero.

        Also rewinds the event sequence counter, so same-timestamp
        tie-break order (and hence traces) after a reset is identical to
        a freshly constructed simulator.
        """
        self._queue.clear()
        self._seq = itertools.count()
        self._now = 0.0
        self._stopped = False
        self.events_processed = 0
        self._cancelled = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={len(self._queue)})"
