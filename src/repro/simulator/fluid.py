"""Fluid background-traffic model (the hybrid fluid/packet fast path).

FANcY's counting protocol never inspects a background packet beyond its
entry: dedicated counters and the hash tree consume per-entry *counts*
at session boundaries (§4.1–§4.3).  For open-loop background UDP this
makes the per-packet event stream pure simulator overhead — the stream
is fully determined by the jitter RNG, so its contribution to every
counter exchange can be computed in closed form when the counting
window closes, at one float-add-and-compare per absorbed packet instead
of a full event-pipeline traversal per hop.

:class:`FluidFlow` describes one constant-bit-rate flow with the exact
parameters of :class:`~repro.simulator.udp.UdpSource`; the per-monitor
:class:`_EmissionCursor` replays the source's emission recurrence
(``t = t + interval * (lo + span * rng.random())``) with an identical
jitter RNG, so the *sent* counts a monitor would have observed are
bit-identical to the packet model by construction.  Arrival at the
monitor adds the flow's per-hop delay chain in the same left-to-right
float association order the link pipeline uses (instant links deliver
at ``now + delay_s`` per hop), so on uncontended/instant paths window
membership is exact too.

Received counts subtract seeded binomial loss draws per activation
segment of the monitored link's gray-failure model: exact (no RNG) for
loss rates 0 and 1, statistically matched otherwise — the contract the
equivalence suite and docs/PERFORMANCE.md spell out.  Protocol/control,
TCP, and flagged-entry traffic stay discrete: a fluid flow whose entry
gets flagged is handed back to the discrete plane (its counts stop, as
they would once the rerouting application moves the traffic away).

The :data:`repro.simulator.fastpath.CONFIG` switchboard gains a
``fluid`` tier; experiments consult it (``fastpath.scoped(fluid=True)``)
to pick this model for background traffic.  The flag never changes the
behaviour of discrete packets — the ref-vs-fast bit-equivalence suite
runs its discrete scenarios under ``fluid=True`` to pin that down.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any

from ..runtime.jobs import stable_seed
from .failures import (
    CompositeFailure,
    ControlPlaneFailure,
    EntryLossFailure,
    GrayFailure,
    IntermittentFailure,
    UniformLossFailure,
)

__all__ = [
    "FluidFlow",
    "FluidModelError",
    "FluidTraffic",
    "binomial",
    "loss_profile",
]


class FluidModelError(ValueError):
    """A link loss model the fluid abstraction cannot represent.

    Raised loudly instead of silently mis-modelling losses: a fluid run
    must either match the packet model's loss statistics or refuse.
    """


@dataclass(frozen=True)
class FluidFlow:
    """One constant-bit-rate background flow, by rate segments.

    Mirrors the :class:`~repro.simulator.udp.UdpSource` parameters
    exactly — a fluid flow and a packet source constructed from the same
    fields emit packets at bit-identical instants.

    ``rate_changes`` holds optional piecewise-constant rate segments as
    ``(time_s, rate_bps)`` pairs: from each change time on, inter-packet
    gaps are drawn from the new rate's interval.  Changes apply at
    emission-cursor granularity (the gap *after* the first emission at
    or past the change time uses the new rate), matching how an open
    loop source would be retuned in place.
    """

    entry: Any
    flow_id: int
    rate_bps: float
    packet_size: int = 1500
    jitter: float = 0.0
    seed: int = 0
    start_s: float = 0.0
    rate_changes: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("fluid flow rate must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if any(r <= 0 for _, r in self.rate_changes):
            raise ValueError("rate changes must keep the rate positive")

    @property
    def interval_s(self) -> float:
        return self.packet_size * 8 / self.rate_bps


class _EmissionCursor:
    """Replays one flow's emission instants, consuming the jitter RNG.

    The recurrence is UdpSource's, verbatim: the first packet departs at
    ``start_s`` and each next at ``t = t + interval * (lo + span * u)``
    with ``u`` drawn from ``random.Random(seed)`` — same seed, same draw
    order, same float association, so the emission sequence is
    bit-identical to the packet model's.
    """

    __slots__ = ("_t", "_rng", "_lo", "_span", "_interval", "_changes",
                 "legs", "emitted")

    def __init__(self, flow: FluidFlow, legs: tuple[float, ...] = ()) -> None:
        self._t = flow.start_s
        self._rng = random.Random(flow.seed) if flow.jitter else None
        self._lo = 1.0 - flow.jitter
        self._span = 2.0 * flow.jitter
        self._interval = flow.interval_s
        size8 = flow.packet_size * 8
        #: Pending (time, interval) rate segments, soonest first.
        self._changes = sorted(
            ((t, size8 / rate) for t, rate in flow.rate_changes),
        )
        #: Per-hop delay chain host → monitor egress, applied forward in
        #: the same left-to-right order the link pipeline adds them
        #: (instant links deliver at ``now + delay_s``) — never inverted,
        #: so the window-boundary comparison is the discrete one exactly.
        self.legs = legs
        self.emitted = 0

    def _arrival(self, emit_t: float) -> float:
        t = emit_t
        for leg in self.legs:
            t = t + leg
        return t

    def advance(self, until: float) -> int:
        """Count emissions *arriving* strictly before ``until``.

        Advances the cursor past every counted emission, consuming its
        jitter draw — exactly one draw per packet, in UdpSource order.
        """
        n = 0
        t = self._t
        rng = self._rng
        interval = self._interval
        changes = self._changes
        lo, span = self._lo, self._span
        while self._arrival(t) < until:
            n += 1
            while changes and changes[0][0] <= t:
                interval = changes.pop(0)[1]
            if rng is None:
                t = t + interval
            else:
                # One jitter draw per emitted packet, identical order to
                # UdpSource._next_gap — the sanctioned per-packet draw
                # that keeps sent counts bit-identical to the packet
                # model; everything else in fluid mode is bulk.
                t = t + interval * (lo + span * rng.random())  # fancylint: disable=FCY010
        self._t = t
        self._interval = interval
        self.emitted += n
        return n


# --------------------------------------------------------------------------
# loss profiles: gray-failure models as piecewise-constant drop rates
# --------------------------------------------------------------------------


class _LossProfile:
    """Piecewise-constant drop probability for one entry on one link."""

    def segments(self, entry: Any, lo: float, hi: float) -> list[tuple[float, float, float]]:
        """Disjoint ``(start, end, p_drop)`` segments within ``[lo, hi)``."""
        raise NotImplementedError


class _NullProfile(_LossProfile):
    def segments(self, entry: Any, lo: float, hi: float) -> list[tuple[float, float, float]]:
        return []


class _WindowProfile(_LossProfile):
    """A plain activation-window failure (entry or uniform loss)."""

    def __init__(self, start: float, end: float, rate: float,
                 entries: frozenset[Any] | None) -> None:
        self._start = start
        self._end = end
        self._rate = rate
        self._entries = entries  # None: affects every entry

    def segments(self, entry: Any, lo: float, hi: float) -> list[tuple[float, float, float]]:
        if self._entries is not None and entry not in self._entries:
            return []
        a = max(lo, self._start)
        b = min(hi, self._end)
        if a >= b or self._rate <= 0.0:
            return []
        return [(a, b, self._rate)]


class _IntermittentProfile(_LossProfile):
    """Duty-cycled wrapper: inner segments clipped to the on-windows."""

    def __init__(self, inner: _LossProfile, period_s: float,
                 on_fraction: float, phase_s: float) -> None:
        self._inner = inner
        self._period = period_s
        self._on = period_s * on_fraction
        self._phase = phase_s

    def segments(self, entry: Any, lo: float, hi: float) -> list[tuple[float, float, float]]:
        out: list[tuple[float, float, float]] = []
        first = math.floor((lo - self._phase) / self._period)
        k = first
        while True:
            on_lo = self._phase + k * self._period
            on_hi = on_lo + self._on
            if on_lo >= hi:
                break
            a, b = max(lo, on_lo), min(hi, on_hi)
            if a < b:
                out.extend(self._inner.segments(entry, a, b))
            k += 1
        return out


class _CompositeProfile(_LossProfile):
    """Independent components compose by survival probability."""

    def __init__(self, parts: list[_LossProfile]) -> None:
        self._parts = parts

    def segments(self, entry: Any, lo: float, hi: float) -> list[tuple[float, float, float]]:
        raw: list[tuple[float, float, float]] = []
        for part in self._parts:
            raw.extend(part.segments(entry, lo, hi))
        if len(raw) <= 1:
            return raw
        # Flatten overlaps into elementary intervals; a packet survives a
        # stack of independent Bernoulli drops with prod(1 - p_k).
        points = sorted({p for a, b, _ in raw for p in (a, b)})
        out: list[tuple[float, float, float]] = []
        for a, b in zip(points, points[1:]):
            survive = 1.0
            for sa, sb, p in raw:
                if sa <= a and b <= sb:
                    survive *= 1.0 - p
            p_drop = 1.0 - survive
            if p_drop > 0.0:
                out.append((a, b, p_drop))
        return out


def loss_profile(model: Any) -> _LossProfile:
    """Interpret a link ``loss_model`` as a fluid loss profile.

    Supports the stationary gray-failure classes whose drop decision
    depends only on the entry and the activation window.  Anything whose
    decision needs the concrete packet (property predicates, control
    filters with ``affect_control``, arbitrary callables) raises
    :class:`FluidModelError` — those links must carry discrete traffic.
    """
    if model is None:
        return _NullProfile()
    if isinstance(model, EntryLossFailure):
        return _WindowProfile(model.start_time,
                              math.inf if model.end_time is None else model.end_time,
                              model.loss_rate, model.entries)
    if isinstance(model, UniformLossFailure):
        return _WindowProfile(model.start_time,
                              math.inf if model.end_time is None else model.end_time,
                              model.loss_rate, None)
    if isinstance(model, ControlPlaneFailure):
        # Control-plane loss never touches data packets (its ``matches``
        # rejects everything non-control), so fluid *data* flows cross it
        # loss-free — the control messages themselves stay discrete and
        # feel the failure on the wire.
        return _NullProfile()
    if isinstance(model, IntermittentFailure):
        return _IntermittentProfile(loss_profile(model.inner), model.period_s,
                                    model.on_fraction, model.phase_s)
    if isinstance(model, CompositeFailure):
        return _CompositeProfile([loss_profile(f) for f in model.failures])
    if isinstance(model, GrayFailure):
        raise FluidModelError(
            f"loss model {type(model).__name__} depends on per-packet "
            "properties; fluid flows cannot cross it — keep that link's "
            "traffic discrete")
    raise FluidModelError(
        f"unrecognized loss model {type(model).__name__}; fluid flows "
        "require a gray-failure model from repro.simulator.failures")


def binomial(rng: random.Random, n: int, p: float) -> int:
    """Seeded binomial draw: exact for small ``n``, normal approx beyond.

    Loss rates 0 and 1 never touch the RNG, so the dedicated-counter
    exchanges of a total-blackhole failure are *exact*, not sampled —
    the "exact vs statistically matched" boundary docs/PERFORMANCE.md
    documents.
    """
    if n <= 0 or p <= 0.0:
        return 0
    if p >= 1.0:
        return n
    if n <= 64:
        # Per-packet Bernoulli draws, deliberately: at these counts the
        # exact distribution is cheap and matches the packet model's
        # loss statistics draw-for-draw in expectation.
        k = 0
        for _ in range(n):
            if rng.random() < p:  # fancylint: disable=FCY010
                k += 1
        return k
    mean = n * p
    sigma = math.sqrt(mean * (1.0 - p))
    k = round(rng.gauss(mean, sigma))
    return min(n, max(0, int(k)))


# --------------------------------------------------------------------------
# monitor binding: feed counters at protocol exchange boundaries
# --------------------------------------------------------------------------


class _BoundFlow:
    """One flow's per-monitor replay state.

    Each monitor gets its own cursor replica: two monitors on one flow's
    path replay the same emission sequence independently (same seed →
    bit-identical instants) with their own arrival chains.
    """

    __slots__ = ("flow", "cursor")

    def __init__(self, flow: FluidFlow, legs: tuple[float, ...]) -> None:
        self.flow = flow
        self.cursor = _EmissionCursor(flow, legs)


class FluidTraffic:
    """Fluid background flows bound to FANcY monitors.

    Flows registered here emit **no simulator events**: each bound
    monitor replays the flow's emission sequence lazily when one of its
    counting windows closes, bulk-feeding the dedicated/tree counter
    stores on both sides of the link.  ``absorbed`` counts the packet
    events the discrete engine never had to process (the benchmark
    harness reports it next to ``Simulator.events_processed`` so
    speedups are attributable).
    """

    def __init__(self, sim: Any = None) -> None:
        self.sim = sim
        self.flows: list[FluidFlow] = []
        #: Packet emissions absorbed into bulk counter updates.
        self.absorbed = 0
        #: Losses drawn from seeded binomials (receiver-side subtraction).
        self.lost = 0
        self._bindings: list[_MonitorBinding] = []

    def add_flow(self, flow: FluidFlow) -> FluidFlow:
        self.flows.append(flow)
        return flow

    def bind_monitor(
        self,
        monitor: Any,
        flows: list[FluidFlow],
        legs: tuple[float, ...],
        loss_model: Any = None,
        loss_seed: int = 0,
    ) -> None:
        """Attach ``flows`` to one link monitor's counting windows.

        Args:
            monitor: a :class:`~repro.core.detector.FancyLinkMonitor`.
            flows: the fluid flows whose path crosses the monitored link.
            legs: per-hop delay chain from the flows' source host to the
                monitor's egress (one entry per link crossed *before* the
                monitored one).
            loss_model: the monitored link's ``loss_model`` (validated
                through :func:`loss_profile` up front, failing loudly on
                unsupported models).
            loss_seed: base seed for the per-window binomial loss draws;
                derive it with ``stable_seed`` so sharded runs replay.
        """
        profile = loss_profile(loss_model)
        self._bindings.append(
            _MonitorBinding(self, monitor, flows, legs, profile, loss_seed))


class _MonitorBinding:
    """Routes window-close callbacks to bulk counter updates."""

    def __init__(self, traffic: FluidTraffic, monitor: Any,
                 flows: list[FluidFlow], legs: tuple[float, ...],
                 profile: _LossProfile, loss_seed: int) -> None:
        self.traffic = traffic
        self.monitor = monitor
        self.profile = profile
        self.loss_seed = loss_seed
        # Tier membership (dedicated vs tree) is decided per window from
        # the monitor's *current* dedicated strategy, not frozen at bind
        # time: entry churn (FancyLinkMonitor.update_entries) legitimately
        # moves entries between tiers mid-run, and each flow's cursor
        # simply continues from wherever its last counted window ended.
        self._bound = [_BoundFlow(flow, legs) for flow in flows]
        if self._bound and monitor.dedicated_sender is not None:
            monitor.dedicated_sender.window_taps.append(self._dedicated_window)
        if self._bound and monitor.tree_sender is not None:
            monitor.tree_sender.window_taps.append(self._tree_window)

    # -- window accounting -------------------------------------------------

    def _window_counts(self, bound: _BoundFlow, t0: float, t1: float,
                       tier: str, session_id: int) -> tuple[int, int]:
        """(sent, lost) for one flow in the monitor window ``[t0, t1)``.

        The cursor advances through the window's loss segments in order,
        so each elementary interval's count gets its own binomial draw —
        "seeded binomial loss draws per segment".
        """
        cursor = bound.cursor
        # Emissions arriving before the window opened were never counted
        # (counting pauses between sessions, §4.1); skip them, still
        # consuming their jitter draws.
        cursor.advance(t0)
        segments = self.profile.segments(bound.flow.entry, t0, t1)
        sent = 0
        lost = 0
        rng: random.Random | None = None
        cut = t0
        for a, b, p in segments:
            if a > cut:
                sent += cursor.advance(a)
            n = cursor.advance(min(b, t1))
            sent += n
            if n and p > 0.0:
                if p >= 1.0:
                    lost += n
                else:
                    if rng is None:
                        rng = random.Random(stable_seed(
                            self.loss_seed, "fluid-loss", tier,
                            bound.flow.entry, bound.flow.flow_id,
                            session_id))
                    lost += binomial(rng, n, p)
            cut = b
        if cut < t1:
            sent += cursor.advance(t1)
        return sent, lost

    # -- taps --------------------------------------------------------------

    def _dedicated_window(self, t0: float, t1: float, session_id: int) -> None:
        monitor = self.monitor
        sender = monitor.dedicated_strategy
        receiver = monitor.dedicated_receiver.strategy
        for bound in self._bound:
            entry = bound.flow.entry
            if not sender.owns(entry):
                continue
            if monitor.entry_is_flagged(entry):
                # Flagged entries return to the discrete plane: the
                # rerouting application owns their traffic from here on.
                continue
            sent, lost = self._window_counts(bound, t0, t1, "dedicated",
                                             session_id)
            if not sent:
                continue
            idx = sender.absorb(entry, sent)
            receiver.absorb(idx, sent - lost)
            self.traffic.absorbed += sent
            self.traffic.lost += lost

    def _tree_window(self, t0: float, t1: float, session_id: int) -> None:
        monitor = self.monitor
        strategy = monitor.tree_strategy
        receiver = monitor.tree_receiver.strategy
        dedicated = monitor.dedicated_strategy
        for bound in self._bound:
            entry = bound.flow.entry
            if dedicated is not None and dedicated.owns(entry):
                continue
            if monitor.entry_is_flagged(entry):
                continue
            sent, lost = self._window_counts(bound, t0, t1, "tree",
                                             session_id)
            if not sent:
                continue
            tag = strategy.tag_for_entry(entry)
            if tag is None:
                continue  # staged mode, off-frontier: uncounted by design
            strategy.absorb(tag, sent)
            receiver.absorb(tag, sent - lost)
            self.traffic.absorbed += sent
            self.traffic.lost += lost
