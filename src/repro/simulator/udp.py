"""Constant-bit-rate UDP sources.

Used by the fast-rerouting case study (§6.1), which mixes 50 Gbps of TCP
with 50 Mbps of UDP, and by open-loop micro-benchmarks where TCP dynamics
would get in the way of isolating a counting-protocol behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import EventHandle, Simulator
from .packet import Packet, PacketKind

__all__ = ["UdpSource"]


class UdpSource:
    """Sends fixed-size packets at a constant bit rate, open loop."""

    def __init__(
        self,
        sim: Simulator,
        send_fn: Callable[[Packet], None],
        entry: Any,
        flow_id: int,
        rate_bps: float,
        packet_size: int = 1500,
        jitter: float = 0.0,
        seed: int = 0,
    ):
        if rate_bps <= 0:
            raise ValueError("UDP source rate must be positive")
        self.sim = sim
        self.send_fn = send_fn
        self.entry = entry
        self.flow_id = flow_id
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.interval = packet_size * 8 / rate_bps
        self.jitter = jitter
        self.packets_sent = 0
        self.next_seq = 0
        self._timer: Optional[EventHandle] = None
        self._running = False
        if jitter:
            import random

            self._rng = random.Random(seed)
        else:
            self._rng = None

    def start(self, delay: float = 0.0) -> None:
        self._running = True
        self._timer = self.sim.schedule(delay, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if not self._running:
            return
        packet = Packet(
            PacketKind.DATA,
            self.entry,
            self.packet_size,
            flow_id=self.flow_id,
            seq=self.next_seq,
            created_at=self.sim.now,
        )
        self.next_seq += 1
        self.packets_sent += 1
        self.send_fn(packet)
        interval = self.interval
        if self._rng is not None:
            interval *= 1.0 + self.jitter * (2 * self._rng.random() - 1)
        self._timer = self.sim.schedule(interval, self._tick)
