"""Constant-bit-rate UDP sources.

Used by the fast-rerouting case study (§6.1), which mixes 50 Gbps of TCP
with 50 Mbps of UDP, and by open-loop micro-benchmarks where TCP dynamics
would get in the way of isolating a counting-protocol behaviour.

Fast path (packet trains): at high rates the per-packet timer event is
pure engine overhead — the source is open loop, so the packet stream is
fully determined by the jitter RNG.  With ``train=B`` the source emits
``B`` packets per timer event instead of one.  Per-packet bookkeeping is
preserved exactly: every packet carries the ``created_at`` timestamp it
would have had on the reference path (``now`` plus the accumulated
jittered gaps), sequence numbers advance identically, and the jitter RNG
is consumed once per packet in the same order, so the *stream metadata*
is bit-identical and the next timer lands at the exact reference
instant.  What the train compresses is wire entry: all ``B`` packets are
handed to ``send_fn`` at the head packet's departure time, so downstream
serialization sees a burst rather than spaced arrivals.  For stationary
loss models (draw order decides, not wall-clock) and for FANcY counting
(session membership rides on the packet tag, not on arrival time) this
is output-equivalent; see ``tests/simulator/test_fastpath_equivalence``.
Experiments that need exact per-packet wire timing keep ``train=1``.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from typing import Any

from .engine import EventHandle, Simulator
from .packet import Packet, PacketKind

__all__ = ["UdpSource"]


class UdpSource:
    """Sends fixed-size packets at a constant bit rate, open loop.

    Args:
        sim: event engine.
        send_fn: callable delivering a packet into the network.
        entry: monitoring entry (destination prefix) for the packets.
        flow_id: flow identifier stamped on every packet.
        rate_bps: constant bit rate.
        packet_size: frame size in bytes.
        jitter: fractional jitter; each inter-packet gap is drawn
            uniformly from ``interval * [1-jitter, 1+jitter]``.
        seed: jitter RNG seed (one independent stream per source).
        train: packets emitted per timer event (>=1).  ``1`` is the
            reference path; larger values batch timer events while
            preserving per-packet timestamps, seqs and RNG draws (see
            module docstring for the exact equivalence contract).
    """

    def __init__(
        self,
        sim: Simulator,
        send_fn: Callable[[Packet], None],
        entry: Any,
        flow_id: int,
        rate_bps: float,
        packet_size: int = 1500,
        jitter: float = 0.0,
        seed: int = 0,
        train: int = 1,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("UDP source rate must be positive")
        if train < 1:
            raise ValueError("train must be >= 1 packet per timer event")
        self.sim = sim
        self.send_fn = send_fn
        self.entry = entry
        self.flow_id = flow_id
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.interval = packet_size * 8 / rate_bps
        self.jitter = jitter
        self.train = train
        self.packets_sent = 0
        self.next_seq = 0
        self._timer: EventHandle | None = None
        self._running = False
        # Jittered-interval bounds, precomputed once: each gap is
        # interval * (lo + span * u) with u ~ U[0, 1), algebraically
        # identical to the historical interval * (1 + jitter * (2u - 1)).
        self._jitter_lo = 1.0 - jitter
        self._jitter_span = 2.0 * jitter
        self._rng: random.Random | None = random.Random(seed) if jitter else None

    def start(self, delay: float = 0.0) -> None:
        self._running = True
        self._timer = self.sim.schedule(delay, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _next_gap(self) -> float:
        """One inter-packet gap, drawing the per-packet jitter if enabled."""
        if self._rng is None:
            return self.interval
        return self.interval * (self._jitter_lo + self._jitter_span * self._rng.random())

    def _tick(self) -> None:
        if not self._running:
            return
        send_fn = self.send_fn
        # Accumulate *absolute* departure times (t = t + gap), matching the
        # float association order of the reference one-packet-per-event
        # path, where each tick fires at t and schedules t + gap.
        t = self.sim.now
        for _ in range(self.train):
            packet = Packet.acquire(
                PacketKind.DATA,
                self.entry,
                self.packet_size,
                flow_id=self.flow_id,
                seq=self.next_seq,
                created_at=t,
            )
            self.next_seq += 1
            self.packets_sent += 1
            send_fn(packet)
            t = t + self._next_gap()
        self._timer = self.sim.schedule_at(t, self._tick)
