"""P4-like switch model.

The switch mimics the data-plane structure the paper's ns-3 model
reproduces: parser → ingress pipeline → traffic manager (TM) → egress
pipeline → port.  The placement constraints from §3 are honoured:

* congestion (tail-drop) happens **in the TM**;
* upstream FANcY counting happens in the **egress pipeline**, i.e. after
  the TM, so congestion drops are never mistaken for gray failures;
* downstream FANcY counting happens in the **ingress pipeline**, i.e.
  before the TM of the receiving switch.

Hooks are plain callables so the FANcY detector (or any other in-switch
application, e.g. the rerouting app of §6.1) can be attached per port.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

from .engine import Simulator
from .link import Link
from .packet import Packet

__all__ = ["ForwardingOverride", "Node", "Switch", "SwitchStats"]

#: Ingress hook signature: (packet, in_port) -> bool.  Returning False
#: consumes the packet (it does not continue to the TM).
IngressHook = Callable[[Packet, int], bool]

#: Egress hook signature: (packet, out_port) -> bool.  Returning False
#: drops the packet instead of transmitting it.
EgressHook = Callable[[Packet, int], bool]

#: Forwarding-override signature: (packet) -> out_port or None to fall
#: through to the next override in the chain / the routing table.
ForwardingOverride = Callable[[Packet], "int | None"]


class Node:
    """Base class for anything attached to links (switches and hosts)."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.links: dict[int, Link] = {}

    def attach_link(self, port: int, link: Link) -> None:
        self.links[port] = link

    def receive(self, packet: Packet, in_port: int) -> None:
        raise NotImplementedError

    def transmit(self, packet: Packet, out_port: int) -> None:
        """Hand a packet to the link on ``out_port``."""
        link = self.links.get(out_port)
        if link is None:
            raise KeyError(f"{self.name}: no link on port {out_port}")
        link.send(packet)

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name})"


class SwitchStats:
    """Aggregate counters a switch keeps about its own forwarding."""

    __slots__ = ("received", "forwarded", "dropped_no_route", "dropped_tm", "consumed")

    def __init__(self) -> None:
        self.received = 0
        self.forwarded = 0
        self.dropped_no_route = 0
        self.dropped_tm = 0
        self.consumed = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "received": self.received,
            "forwarded": self.forwarded,
            "dropped_no_route": self.dropped_no_route,
            "dropped_tm": self.dropped_tm,
            "consumed": self.consumed,
        }


class Switch(Node):
    """A destination-(entry-)routed switch with FANcY attachment points.

    Args:
        sim: event engine.
        name: switch name for logs and link labels.
        tm_queue_packets: TM admission limit per output port, expressed as
            the maximum number of packets queued on the outgoing link.
            ``None`` disables tail-drop (infinite buffers).
        telemetry: optional :class:`repro.telemetry.Telemetry`; when set,
            the switch maintains ``switch_received_total`` /
            ``switch_forwarded_total`` / ``switch_consumed_total`` /
            ``switch_dropped_total{reason=tm|no_route}`` counters and a
            per-switch TM queue-occupancy histogram
            ``switch_tm_queue_occupancy`` (sampled at admission time).
    """

    def __init__(self, sim: Simulator, name: str, tm_queue_packets: int | None = 1000,
                 telemetry: Any | None = None) -> None:
        super().__init__(sim, name)
        self.tm_queue_packets = tm_queue_packets
        self.routes: dict[Any, int] = {}
        self.default_port: int | None = None
        self.stats = SwitchStats()
        self._telemetry = telemetry
        if telemetry is not None:
            metrics = telemetry.metrics
            self._m_received: Any = metrics.counter(
                "switch_received_total", "Packets entering the parser", switch=name)
            self._m_forwarded = metrics.counter(
                "switch_forwarded_total", "Packets leaving the egress pipeline",
                switch=name)
            self._m_consumed = metrics.counter(
                "switch_consumed_total", "Packets consumed by ingress hooks",
                switch=name)
            self._m_drop_tm = metrics.counter(
                "switch_dropped_total", "Packets dropped inside the switch",
                switch=name, reason="tm")
            self._m_drop_route = metrics.counter(
                "switch_dropped_total", "Packets dropped inside the switch",
                switch=name, reason="no_route")
            self._m_tm_occupancy = metrics.histogram(
                "switch_tm_queue_occupancy",
                "Output-queue occupancy observed at TM admission (packets)",
                start=1.0, base=4.0, n_buckets=8, switch=name)
        self._ingress_hooks: dict[int, list[IngressHook]] = {}
        self._egress_hooks: dict[int, list[EgressHook]] = {}
        #: Composable forwarding-override chain (fast-rerouting apps, the
        #: fabric forwarder, ...).  Overrides are consulted in order; the
        #: first one returning a port wins, None falls through to the
        #: next override and finally to the routing table.
        self._override_chain: list[ForwardingOverride] = []
        #: Hot-path cache: None (no overrides), the single override
        #: itself, or the bound chain dispatcher.  ``receive`` reads this
        #: attribute directly so the single-override fast path costs
        #: exactly what the pre-chain plain attribute did.
        self._fwd_override: ForwardingOverride | None = None

    # -- configuration -----------------------------------------------------

    def add_route(self, entry: Any, out_port: int) -> None:
        self.routes[entry] = out_port

    def add_routes(self, entries: Any, out_port: int) -> None:
        for entry in entries:
            self.routes[entry] = out_port

    def set_default_route(self, out_port: int) -> None:
        self.default_port = out_port

    def add_ingress_hook(self, in_port: int, hook: IngressHook, front: bool = False) -> None:
        """Register an ingress hook; ``front`` puts it before existing ones
        (FANcY uses this so its control messages are consumed before any
        topology-level routing hooks see them)."""
        hooks = self._ingress_hooks.setdefault(in_port, [])
        if front:
            hooks.insert(0, hook)
        else:
            hooks.append(hook)

    def add_egress_hook(self, out_port: int, hook: EgressHook) -> None:
        self._egress_hooks.setdefault(out_port, []).append(hook)

    # -- forwarding-override chain ------------------------------------------

    @property
    def forwarding_override(self) -> ForwardingOverride | None:
        """The effective override: None, the sole override, or the chain
        dispatcher.  Assignment replaces the whole chain (the historical
        single-override semantics); use :meth:`add_forwarding_override`
        to compose."""
        return self._fwd_override

    @forwarding_override.setter
    def forwarding_override(self, fn: ForwardingOverride | None) -> None:
        self._override_chain = [] if fn is None else [fn]
        self._refresh_override()

    def add_forwarding_override(self, fn: ForwardingOverride,
                                front: bool = False) -> None:
        """Append ``fn`` to the override chain (``front`` prepends).

        Earlier overrides win: the first one returning a port decides the
        packet.  Terminal resolvers (e.g. the fabric forwarder, which
        always returns a port) must therefore sit last, and reroute apps
        that shadow them prepend themselves with ``front=True``.
        """
        if fn in self._override_chain:
            raise ValueError(f"{self.name}: override {fn!r} already installed")
        if front:
            self._override_chain.insert(0, fn)
        else:
            self._override_chain.append(fn)
        self._refresh_override()

    def remove_forwarding_override(self, fn: ForwardingOverride) -> None:
        """Remove ``fn`` from the chain; unknown overrides are a no-op."""
        try:
            self._override_chain.remove(fn)
        except ValueError:
            return
        self._refresh_override()

    def _refresh_override(self) -> None:
        chain = self._override_chain
        if not chain:
            self._fwd_override = None
        elif len(chain) == 1:
            # Identity-preserving: with one override installed the public
            # attribute *is* that callable, exactly as before the chain.
            self._fwd_override = chain[0]
        else:
            self._fwd_override = self._run_override_chain

    def _run_override_chain(self, packet: Packet) -> int | None:
        for fn in self._override_chain:
            port = fn(packet)
            if port is not None:
                return port
        return None

    # -- data plane ---------------------------------------------------------

    def receive(self, packet: Packet, in_port: int) -> None:
        """Parser + ingress pipeline + TM + egress pipeline, inlined.

        This is the per-packet hot path (every forwarded packet runs it
        once per hop), so the TM and egress stages are inlined here
        rather than delegated to :meth:`_traffic_manager` /
        :meth:`_egress` — the method-call chain and the duplicate
        ``links`` lookup in :meth:`Node.transmit` are measurable at
        packet rates.  Keep the logic in sync with those methods, which
        remain the entry points for :meth:`inject` and for topology code
        that feeds packets straight into an egress pipeline.
        """
        stats = self.stats
        telemetry = self._telemetry
        stats.received += 1
        if telemetry is not None:
            self._m_received.inc()
        hooks = self._ingress_hooks.get(in_port)
        if hooks is not None:
            for hook in hooks:
                if not hook(packet, in_port):
                    stats.consumed += 1
                    if telemetry is not None:
                        self._m_consumed.inc()
                    return
        # -- TM: route lookup + tail-drop admission (see _traffic_manager).
        out_port: int | None = None
        override = self._fwd_override
        if override is not None:
            out_port = override(packet)
        if out_port is None:
            out_port = self.routes.get(packet.entry, self.default_port)
        if out_port is None:
            stats.dropped_no_route += 1
            if telemetry is not None:
                self._m_drop_route.inc()
            return
        link = self.links.get(out_port)
        if link is None:
            stats.dropped_no_route += 1
            if telemetry is not None:
                self._m_drop_route.inc()
            return
        if telemetry is not None:
            self._m_tm_occupancy.observe(link.queue_len)
        if self.tm_queue_packets is not None and \
                len(link._tx_queue) + len(link._ctrl_queue) >= self.tm_queue_packets:
            # Inlined link.queue_len (same definition): the property call
            # is measurable at per-packet admission rates.
            stats.dropped_tm += 1
            if telemetry is not None:
                self._m_drop_tm.inc()
            return
        # -- Egress pipeline (see _egress).
        hooks = self._egress_hooks.get(out_port)
        if hooks is not None:
            for hook in hooks:
                if not hook(packet, out_port):
                    return
        stats.forwarded += 1
        if telemetry is not None:
            self._m_forwarded.inc()
        link.send(packet)

    def _traffic_manager(self, packet: Packet) -> None:
        """TM: route lookup + tail-drop admission, then egress pipeline.

        The forwarding hot path inlines this logic in :meth:`receive`;
        keep the two in sync.
        """
        out_port: int | None = None
        if self._fwd_override is not None:
            out_port = self._fwd_override(packet)
        if out_port is None:
            out_port = self.routes.get(packet.entry, self.default_port)
        if out_port is None:
            self.stats.dropped_no_route += 1
            if self._telemetry is not None:
                self._m_drop_route.inc()
            return
        link = self.links.get(out_port)
        if link is None:
            self.stats.dropped_no_route += 1
            if self._telemetry is not None:
                self._m_drop_route.inc()
            return
        if self._telemetry is not None:
            self._m_tm_occupancy.observe(link.queue_len)
        if self.tm_queue_packets is not None and link.queue_len >= self.tm_queue_packets:
            self.stats.dropped_tm += 1
            if self._telemetry is not None:
                self._m_drop_tm.inc()
            return
        self._egress(packet, out_port)

    def _egress(self, packet: Packet, out_port: int) -> None:
        """Egress pipeline (after the TM): FANcY sender hooks live here.

        Entry point for :meth:`inject` and for topology/rerouting code;
        the forwarding hot path inlines the same logic in
        :meth:`receive`.
        """
        for hook in self._egress_hooks.get(out_port, ()):
            if not hook(packet, out_port):
                return
        self.stats.forwarded += 1
        if self._telemetry is not None:
            self._m_forwarded.inc()
        # Reverse-routed traffic (every ACK, via the topology ingress
        # hooks) lands here too, so resolve the link once instead of
        # paying transmit()'s second lookup.
        link = self.links.get(out_port)
        if link is None:
            raise KeyError(f"{self.name}: no link on port {out_port}")
        link.send(packet)

    def inject(self, packet: Packet, out_port: int) -> None:
        """Send a locally generated packet (e.g. a FANcY control message).

        Control messages go straight to the egress pipeline of the target
        port; they are subject to egress hooks (so the local FANcY sender
        sees its own Start/Stop messages leaving, which it ignores) and to
        on-wire failures, but not to TM admission.
        """
        self._egress(packet, out_port)
