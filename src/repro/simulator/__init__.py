"""Packet-level discrete-event network simulator.

This package is the reproduction's stand-in for ns-3: an event engine,
links with bandwidth/delay/loss, P4-like switches with ingress/egress hook
points around a traffic manager, a Reno-style TCP, CBR UDP sources, and
ready-made evaluation topologies.
"""

from .apps import FlowGenerator, Host, ThroughputMeter
from .engine import EventHandle, SimulationError, Simulator
from .failures import (
    CompositeFailure,
    IntermittentFailure,
    ControlPlaneFailure,
    EntryLossFailure,
    GrayFailure,
    PacketPropertyFailure,
    UniformLossFailure,
)
from .link import Link, connect_duplex
from .packet import FANCY_TAG_BYTES, MIN_FRAME_BYTES, Packet, PacketKind
from .switch import Node, Switch
from .tcp import DEFAULT_RTO, TcpFlow, TcpSink
from .topology import ChainTopology, StarTopology, TwoSwitchTopology
from .tracing import PacketTracer, TraceEvent
from .udp import UdpSource

__all__ = [
    "Simulator",
    "SimulationError",
    "EventHandle",
    "Packet",
    "PacketKind",
    "FANCY_TAG_BYTES",
    "MIN_FRAME_BYTES",
    "Link",
    "connect_duplex",
    "Node",
    "Switch",
    "Host",
    "FlowGenerator",
    "ThroughputMeter",
    "TcpFlow",
    "TcpSink",
    "DEFAULT_RTO",
    "UdpSource",
    "GrayFailure",
    "EntryLossFailure",
    "UniformLossFailure",
    "PacketPropertyFailure",
    "ControlPlaneFailure",
    "CompositeFailure",
    "IntermittentFailure",
    "TwoSwitchTopology",
    "ChainTopology",
    "StarTopology",
    "PacketTracer",
    "TraceEvent",
]
