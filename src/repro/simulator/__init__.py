"""Packet-level discrete-event network simulator.

This package is the reproduction's stand-in for ns-3: an event engine,
links with bandwidth/delay/loss, P4-like switches with ingress/egress hook
points around a traffic manager, a Reno-style TCP, CBR UDP sources, and
ready-made evaluation topologies.

Performance: the dataplane has a reference path and an equivalence-tested
fast path (fused link events, packet pooling, UDP packet trains) governed
by :mod:`repro.simulator.fastpath`; see ``docs/PERFORMANCE.md``.
"""

from . import fastpath
from .apps import FlowGenerator, Host, ThroughputMeter
from .engine import EventHandle, SimulationError, Simulator
from .failures import (
    CompositeFailure,
    IntermittentFailure,
    ControlPlaneFailure,
    EntryLossFailure,
    GrayFailure,
    PacketPropertyFailure,
    UniformLossFailure,
)
from .link import Link, LinkStats, connect_duplex
from .packet import FANCY_TAG_BYTES, MIN_FRAME_BYTES, POOL, Packet, PacketKind, PacketPool
from .switch import Node, Switch
from .tcp import DEFAULT_RTO, TcpFlow, TcpSink
from .topology import ChainTopology, StarTopology, TwoSwitchTopology
from .tracing import PacketTracer, TraceEvent
from .udp import UdpSource

__all__ = [
    "Simulator",
    "SimulationError",
    "EventHandle",
    "Packet",
    "PacketKind",
    "PacketPool",
    "POOL",
    "FANCY_TAG_BYTES",
    "MIN_FRAME_BYTES",
    "Link",
    "LinkStats",
    "connect_duplex",
    "fastpath",
    "Node",
    "Switch",
    "Host",
    "FlowGenerator",
    "ThroughputMeter",
    "TcpFlow",
    "TcpSink",
    "DEFAULT_RTO",
    "UdpSource",
    "GrayFailure",
    "EntryLossFailure",
    "UniformLossFailure",
    "PacketPropertyFailure",
    "ControlPlaneFailure",
    "CompositeFailure",
    "IntermittentFailure",
    "TwoSwitchTopology",
    "ChainTopology",
    "StarTopology",
    "PacketTracer",
    "TraceEvent",
]
