"""Packet model for the simulator.

Packets carry just enough header state for the reproduction: an *entry*
key standing in for the destination prefix (the unit FANcY monitors), TCP
bookkeeping fields, and the FANcY tag.

Following §5.3 of the paper, a FANcY tag occupies 2 bytes on the wire: for
dedicated counters it is the counter ID; for the hash-based tree one byte
encodes the node's hash path and the other the counter index within the
node.  We model the tag as a tuple of counter indices (the packet's partial
hash path) plus the session colour, which is what the logic consumes.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

__all__ = ["PacketKind", "Packet", "make_data_packet", "FANCY_TAG_BYTES", "MIN_FRAME_BYTES"]

#: Wire overhead of a FANcY tag on a tagged packet (§5.3).
FANCY_TAG_BYTES = 2

#: Minimum Ethernet frame size, used for control messages (§5.3).
MIN_FRAME_BYTES = 64

_packet_ids = itertools.count()


class PacketKind(enum.Enum):
    """Packet categories understood by switches and endpoints."""

    DATA = "data"
    ACK = "ack"
    # FANcY counting-protocol control messages (§4.1).
    FANCY_START = "fancy_start"
    FANCY_START_ACK = "fancy_start_ack"
    FANCY_STOP = "fancy_stop"
    FANCY_REPORT = "fancy_report"

    @property
    def is_control(self) -> bool:
        return self not in (PacketKind.DATA, PacketKind.ACK)


class Packet:
    """A simulated packet.

    Attributes:
        pid: globally unique packet id (monotonically increasing).
        kind: one of :class:`PacketKind`.
        entry: monitoring-entry key (destination prefix id); drives both
            forwarding and FANcY counting.
        flow_id: id of the transport flow the packet belongs to.
        size: total frame size in bytes (including any FANcY tag).
        seq: transport sequence number (bytes for TCP, packets for UDP).
        ack: cumulative ACK number for ACK packets.
        created_at: simulated time the packet was created by its source.
        tag: FANcY tag — ``None`` when untagged, otherwise a tuple of
            counter indices describing the packet's (partial) hash path;
            dedicated-counter packets carry a 1-tuple.
        tag_session: colour of the counting session the tag belongs to.
        payload: control-message payload (e.g. Report counters).
    """

    __slots__ = (
        "pid",
        "kind",
        "entry",
        "flow_id",
        "size",
        "seq",
        "ack",
        "created_at",
        "tag",
        "tag_session",
        "tag_dedicated",
        "payload",
        "reverse",
    )

    def __init__(
        self,
        kind: PacketKind,
        entry: Any,
        size: int,
        flow_id: int = -1,
        seq: int = 0,
        ack: int = -1,
        created_at: float = 0.0,
        payload: Optional[dict] = None,
        reverse: bool = False,
    ):
        self.pid = next(_packet_ids)
        self.kind = kind
        self.entry = entry
        self.flow_id = flow_id
        self.size = size
        self.seq = seq
        self.ack = ack
        self.created_at = created_at
        self.tag: Optional[tuple[int, ...]] = None
        self.tag_session: int = -1
        self.tag_dedicated: bool = False
        self.payload = payload
        #: True for packets flowing from the traffic sink back to sources
        #: (TCP ACKs); these traverse the monitored link in the reverse
        #: direction and are not counted by the forward FANcY session.
        self.reverse = reverse

    @property
    def is_tagged(self) -> bool:
        return self.tag is not None

    def clear_tag(self) -> None:
        self.tag = None
        self.tag_session = -1
        self.tag_dedicated = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" tag={self.tag}@s{self.tag_session}" if self.tag is not None else ""
        return (
            f"Packet(#{self.pid} {self.kind.value} entry={self.entry!r} "
            f"flow={self.flow_id} seq={self.seq} size={self.size}{tag})"
        )


def make_data_packet(
    entry: Any,
    size: int,
    flow_id: int,
    seq: int,
    now: float,
) -> Packet:
    """Convenience constructor for forward data packets."""
    return Packet(PacketKind.DATA, entry, size, flow_id=flow_id, seq=seq, created_at=now)
