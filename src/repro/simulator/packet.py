"""Packet model for the simulator.

Packets carry just enough header state for the reproduction: an *entry*
key standing in for the destination prefix (the unit FANcY monitors), TCP
bookkeeping fields, and the FANcY tag.

Following §5.3 of the paper, a FANcY tag occupies 2 bytes on the wire: for
dedicated counters it is the counter ID; for the hash-based tree one byte
encodes the node's hash path and the other the counter index within the
node.  We model the tag as a tuple of counter indices (the packet's partial
hash path) plus the session colour, which is what the logic consumes.

Fast path: :class:`Packet` is a ``__slots__`` class and — when the pool is
enabled via :mod:`repro.simulator.fastpath` — construction goes through a
free list (:meth:`Packet.acquire`) with an explicit :meth:`Packet.release`
at the sink.  A recycled packet is indistinguishable from a fresh one: it
receives the next global ``pid`` from the same counter and every field is
re-initialized, so pooled and unpooled runs are bit-identical.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any

__all__ = [
    "PacketKind",
    "Packet",
    "PacketPool",
    "POOL",
    "make_data_packet",
    "FANCY_TAG_BYTES",
    "MIN_FRAME_BYTES",
]

#: Wire overhead of a FANcY tag on a tagged packet (§5.3).
FANCY_TAG_BYTES = 2

#: Minimum Ethernet frame size, used for control messages (§5.3).
MIN_FRAME_BYTES = 64

_packet_ids = itertools.count()


class PacketKind(enum.Enum):
    """Packet categories understood by switches and endpoints."""

    #: Precomputed per-member flag (annotation only — not an enum member);
    #: set in the loop below the class body.
    is_control: bool

    DATA = "data"
    ACK = "ack"
    # FANcY counting-protocol control messages (§4.1).
    FANCY_START = "fancy_start"
    FANCY_START_ACK = "fancy_start_ack"
    FANCY_STOP = "fancy_stop"
    FANCY_REPORT = "fancy_report"


# ``is_control`` is consulted once per packet in loss models and routing
# hooks; precomputing it as a plain member attribute makes the lookup a
# single LOAD_ATTR instead of a property call.
for _kind in PacketKind:
    _kind.is_control = _kind not in (PacketKind.DATA, PacketKind.ACK)
del _kind


class PacketPool:
    """Free list of recycled :class:`Packet` objects.

    Disabled by default; toggle through :func:`repro.simulator.fastpath.
    configure` (which keeps ``CONFIG.packet_pool`` and ``POOL.enabled``
    in sync).  The pool is bounded: beyond ``max_size`` released packets
    are simply left to the garbage collector.
    """

    __slots__ = ("enabled", "max_size", "free", "reused", "released")

    def __init__(self, max_size: int = 8192) -> None:
        self.enabled = False
        self.max_size = max_size
        self.free: list["Packet"] = []
        #: Lifetime stats (observability for the pool micro-benchmarks).
        self.reused = 0
        self.released = 0

    def drain(self) -> None:
        """Drop every pooled packet (used when disabling the pool)."""
        self.free.clear()

    def stats(self) -> dict[str, int | bool]:
        return {
            "enabled": self.enabled,
            "free": len(self.free),
            "reused": self.reused,
            "released": self.released,
        }


#: The process-wide packet pool.
POOL = PacketPool()


class Packet:
    """A simulated packet.

    Attributes:
        pid: globally unique packet id (monotonically increasing);
            ``-1`` marks a packet currently parked in the pool.
        kind: one of :class:`PacketKind`.
        entry: monitoring-entry key (destination prefix id); drives both
            forwarding and FANcY counting.
        flow_id: id of the transport flow the packet belongs to.
        size: total frame size in bytes (including any FANcY tag).
        seq: transport sequence number (bytes for TCP, packets for UDP).
        ack: cumulative ACK number for ACK packets.
        created_at: simulated time the packet was created by its source.
        tag: FANcY tag — ``None`` when untagged, otherwise a tuple of
            counter indices describing the packet's (partial) hash path;
            dedicated-counter packets carry a 1-tuple.
        tag_session: colour of the counting session the tag belongs to.
        payload: control-message payload (e.g. Report counters).
    """

    __slots__ = (
        "pid",
        "kind",
        "entry",
        "flow_id",
        "size",
        "seq",
        "ack",
        "created_at",
        "tag",
        "tag_session",
        "tag_dedicated",
        "payload",
        "reverse",
    )

    def __init__(
        self,
        kind: PacketKind,
        entry: Any,
        size: int,
        flow_id: int = -1,
        seq: int = 0,
        ack: int = -1,
        created_at: float = 0.0,
        payload: dict[str, Any] | None = None,
        reverse: bool = False,
    ) -> None:
        self.pid = next(_packet_ids)
        self.kind = kind
        self.entry = entry
        self.flow_id = flow_id
        self.size = size
        self.seq = seq
        self.ack = ack
        self.created_at = created_at
        self.tag: tuple[int, ...] | None = None
        self.tag_session: int = -1
        self.tag_dedicated: bool = False
        self.payload = payload
        #: True for packets flowing from the traffic sink back to sources
        #: (TCP ACKs); these traverse the monitored link in the reverse
        #: direction and are not counted by the forward FANcY session.
        self.reverse = reverse

    @classmethod
    def acquire(
        cls,
        kind: PacketKind,
        entry: Any,
        size: int,
        flow_id: int = -1,
        seq: int = 0,
        ack: int = -1,
        created_at: float = 0.0,
        payload: dict[str, Any] | None = None,
        reverse: bool = False,
    ) -> "Packet":
        """Pool-aware constructor: recycle a released packet when possible.

        Falls back to a regular allocation when the pool is disabled or
        empty.  Either way the packet gets a fresh ``pid`` from the global
        counter, so pooled runs consume the id sequence identically.
        """
        pool = POOL
        if pool.enabled and pool.free:
            packet = pool.free.pop()
            pool.reused += 1
            packet.pid = next(_packet_ids)
            packet.kind = kind
            packet.entry = entry
            packet.flow_id = flow_id
            packet.size = size
            packet.seq = seq
            packet.ack = ack
            packet.created_at = created_at
            packet.tag = None
            packet.tag_session = -1
            packet.tag_dedicated = False
            packet.payload = payload
            packet.reverse = reverse
            return packet
        return cls(kind, entry, size, flow_id=flow_id, seq=seq, ack=ack,
                   created_at=created_at, payload=payload, reverse=reverse)

    def release(self) -> None:
        """Return this packet to the free list (no-op when pool disabled).

        Safe against double release: a parked packet (``pid == -1``) is
        never parked twice.  Callers must not touch the packet afterwards.
        """
        pool = POOL
        if not pool.enabled or self.pid == -1:
            return
        if len(pool.free) < pool.max_size:
            self.pid = -1
            self.entry = None
            self.payload = None
            self.tag = None
            pool.free.append(self)
            pool.released += 1

    @property
    def is_tagged(self) -> bool:
        return self.tag is not None

    def clear_tag(self) -> None:
        self.tag = None
        self.tag_session = -1
        self.tag_dedicated = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = f" tag={self.tag}@s{self.tag_session}" if self.tag is not None else ""
        return (
            f"Packet(#{self.pid} {self.kind.value} entry={self.entry!r} "
            f"flow={self.flow_id} seq={self.seq} size={self.size}{tag})"
        )


def make_data_packet(
    entry: Any,
    size: int,
    flow_id: int,
    seq: int,
    now: float,
) -> Packet:
    """Convenience constructor for forward data packets (pool-aware)."""
    return Packet.acquire(PacketKind.DATA, entry, size, flow_id=flow_id, seq=seq,
                          created_at=now)
