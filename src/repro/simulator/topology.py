"""Ready-made topologies for the evaluation experiments.

The paper's simulations all reduce to traffic crossing one monitored
switch-to-switch link (FANcY works per link).  :class:`TwoSwitchTopology`
builds exactly that:

    source host --- upstream switch A === monitored link === downstream
    switch B --- sink host

with the gray failure injected on the A→B wire.  ACKs travel B→A.  The
:class:`ChainTopology` strings several switches for the partial-deployment
scenario of §4.3, where FANcY runs only at the two ends of a path.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from .apps import Host
from .engine import Simulator
from .link import Link, connect_duplex
from .packet import Packet
from .switch import Switch

__all__ = ["TwoSwitchTopology", "ChainTopology", "StarTopology"]

# Port conventions for the two-switch topology.
PORT_TO_HOST = 0
PORT_TO_PEER = 1


class TwoSwitchTopology:
    """The canonical evaluation topology.

    Args:
        sim: event engine.
        link_delay_s: monitored-link one-way delay (paper default 10 ms).
        link_bandwidth_bps: monitored-link rate.
        access_delay_s: host-to-switch delay (kept small).
        loss_model: gray failure applied on the A→B direction.
        reverse_loss_model: optional failure on the B→A direction (control
            messages/ACKs), for protocol-resilience experiments.
        tm_queue_packets: TM queue capacity on the switches.
        telemetry: optional :class:`repro.telemetry.Telemetry` threaded
            into both switches and the monitored-link pair (per-port
            tx/drop counters and queue-occupancy signals).
    """

    def __init__(
        self,
        sim: Simulator,
        link_delay_s: float = 0.010,
        link_bandwidth_bps: float | None = 100e9,
        access_delay_s: float = 0.0001,
        loss_model: Callable[[Packet, float], bool] | None = None,
        reverse_loss_model: Callable[[Packet, float], bool] | None = None,
        tm_queue_packets: int | None = 10000,
        telemetry: Any | None = None,
    ) -> None:
        self.sim = sim
        self.source = Host(sim, "src-host")
        self.sink = Host(sim, "dst-host", auto_sink=True)
        self.upstream = Switch(sim, "A", tm_queue_packets=tm_queue_packets,
                               telemetry=telemetry)
        self.downstream = Switch(sim, "B", tm_queue_packets=tm_queue_packets,
                                 telemetry=telemetry)

        connect_duplex(
            sim, self.source, 0, self.upstream, PORT_TO_HOST,
            bandwidth_bps=None, delay_s=access_delay_s,
        )
        self.link_ab, self.link_ba = connect_duplex(
            sim, self.upstream, PORT_TO_PEER, self.downstream, PORT_TO_PEER,
            bandwidth_bps=link_bandwidth_bps, delay_s=link_delay_s,
            loss_model_ab=loss_model, loss_model_ba=reverse_loss_model,
            telemetry=telemetry,
        )
        connect_duplex(
            sim, self.downstream, PORT_TO_HOST, self.sink, 0,
            bandwidth_bps=None, delay_s=access_delay_s,
        )

        # Forward traffic goes toward the sink, reverse (ACKs) to the source.
        self.upstream.set_default_route(PORT_TO_PEER)
        self.downstream.set_default_route(PORT_TO_HOST)

        # Reverse routing: ACKs arrive at B from the sink and must go to A,
        # then from A to the source host.  We route on packet.reverse via
        # ingress hooks rather than growing the routing table.
        self.downstream.add_ingress_hook(PORT_TO_HOST, self._route_reverse_b)
        self.upstream.add_ingress_hook(PORT_TO_PEER, self._route_reverse_a)

    def _route_reverse_b(self, packet: Packet, _in_port: int) -> bool:
        if packet.reverse:
            self.downstream._egress(packet, PORT_TO_PEER)
            return False
        return True

    def _route_reverse_a(self, packet: Packet, _in_port: int) -> bool:
        if packet.reverse:
            self.upstream._egress(packet, PORT_TO_HOST)
            return False
        return True

    @property
    def monitored_link(self) -> Link:
        return self.link_ab


class ChainTopology:
    """A chain of ``n`` switches between a source and a sink host.

    Used for partial-deployment experiments: FANcY instances sit on the
    first and last switch, and a failure anywhere along the chain must be
    detected (though not pinpointed to a hop, per §4.3).

    ``telemetry`` threads a :class:`repro.telemetry.Telemetry` session
    into every switch and every inter-switch link pair, mirroring
    :class:`TwoSwitchTopology` (host access links stay uninstrumented).
    """

    def __init__(
        self,
        sim: Simulator,
        n_switches: int = 3,
        link_delay_s: float = 0.010,
        link_bandwidth_bps: float | None = 100e9,
        failure_hop: int | None = None,
        loss_model: Callable[[Packet, float], bool] | None = None,
        tm_queue_packets: int | None = 10000,
        telemetry: Any | None = None,
    ) -> None:
        if n_switches < 2:
            raise ValueError("chain needs at least two switches")
        if failure_hop is not None and not 0 <= failure_hop < n_switches - 1:
            raise ValueError(f"failure_hop must be in [0, {n_switches - 2}]")
        self.sim = sim
        self.source = Host(sim, "src-host")
        self.sink = Host(sim, "dst-host", auto_sink=True)
        self.switches = [Switch(sim, f"S{i}", tm_queue_packets=tm_queue_packets,
                                telemetry=telemetry)
                         for i in range(n_switches)]
        self.links: list[Link] = []

        connect_duplex(sim, self.source, 0, self.switches[0], PORT_TO_HOST,
                       bandwidth_bps=None, delay_s=0.0001)
        for i in range(n_switches - 1):
            loss = loss_model if failure_hop == i else None
            fwd, _rev = connect_duplex(
                sim, self.switches[i], PORT_TO_PEER, self.switches[i + 1], 2,
                bandwidth_bps=link_bandwidth_bps, delay_s=link_delay_s,
                loss_model_ab=loss, telemetry=telemetry,
            )
            self.links.append(fwd)
        connect_duplex(sim, self.switches[-1], PORT_TO_HOST, self.sink, 0,
                       bandwidth_bps=None, delay_s=0.0001)

        for i, sw in enumerate(self.switches):
            if i < n_switches - 1:
                sw.set_default_route(PORT_TO_PEER)
            else:
                sw.set_default_route(PORT_TO_HOST)

        # Reverse path: hook every switch to bounce reverse packets back
        # toward the source.
        def make_reverse_hook(sw: Switch, out_port: int) -> Callable[[Packet, int], bool]:
            def hook(packet: Packet, _in_port: int) -> bool:
                if packet.reverse:
                    sw._egress(packet, out_port)
                    return False
                return True
            return hook

        for i, sw in enumerate(self.switches):
            back_port = PORT_TO_HOST if i == 0 else 2
            if i < n_switches - 1:
                sw.add_ingress_hook(PORT_TO_PEER, make_reverse_hook(sw, back_port))
        last = self.switches[-1]
        last.add_ingress_hook(PORT_TO_HOST, make_reverse_hook(last, 2))

    @property
    def first(self) -> Switch:
        return self.switches[0]

    @property
    def last(self) -> Switch:
        return self.switches[-1]


class StarTopology:
    """One central switch with ``n`` downstream peers — the paper's
    per-port framing (a 64-port switch maintaining counting sessions with
    *all* its downstream switches, §3/§5).

    Traffic for peer ``i``'s entries enters at the source host, crosses
    the hub, and exits on port ``i + 1``; each hub→peer link can carry its
    own gray failure.  Port 0 faces the source host.

    ``telemetry`` threads a :class:`repro.telemetry.Telemetry` session
    into the hub, every peer switch, and every hub↔peer link pair.
    """

    def __init__(
        self,
        sim: Simulator,
        n_peers: int = 4,
        link_delay_s: float = 0.010,
        link_bandwidth_bps: float | None = 100e9,
        loss_models: dict[int, Callable[[Packet, float], bool]] | None = None,
        tm_queue_packets: int | None = 10000,
        telemetry: Any | None = None,
    ) -> None:
        if n_peers < 1:
            raise ValueError("star needs at least one peer")
        self.sim = sim
        self.n_peers = n_peers
        self.source = Host(sim, "src-host")
        self.hub = Switch(sim, "hub", tm_queue_packets=tm_queue_packets,
                          telemetry=telemetry)
        self.peers: list[Switch] = []
        self.sinks: list[Host] = []
        self.links: list[Link] = []
        loss_models = loss_models or {}

        connect_duplex(sim, self.source, 0, self.hub, 0,
                       bandwidth_bps=None, delay_s=0.0001)
        for i in range(n_peers):
            peer = Switch(sim, f"peer{i}", tm_queue_packets=tm_queue_packets,
                          telemetry=telemetry)
            sink = Host(sim, f"sink{i}", auto_sink=True)
            fwd, _rev = connect_duplex(
                sim, self.hub, i + 1, peer, 1,
                bandwidth_bps=link_bandwidth_bps, delay_s=link_delay_s,
                loss_model_ab=loss_models.get(i), telemetry=telemetry,
            )
            connect_duplex(sim, peer, 0, sink, 0,
                           bandwidth_bps=None, delay_s=0.0001)
            peer.set_default_route(0)
            self.peers.append(peer)
            self.sinks.append(sink)
            self.links.append(fwd)

            def make_reverse(sw: Switch, port: int) -> Callable[[Packet, int], bool]:
                def hook(packet: Packet, _in: int) -> bool:
                    if packet.reverse:
                        sw._egress(packet, port)
                        return False
                    return True
                return hook

            peer.add_ingress_hook(0, make_reverse(peer, 1))
            self.hub.add_ingress_hook(i + 1, make_reverse(self.hub, 0))

    def hub_port(self, peer_index: int) -> int:
        """Hub egress port facing ``peer_index``."""
        if not 0 <= peer_index < self.n_peers:
            raise IndexError(f"no peer {peer_index}")
        return peer_index + 1

    def route_entries(self, peer_index: int, entries: Any) -> None:
        """Steer the given entries toward one peer."""
        self.hub.add_routes(entries, self.hub_port(peer_index))
