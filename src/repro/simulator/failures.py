"""Gray-failure models.

The paper classifies gray failures along two axes (Table 1): which
forwarding entries are affected (one / some / all IP prefixes) and which
packets per affected entry are dropped (some / all).  Each class here is a
link ``loss_model`` callable implementing one cell of that classification:

* :class:`EntryLossFailure` — some/all packets of a chosen set of entries
  (e.g. "specific IP prefixes", "VPN label corruption").
* :class:`UniformLossFailure` — random drops across all entries ("CRC
  errors", dirty fiber, link-level problems).
* :class:`PacketPropertyFailure` — drops keyed on packet properties
  ("packets with specific sizes", "IP ID field 0xE000").
* :class:`ControlPlaneFailure` — drops FANcY's own control messages, used
  to exercise the protocol's stop-and-wait resilience.

All models share a start/end activation window and a deterministic RNG, so
experiments are reproducible given a seed.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable, Iterable
from typing import Any

from .packet import Packet, PacketKind

__all__ = [
    "GrayFailure",
    "EntryLossFailure",
    "UniformLossFailure",
    "PacketPropertyFailure",
    "ControlPlaneFailure",
    "IntermittentFailure",
    "CompositeFailure",
]


class GrayFailure:
    """Base class: an activation window plus a drop decision.

    Subclasses override :meth:`matches` to select packets; the base class
    handles activation timing and the Bernoulli drop draw.
    """

    def __init__(
        self,
        loss_rate: float,
        start_time: float = 0.0,
        end_time: float | None = None,
        seed: int = 0,
        affect_control: bool = False,
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise ValueError(f"loss_rate must be in [0, 1], got {loss_rate}")
        self.loss_rate = loss_rate
        # Single source of truth for the activation window: the window is
        # stored normalised as ``[_start, _end)`` with ``_end = +inf`` when
        # open-ended, so :meth:`active` and the hot path in :meth:`__call__`
        # share one comparison expression (``_start <= now < _end``) instead
        # of two hand-synchronised copies.  ``start_time`` / ``end_time``
        # remain available as read-only properties for display/tests.
        self._start = start_time
        self._end = math.inf if end_time is None else end_time
        self.affect_control = affect_control
        self.rng = random.Random(seed)
        self.drops = 0

    @property
    def start_time(self) -> float:
        return self._start

    @property
    def end_time(self) -> float | None:
        return None if self._end == math.inf else self._end

    def active(self, now: float) -> bool:
        """Whether the activation window covers ``now``.

        Must agree exactly with the window gate in :meth:`__call__`; both
        evaluate the same ``_start <= now < _end`` expression on the
        normalised fields (guarded by tests/simulator/test_failures.py).
        """
        return self._start <= now < self._end

    def matches(self, packet: Packet) -> bool:
        """Whether this failure can affect ``packet`` (ignoring loss rate)."""
        raise NotImplementedError

    def __call__(self, packet: Packet, now: float) -> bool:
        """Link loss-model protocol: return True to drop the packet.

        Runs once per packet crossing a failed link, so the activation
        window is the same single normalised comparison used by
        :meth:`active` — one expression, no duplicated logic to keep in
        sync, and still no extra method call on the fast path.
        """
        if not self._start <= now < self._end:
            return False
        if packet.kind.is_control and not self.affect_control:
            return False
        if not self.matches(packet):
            return False
        if self.loss_rate >= 1.0 or self.rng.random() < self.loss_rate:
            self.drops += 1
            return True
        return False


class EntryLossFailure(GrayFailure):
    """Drops packets belonging to a specific set of entries (prefixes)."""

    def __init__(self, entries: Iterable[Any], loss_rate: float, **kwargs: Any) -> None:
        super().__init__(loss_rate, **kwargs)
        self.entries = frozenset(entries)
        if not self.entries:
            raise ValueError("EntryLossFailure needs at least one entry")

    def matches(self, packet: Packet) -> bool:
        return packet.entry in self.entries

    def __repr__(self) -> str:  # pragma: no cover
        return f"EntryLossFailure({len(self.entries)} entries, {self.loss_rate:.2%})"


class UniformLossFailure(GrayFailure):
    """Drops packets uniformly at random, regardless of entry."""

    def matches(self, packet: Packet) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return f"UniformLossFailure({self.loss_rate:.2%})"


class PacketPropertyFailure(GrayFailure):
    """Drops packets matching an arbitrary header/property predicate.

    Examples from Table 1: packets with specific sizes, packets whose IP ID
    equals 0xE000.  ``predicate`` receives the packet.
    """

    def __init__(self, predicate: Callable[[Packet], bool], loss_rate: float,
                 **kwargs: Any) -> None:
        super().__init__(loss_rate, **kwargs)
        self.predicate = predicate

    def matches(self, packet: Packet) -> bool:
        return self.predicate(packet)


class ControlPlaneFailure(GrayFailure):
    """Drops FANcY control messages of selected kinds.

    Used in tests to verify that the counting protocol's retransmission
    logic (§4.1, X=5 attempts) survives lossy control channels and that a
    fully dead reverse channel is reported as a link failure.
    """

    def __init__(
        self,
        loss_rate: float,
        kinds: Iterable[PacketKind] | None = None,
        **kwargs: Any,
    ) -> None:
        kwargs.setdefault("affect_control", True)
        super().__init__(loss_rate, **kwargs)
        self.kinds = frozenset(kinds) if kinds is not None else None

    def matches(self, packet: Packet) -> bool:
        if not packet.kind.is_control:
            return False
        return self.kinds is None or packet.kind in self.kinds


class IntermittentFailure:
    """Wraps a failure with an on/off duty cycle.

    §2.1: "many gray failures are never diagnosed, e.g., because they
    appear intermittently."  The wrapped failure is only active during
    periodic on-windows; off-windows are loss-free.
    """

    def __init__(self, inner: GrayFailure, period_s: float, on_fraction: float,
                 phase_s: float = 0.0) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        if not 0 < on_fraction <= 1:
            raise ValueError("on fraction must be in (0, 1]")
        self.inner = inner
        self.period_s = period_s
        self.on_fraction = on_fraction
        self.phase_s = phase_s

    def in_on_window(self, now: float) -> bool:
        offset = (now - self.phase_s) % self.period_s
        return offset < self.period_s * self.on_fraction

    def __call__(self, packet: Packet, now: float) -> bool:
        if not self.in_on_window(now):
            return False
        return self.inner(packet, now)

    @property
    def drops(self) -> int:
        return self.inner.drops


class CompositeFailure:
    """Combines several failures on one link; a packet is dropped if any
    component drops it.

    Every component is evaluated for every packet — deliberately **not**
    ``any()``-short-circuited.  Short-circuiting would make each
    component's RNG stream (and therefore its ``drops`` counter) depend on
    the *order* of the components: once an earlier failure drops a packet,
    later failures would skip their Bernoulli draw and desynchronise.
    Evaluating all components keeps seeded runs stable under component
    reordering, at the cost that per-component ``drops`` counters may sum
    to more than the number of packets actually lost on the link when
    activation windows overlap (each overlapping component charges the
    drop to itself).  Link-level accounting (``LinkStats``) remains exact.
    """

    def __init__(self, failures: Iterable[GrayFailure]) -> None:
        self.failures = list(failures)

    def __call__(self, packet: Packet, now: float) -> bool:
        dropped = False
        for f in self.failures:
            # No short-circuit: every component must consume its own RNG
            # draw so streams are order-independent (see class docstring).
            if f(packet, now):
                dropped = True
        return dropped

    @property
    def drops(self) -> int:
        return sum(f.drops for f in self.failures)
