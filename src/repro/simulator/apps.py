"""Hosts, flow generation, and measurement sinks.

A :class:`Host` terminates transport flows.  The evaluation topology has a
source host behind the upstream switch generating flows toward entries, and
a sink host behind the downstream switch terminating them; ACKs travel the
reverse path.

:class:`FlowGenerator` reproduces the paper's synthetic workloads (§5.1):
for an entry with size "X bps / N flows per second", it spawns N TCP flows
per second, each pacing at X/N bps with a duration of about one second in
the absence of losses.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from typing import Any

from .engine import Simulator
from .packet import POOL, Packet, PacketKind
from .switch import Node
from .tcp import TcpFlow, TcpSink

__all__ = ["Host", "FlowGenerator", "ThroughputMeter"]


class Host(Node):
    """An endpoint terminating TCP/UDP flows.

    Flows are registered by flow id.  Received DATA packets are handed to
    the matching sink (creating one on demand when ``auto_sink`` is set);
    ACKs are handed to the matching sender.
    """

    def __init__(self, sim: Simulator, name: str, auto_sink: bool = False) -> None:
        super().__init__(sim, name)
        self.flows: dict[int, TcpFlow] = {}
        self.sinks: dict[int, TcpSink] = {}
        self.auto_sink = auto_sink
        self.access_port = 0
        self.packets_received = 0
        self.bytes_received = 0
        #: Access link cache (hosts are single-homed); filled by
        #: attach_link so send() skips the per-packet port lookup.
        self._access_link: Any | None = None
        #: Optional tap on every received packet (for throughput meters).
        self.rx_tap: Callable[[Packet], None] | None = None

    def attach_link(self, port: int, link: Any) -> None:
        super().attach_link(port, link)
        if port == self.access_port:
            self._access_link = link

    def send(self, packet: Packet) -> None:
        """Transmit via the access port (hosts are single-homed).

        ``send`` runs once per originated packet (every TCP data segment
        and ACK), so the access link is cached instead of looked up
        through ``transmit``'s port dict on each call.
        """
        link = self._access_link
        if link is None:  # not wired yet: fall back for the error message
            self.transmit(packet, self.access_port)
            return
        link.send(packet)

    def register_flow(self, flow: TcpFlow) -> None:
        self.flows[flow.flow_id] = flow

    def register_sink(self, sink: TcpSink) -> None:
        self.sinks[sink.flow_id] = sink

    def receive(self, packet: Packet, in_port: int) -> None:
        self.packets_received += 1
        self.bytes_received += packet.size
        if self.rx_tap is not None:
            self.rx_tap(packet)
        if packet.kind is PacketKind.ACK:
            flow = self.flows.get(packet.flow_id)
            if flow is not None:
                flow.on_ack(packet)
        elif packet.kind is PacketKind.DATA:
            sink = self.sinks.get(packet.flow_id)
            if sink is None and self.auto_sink:
                sink = TcpSink(self.sim, self.send, packet.entry, packet.flow_id)
                self.sinks[packet.flow_id] = sink
            if sink is not None:
                sink.on_data(packet)
        # Control packets addressed to a host are ignored.
        # The host is the packet's terminus: hand it back to the pool (a
        # no-op unless pooling is enabled via repro.simulator.fastpath).
        # The rx_tap above ran before release, so taps that *read* packets
        # are always safe; taps that *retain* them must leave the pool off
        # (the default).
        if POOL.enabled:
            packet.release()


class FlowGenerator:
    """Spawns TCP flows for one entry at a configured arrival rate.

    Args:
        sim: event engine.
        source: host originating the flows.
        entry: monitoring entry the flows belong to.
        rate_bps: aggregate entry throughput (paper's "entry size").
        flows_per_second: flow arrival rate; each flow paces at
            ``rate_bps / flows_per_second`` and lasts ≈1 s loss-free.
        flow_duration_s: nominal loss-free flow duration.
        packet_size: data packet size.
        seed: RNG seed for arrival jitter.
        max_packets_per_flow: optional cap to bound simulation cost; the
            experiment runner uses it to scale very fat entries down while
            preserving the flow structure.
    """

    def __init__(
        self,
        sim: Simulator,
        source: Host,
        entry: Any,
        rate_bps: float,
        flows_per_second: float,
        flow_duration_s: float = 1.0,
        packet_size: int = 1500,
        seed: int = 0,
        max_packets_per_flow: int | None = None,
        flow_id_base: int = 0,
    ) -> None:
        if flows_per_second <= 0:
            raise ValueError("flows_per_second must be positive")
        self.sim = sim
        self.source = source
        self.entry = entry
        self.rate_bps = rate_bps
        self.flows_per_second = flows_per_second
        self.flow_duration_s = flow_duration_s
        self.packet_size = packet_size
        self.rng = random.Random(seed)
        self.max_packets_per_flow = max_packets_per_flow
        self._next_flow_id = flow_id_base
        self._running = False
        self.flows_started = 0
        self.active_flows: set[int] = set()

    @property
    def per_flow_rate_bps(self) -> float:
        return self.rate_bps / self.flows_per_second

    @property
    def packets_per_flow(self) -> int:
        per_flow_bits = self.per_flow_rate_bps * self.flow_duration_s
        n = max(1, round(per_flow_bits / (self.packet_size * 8)))
        if self.max_packets_per_flow is not None:
            n = min(n, self.max_packets_per_flow)
        return n

    def start(self) -> None:
        self._running = True
        # Desynchronize entries: first arrival at a random phase of the
        # inter-arrival interval, as the paper randomizes flow start times.
        first = self.rng.random() / self.flows_per_second
        self.sim.schedule(first, self._spawn)

    def stop(self) -> None:
        self._running = False
        for flow_id in list(self.active_flows):
            flow = self.source.flows.get(flow_id)
            if flow is not None:
                flow.stop()
        self.active_flows.clear()

    def _spawn(self) -> None:
        if not self._running:
            return
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        flow = TcpFlow(
            self.sim,
            self.source.send,
            self.entry,
            flow_id,
            total_packets=self.packets_per_flow,
            packet_size=self.packet_size,
            rate_bps=self.per_flow_rate_bps,
            on_complete=self._on_flow_complete,
        )
        self.source.register_flow(flow)
        self.active_flows.add(flow_id)
        self.flows_started += 1
        flow.start()
        self.sim.schedule(1.0 / self.flows_per_second, self._spawn)

    def _on_flow_complete(self, flow: TcpFlow) -> None:
        self.active_flows.discard(flow.flow_id)
        self.source.flows.pop(flow.flow_id, None)


class ThroughputMeter:
    """Bins received bytes into fixed intervals, optionally per entry.

    Attach as a host ``rx_tap``; used to regenerate the Figure 10 bandwidth
    time series.
    """

    def __init__(self, sim: Simulator, bin_s: float = 0.1, per_entry: bool = False) -> None:
        self.sim = sim
        self.bin_s = bin_s
        self.per_entry = per_entry
        self.bins: dict[int, float] = {}
        self.entry_bins: dict[Any, dict[int, float]] = {}

    def __call__(self, packet: Packet) -> None:
        if packet.kind is not PacketKind.DATA:
            return
        idx = int(self.sim.now / self.bin_s)
        self.bins[idx] = self.bins.get(idx, 0.0) + packet.size
        if self.per_entry:
            per = self.entry_bins.setdefault(packet.entry, {})
            per[idx] = per.get(idx, 0.0) + packet.size

    def series_bps(self, until: float | None = None) -> list[tuple[float, float]]:
        """Return ``(bin_start_time, throughput_bps)`` points."""
        if not self.bins:
            return []
        last = int((until if until is not None else self.sim.now) / self.bin_s)
        return [
            (i * self.bin_s, self.bins.get(i, 0.0) * 8 / self.bin_s)
            for i in range(0, last + 1)
        ]

    def entry_series_bps(self, entry: Any) -> list[tuple[float, float]]:
        bins = self.entry_bins.get(entry, {})
        if not bins:
            return []
        last = max(bins)
        return [(i * self.bin_s, bins.get(i, 0.0) * 8 / self.bin_s) for i in range(last + 1)]
