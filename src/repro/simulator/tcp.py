"""Simplified Reno-style TCP for closed-loop experiments.

The evaluation's key transport effects (§5.2) are: (i) under a blackhole,
traffic for an entry collapses to RTO-driven retransmissions at
exponentially increasing intervals, so FANcY may not see packets in three
consecutive counting sessions; (ii) under partial loss, flows keep sending
(fast retransmit / window reduction), so FANcY keeps observing traffic.

This module implements exactly enough TCP to get those dynamics right:
slow start, AIMD congestion avoidance, triple-duplicate-ACK fast
retransmit, and a 200 ms retransmission timeout with exponential backoff
(the paper's stated flow parameters).  Sequence numbers are in packets,
not bytes — the counting logic only sees packet counts anyway.

Fast path: data and ACK packets are allocated through
:meth:`repro.simulator.packet.Packet.acquire`, so enabling the packet
pool (:mod:`repro.simulator.fastpath`) recycles them through the free
list; the sink side of :class:`repro.simulator.apps.Host` releases
consumed packets.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from .engine import EventHandle, Simulator
from .packet import Packet, PacketKind

__all__ = ["TcpFlow", "TcpSink", "DEFAULT_RTO"]

#: Retransmission timeout used throughout the paper's experiments.
DEFAULT_RTO = 0.200

#: Cap on the exponential backoff of the RTO.
MAX_RTO = 8 * DEFAULT_RTO

#: ACK frame size on the wire.
ACK_SIZE = 64


class TcpFlow:
    """Sender-side TCP state for one flow.

    Args:
        sim: event engine.
        send_fn: callable delivering a packet into the network (typically
            ``host.transmit`` bound to the access port).
        entry: monitoring entry (destination prefix) of the flow.
        flow_id: unique flow identifier.
        total_packets: flow length; the flow completes once all are ACKed.
        packet_size: data packet size in bytes.
        rate_bps: application pacing rate; the sender never exceeds it even
            if the congestion window would allow.
        rto: base retransmission timeout.
        on_complete: optional callback fired when the flow finishes.
    """

    def __init__(
        self,
        sim: Simulator,
        send_fn: Callable[[Packet], None],
        entry: Any,
        flow_id: int,
        total_packets: int,
        packet_size: int = 1500,
        rate_bps: float = 1e6,
        rto: float = DEFAULT_RTO,
        on_complete: Callable[["TcpFlow"], None] | None = None,
    ) -> None:
        if total_packets <= 0:
            raise ValueError("flow must carry at least one packet")
        self.sim = sim
        self.send_fn = send_fn
        self.entry = entry
        self.flow_id = flow_id
        self.total_packets = total_packets
        self.packet_size = packet_size
        self.rate_bps = rate_bps
        self.base_rto = rto
        self.on_complete = on_complete

        self.cwnd = 2.0
        self.ssthresh = 64.0
        self.next_seq = 0          # next new packet to send
        self.high_acked = 0        # cumulative ACK (next expected by peer)
        self.dup_acks = 0
        self.rto = rto
        self.completed = False
        self.started_at: float | None = None
        self.completed_at: float | None = None
        self.packets_sent = 0
        self.retransmissions = 0
        self._pacing_interval = packet_size * 8 / rate_bps if rate_bps else 0.0
        self._rto_timer: EventHandle | None = None
        #: Authoritative expiry instant; the pending timer event may fire
        #: earlier (it is re-armed lazily, see :meth:`_arm_rto`).
        self._rto_deadline = 0.0
        self._pacing_timer: EventHandle | None = None
        self._in_recovery = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self.started_at = self.sim.now
        self._try_send()

    def stop(self) -> None:
        """Abort the flow (used at experiment teardown)."""
        self.completed = True
        self._cancel_timer(self._rto_timer)
        self._cancel_timer(self._pacing_timer)
        self._rto_timer = None
        self._pacing_timer = None

    @staticmethod
    def _cancel_timer(timer: EventHandle | None) -> None:
        if timer is not None:
            timer.cancel()

    # -- sending ------------------------------------------------------------

    def _window_allows(self) -> bool:
        # Duplicate ACKs inflate the window (limited transmit / NewReno
        # inflation) so the flow keeps the ACK clock alive during loss.
        in_flight = self.next_seq - self.high_acked
        return in_flight < self.cwnd + self.dup_acks

    def _try_send(self) -> None:
        self._pacing_timer = None
        if self.completed:
            return
        if self.next_seq < self.total_packets and self._window_allows():
            self._emit(self.next_seq)
            self.next_seq += 1
            if self.next_seq < self.total_packets:
                self._pacing_timer = self.sim.schedule(self._pacing_interval, self._try_send)

    def _emit(self, seq: int, retransmission: bool = False) -> None:
        packet = Packet.acquire(
            PacketKind.DATA,
            self.entry,
            self.packet_size,
            flow_id=self.flow_id,
            seq=seq,
            created_at=self.sim.now,
        )
        self.packets_sent += 1
        if retransmission:
            self.retransmissions += 1
        self.send_fn(packet)
        if self._rto_timer is None:
            self._arm_rto()

    def _arm_rto(self) -> None:
        """Arm — or lazily extend — the retransmission timer.

        Cancel-and-reschedule on every advancing ACK would churn one
        dead heap handle per ACK (the single biggest source of cancelled
        events in a TCP-heavy run).  Instead the authoritative deadline
        is stored here, and a pending timer that fires early simply
        re-arms itself at the current deadline without side effects.
        The observable firing semantics are unchanged: a timeout is
        acted on exactly at ``last-arm time + rto``.
        """
        self._rto_deadline = self.sim.now + self.rto
        if self._rto_timer is None:
            self._rto_timer = self.sim.schedule(self.rto, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_timer = None
        if self.completed or self.high_acked >= self.total_packets:
            return
        if self.sim.now < self._rto_deadline:
            # ACKs moved the deadline while this event was pending:
            # lazy re-arm at the authoritative instant, no timeout.
            self._rto_timer = self.sim.schedule_at(self._rto_deadline, self._on_rto)
            return
        # Timeout: multiplicative backoff, collapse window, go-back-N from
        # the cumulative ACK point (retransmit just the first missing one;
        # the rest follow as ACKs advance).
        self.ssthresh = max(self.cwnd / 2, 2.0)
        self.cwnd = 1.0
        self.rto = min(self.rto * 2, MAX_RTO)
        self.dup_acks = 0
        self._in_recovery = False
        self.next_seq = max(self.high_acked + 1, self.next_seq)
        # _emit arms the (backed-off) RTO timer since none is pending.
        self._emit(self.high_acked, retransmission=True)

    # -- receiving ----------------------------------------------------------

    def on_ack(self, packet: Packet) -> None:
        """Process a cumulative ACK (``packet.ack`` = next expected seq)."""
        if self.completed:
            return
        ack = packet.ack
        if ack > self.high_acked:
            self.high_acked = ack
            self.dup_acks = 0
            self.rto = self.base_rto
            if self._in_recovery:
                self.cwnd = self.ssthresh
                self._in_recovery = False
            elif self.cwnd < self.ssthresh:
                self.cwnd += 1.0          # slow start
            else:
                self.cwnd += 1.0 / self.cwnd  # congestion avoidance
            if self.high_acked >= self.total_packets:
                self._finish()
                return
            self._arm_rto()
            if self._pacing_timer is None:
                self._try_send()
        elif ack == self.high_acked:
            self.dup_acks += 1
            if self.dup_acks == 3 and not self._in_recovery:
                # Fast retransmit + window halving.
                self.ssthresh = max(self.cwnd / 2, 2.0)
                self.cwnd = self.ssthresh
                self._in_recovery = True
                self._emit(self.high_acked, retransmission=True)
            elif self._pacing_timer is None:
                # Limited transmit: dupacks may open the inflated window.
                self._try_send()

    def _finish(self) -> None:
        self.completed = True
        self.completed_at = self.sim.now
        self._cancel_timer(self._rto_timer)
        self._cancel_timer(self._pacing_timer)
        self._rto_timer = None
        self._pacing_timer = None
        if self.on_complete is not None:
            self.on_complete(self)

    @property
    def duration(self) -> float | None:
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class TcpSink:
    """Receiver-side state: cumulative ACK generation with an OOO buffer."""

    def __init__(
        self,
        sim: Simulator,
        send_fn: Callable[[Packet], None],
        entry: Any,
        flow_id: int,
    ) -> None:
        self.sim = sim
        self.send_fn = send_fn
        self.entry = entry
        self.flow_id = flow_id
        self.next_expected = 0
        self.out_of_order: set[int] = set()
        self.packets_received = 0
        self.bytes_received = 0

    def on_data(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.size
        seq = packet.seq
        if seq == self.next_expected:
            self.next_expected += 1
            while self.next_expected in self.out_of_order:
                self.out_of_order.discard(self.next_expected)
                self.next_expected += 1
        elif seq > self.next_expected:
            self.out_of_order.add(seq)
        self._send_ack()

    def _send_ack(self) -> None:
        ack = Packet.acquire(
            PacketKind.ACK,
            self.entry,
            ACK_SIZE,
            flow_id=self.flow_id,
            ack=self.next_expected,
            created_at=self.sim.now,
            reverse=True,
        )
        self.send_fn(ack)
