"""Point-to-point links with bandwidth, delay and gray-failure injection.

A :class:`Link` is unidirectional: it serializes packets at a configured
bandwidth, applies the propagation delay, and delivers to the receiving
node.  Gray failures are injected *on the wire*, i.e. after the sender has
finished transmitting (hence after any upstream egress counting) and before
the receiver sees the packet (hence before downstream ingress counting) —
matching the counter placement rationale of §3.

Congestion losses are intentionally *not* modelled here: tail-drop happens
in the switch traffic manager (see :mod:`repro.simulator.switch`), upstream
of the FANcY egress counters, exactly as in the paper.

Fast path (fused pipeline): in the reference path every packet costs two
heap events — ``_finish_tx`` at the end of serialization, ``_deliver``
after propagation.  When the link is *uncontended* (idle, both queues
empty) and uninstrumented (no telemetry, no tracer), the two are fused
into a single event at ``(now + tx_time) + delay`` that performs the
depart accounting and the delivery in one callback; the wire loss is
drawn at *send* time with the pinned departure timestamp.  Drawing at
send time matters: it precedes every later packet's departure event, so
per-link RNG draws stay in FIFO-by-departure order and the streams are
identical to the reference path (drawing inside the arrival event would
invert the order against packets queued behind the fused one).  Under
contention the link falls back to the full pipeline, with a "kick" event
at the in-flight packet's departure time so queued packets start
serializing at exactly the reference instant.  The only observable
difference is *bookkeeping latency*: ``stats`` for a fused packet are
updated at delivery time (or at send time when it is dropped) rather
than at departure time — the totals agree whenever the wire is quiet,
e.g. after a drain.

Fast path (burst coalescing): *instant* links (``bandwidth_bps=None``,
the access links) have no serialization, so a burst of sends inside one
callback — a UDP train, a TCP cwnd's worth of segments — yields several
delivery events at exactly ``now + delay``.  In fused mode the link
coalesces such a burst into one event that delivers every packet in
order.  The engine serves equal timestamps FIFO, so per-link delivery
instants and order are identical to the reference path; wire-loss draws
are unaffected because the instant path draws at send time either way.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from typing import Any, Protocol

from .engine import Simulator
from .fastpath import CONFIG
from .packet import Packet, PacketKind

__all__ = [
    "Receiver",
    "Link",
    "LinkStats",
    "connect_duplex",
    "CHAOS_PASS",
    "CHAOS_DROP",
    "CHAOS_CONSUMED",
]

#: Verdicts a chaos model (see :mod:`repro.chaos`) may return from its
#: ``on_wire(packet, depart_t, link)`` hook.  Plain ints so the link's hot
#: path stays branch-cheap and the chaos package can import them without
#: the simulator depending on chaos (layering: chaos -> simulator only).
CHAOS_PASS = 0  #: deliver normally
CHAOS_DROP = 1  #: drop on the wire (accounted as ``dropped_chaos``)
CHAOS_CONSUMED = 2  #: chaos took over delivery (reorder/duplicate/…)

#: Control *responses* riding the strict-priority class (see Link.send);
#: hoisted to module level so the per-packet membership test does not
#: rebuild the tuple (or re-resolve the enum attributes) on every send.
_PRIORITY_KINDS = (PacketKind.FANCY_START_ACK, PacketKind.FANCY_REPORT)


class Receiver(Protocol):
    """Anything that can accept packets from a link."""

    def receive(self, packet: Packet, in_port: int) -> None: ...


class LinkStats:
    """Per-link counters for delivered and dropped traffic."""

    __slots__ = ("tx_packets", "tx_bytes", "delivered", "dropped_failure",
                 "dropped_chaos")

    def __init__(self) -> None:
        self.tx_packets = 0
        self.tx_bytes = 0
        self.delivered = 0
        self.dropped_failure = 0
        self.dropped_chaos = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "tx_packets": self.tx_packets,
            "tx_bytes": self.tx_bytes,
            "delivered": self.delivered,
            "dropped_failure": self.dropped_failure,
            "dropped_chaos": self.dropped_chaos,
        }


class Link:
    """A unidirectional link.

    Args:
        sim: the event engine.
        dst: receiving node.
        dst_port: port index presented to the receiver.
        bandwidth_bps: link rate in bits/second; ``None`` disables the
            serialization model (packets depart instantly), useful for the
            analytical experiments where queueing is irrelevant.
        delay_s: one-way propagation delay in seconds.
        loss_model: optional callable ``(packet, now) -> bool``; returning
            True drops the packet on the wire (a gray failure).
        fused: enable the fused single-event pipeline on uncontended
            sends; ``None`` (default) snapshots
            :data:`repro.simulator.fastpath.CONFIG` at construction time.
            Forced off while telemetry is attached or a
            :class:`~repro.simulator.tracing.PacketTracer` wraps the link.
        telemetry: optional :class:`repro.telemetry.Telemetry`; when set,
            the link maintains ``link_tx_packets_total`` /
            ``link_tx_bytes_total`` / ``link_delivered_total`` /
            ``link_dropped_total{reason=failure}`` counters and the
            ``link_queue_depth`` gauge, all labelled ``link=<name>``.
    """

    def __init__(
        self,
        sim: Simulator,
        dst: Receiver,
        dst_port: int,
        bandwidth_bps: float | None = 10e9,
        delay_s: float = 0.010,
        loss_model: Callable[[Packet, float], bool] | None = None,
        name: str = "",
        telemetry: Any | None = None,
        fused: bool | None = None,
    ) -> None:
        self.sim = sim
        self.dst = dst
        self.dst_port = dst_port
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.loss_model = loss_model
        self.name = name or f"link->{dst_port}"
        self.stats = LinkStats()
        self._tx_queue: deque[Packet] = deque()
        self._ctrl_queue: deque[Packet] = deque()
        self._transmitting = False
        #: Departure time of the in-flight *fused* packet; the link is
        #: busy until then even though no _finish_tx event is pending.
        self._busy_until = 0.0
        self._kick_pending = False
        #: Fused events in flight (observability for tests/benchmarks).
        self.fused_events = 0
        #: Open same-instant delivery on an instant link (fused mode):
        #: the pending delivery's event handle and arrival timestamp.  A
        #: second send with the same arrival instant converts the handle
        #: into a burst delivery in place (see :meth:`send`).
        self._burst_handle: Any | None = None
        self._burst_t = -1.0
        #: Multi-packet bursts coalesced so far (observability).
        self.coalesced_bursts = 0
        self.fused = CONFIG.fused_links if fused is None else fused
        #: Optional chaos model (see :mod:`repro.chaos.perturbations`):
        #: a ``on_wire(packet, depart_t, link) -> int`` hook consulted
        #: *after* the loss model in every send path, returning one of
        #: :data:`CHAOS_PASS` / :data:`CHAOS_DROP` / :data:`CHAOS_CONSUMED`.
        #: Set post-construction (``link.chaos = model``) so the simulator
        #: never imports the chaos package.  Chaos draws happen at the
        #: pinned departure timestamp, the same discipline as wire-loss
        #: draws, so fused and reference pipelines see identical streams.
        self.chaos: Any | None = None
        self._telemetry = telemetry
        if telemetry is not None:
            self.fused = False  # instrumented links take the full pipeline
            metrics = telemetry.metrics
            self._m_tx: Any = metrics.counter(
                "link_tx_packets_total", "Packets that left the sender", link=self.name)
            self._m_tx_bytes = metrics.counter(
                "link_tx_bytes_total", "Bytes that left the sender", link=self.name)
            self._m_delivered = metrics.counter(
                "link_delivered_total", "Packets delivered to the receiver",
                link=self.name)
            self._m_dropped = metrics.counter(
                "link_dropped_total", "Packets dropped on the wire",
                link=self.name, reason="failure")
            self._m_dropped_chaos = metrics.counter(
                "link_dropped_total", "Packets dropped on the wire",
                link=self.name, reason="chaos")
            self._m_depth = metrics.gauge(
                "link_queue_depth", "Serialization-queue occupancy (packets)",
                link=self.name)

    def send(self, packet: Packet) -> None:
        """Enqueue ``packet`` for transmission.

        Control *responses* (StartACK, Report) ride a strict-priority
        class, modelling the control-traffic QoS class switches give
        protocol packets, so FANcY's reverse channel does not starve
        behind congested data queues.  Start and Stop stay in the FIFO
        data class on purpose: the counting protocol's correctness relies
        on Stop never overtaking the tagged data packets it delimits
        (§4.1's per-session consistency).
        """
        if self.bandwidth_bps is None:
            # Serialization disabled (access links): inline the depart
            # accounting instead of paying the _depart frame — this runs
            # once per packet on every host-to-switch hop.
            stats = self.stats
            stats.tx_packets += 1
            stats.tx_bytes += packet.size
            if self._telemetry is not None:
                self._m_tx.inc()
                self._m_tx_bytes.inc(packet.size)
            if self.loss_model is not None and self.loss_model(packet, self.sim.now):
                stats.dropped_failure += 1
                if self._telemetry is not None:
                    self._m_dropped.inc()
                return
            if self.chaos is not None:
                # Instant links depart at send time, so the pinned depart
                # timestamp is simply ``now`` in both pipelines.
                verdict = self.chaos.on_wire(packet, self.sim.now, self)
                if verdict:
                    if verdict == CHAOS_DROP:
                        stats.dropped_chaos += 1
                        if self._telemetry is not None:
                            self._m_dropped_chaos.inc()
                    return
            if self.fused:
                # Same-instant burst coalescing: a UDP train (or any
                # burst of sends from one callback) produces several
                # deliveries at exactly now + delay.  The engine serves
                # equal timestamps FIFO, so one event delivering the
                # whole burst in order is indistinguishable from B
                # per-packet events — same instants, same per-link
                # order — at one heap entry instead of B.  Loss was
                # already drawn above, at send time.
                #
                # The coalescing is *retroactive* so a lone packet (the
                # common case on TCP access links) pays only two stores:
                # the first send schedules a plain _deliver and remembers
                # its handle; a second send with the same arrival instant
                # rewrites that pending handle in place into a burst
                # delivery and appends.  Delivery events seal the burst
                # (reset _burst_t) so zero-delay sends from a later
                # callback at the same timestamp open a fresh one.
                arrival_t = self.sim.now + self.delay_s
                if self._burst_t == arrival_t:
                    handle = self._burst_handle
                    head = handle.args[0]
                    if head.__class__ is list:  # already a burst
                        head.append(packet)
                    else:
                        handle.callback = self._deliver_burst
                        handle.args = ([head, packet],)
                        self.coalesced_bursts += 1
                    return
                self._burst_handle = self.sim.schedule(
                    self.delay_s, self._deliver, packet)
                self._burst_t = arrival_t
                return
            self.sim.schedule(self.delay_s, self._deliver, packet)
            return
        now = self.sim.now
        if (self.fused
                and not self._transmitting
                and now >= self._busy_until
                and not self._tx_queue
                and not self._ctrl_queue):
            # Uncontended fast path: one event does serialize + propagate
            # + deliver.  The departure timestamp is pinned now so the
            # loss model sees the exact reference-path instant, and the
            # arrival time is computed as (now + tx) + delay — the same
            # float association order as the two-event reference path.
            bandwidth = self.bandwidth_bps
            assert bandwidth is not None  # the instant-link branch returned above
            tx_time = packet.size * 8 / bandwidth
            depart_t = now + tx_time
            self._busy_until = depart_t
            self.fused_events += 1
            # The wire-loss draw happens *here*, at send time, with the
            # pinned departure timestamp.  Drawing inside the arrival
            # event (depart + delay) would invert the per-link RNG order
            # whenever a packet queued behind this one departs within the
            # propagation delay — its _depart draw would fire first.
            # Send time precedes every later packet's departure, so the
            # draw sequence stays FIFO-by-departure, as on the reference
            # path.
            if self.loss_model is not None and self.loss_model(packet, depart_t):
                stats = self.stats
                stats.tx_packets += 1
                stats.tx_bytes += packet.size
                stats.dropped_failure += 1
                # Fused implies untraced/untelemetried: nobody can
                # observe the dropped packet, so recycle it immediately.
                packet.release()
                return
            if self.chaos is not None:
                # Same pinned-departure discipline as the loss draw above:
                # chaos RNG streams stay FIFO-by-departure and identical
                # to the reference pipeline.
                verdict = self.chaos.on_wire(packet, depart_t, self)
                if verdict:
                    stats = self.stats
                    stats.tx_packets += 1
                    stats.tx_bytes += packet.size
                    if verdict == CHAOS_DROP:
                        stats.dropped_chaos += 1
                        packet.release()
                    return
            self.sim.schedule_at(depart_t + self.delay_s, self._fused_arrive,
                                 packet, depart_t)
            return
        if packet.kind in _PRIORITY_KINDS:
            self._ctrl_queue.append(packet)
        else:
            self._tx_queue.append(packet)
        self._update_depth()
        if not self._transmitting:
            if now < self._busy_until:
                # A fused packet is in flight; resume FIFO service at the
                # exact instant its serialization finishes.
                if not self._kick_pending:
                    self._kick_pending = True
                    self.sim.schedule(self._busy_until - now, self._kick)
            else:
                self._start_next()

    def _kick(self) -> None:
        """Resume queue service when an in-flight fused packet departs."""
        self._kick_pending = False
        if not self._transmitting:
            self._start_next()

    def _fused_arrive(self, packet: Packet, depart_t: float) -> None:
        """Fused depart + deliver for an uncontended, not-dropped packet.

        The wire-loss draw already happened at send time (see
        :meth:`send`); ``depart_t`` is kept in the signature so traces of
        scheduled events remain self-describing.
        """
        stats = self.stats
        stats.tx_packets += 1
        stats.tx_bytes += packet.size
        stats.delivered += 1
        self.dst.receive(packet, self.dst_port)

    def _start_next(self) -> None:
        if self._ctrl_queue:
            packet = self._ctrl_queue.popleft()
        elif self._tx_queue:
            packet = self._tx_queue.popleft()
        else:
            self._transmitting = False
            return
        self._transmitting = True
        self._update_depth()
        bandwidth = self.bandwidth_bps
        assert bandwidth is not None  # queued packets imply a serializing link
        tx_time = packet.size * 8 / bandwidth
        self.sim.schedule(tx_time, self._finish_tx, packet)

    def _finish_tx(self, packet: Packet) -> None:
        self._depart(packet)
        self._start_next()

    def _depart(self, packet: Packet) -> None:
        """Packet left the sender; apply the wire loss model then propagate."""
        self.stats.tx_packets += 1
        self.stats.tx_bytes += packet.size
        if self._telemetry is not None:
            self._m_tx.inc()
            self._m_tx_bytes.inc(packet.size)
        if self.loss_model is not None and self.loss_model(packet, self.sim.now):
            self.stats.dropped_failure += 1
            if self._telemetry is not None:
                self._m_dropped.inc()
            return
        if self.chaos is not None:
            # ``sim.now`` *is* the departure instant on this path, so the
            # chaos model sees the exact timestamp the fused pipeline pins.
            verdict = self.chaos.on_wire(packet, self.sim.now, self)
            if verdict:
                if verdict == CHAOS_DROP:
                    self.stats.dropped_chaos += 1
                    if self._telemetry is not None:
                        self._m_dropped_chaos.inc()
                return
        self.sim.schedule(self.delay_s, self._deliver, packet)

    def _deliver_burst(self, burst: list[Packet]) -> None:
        """Deliver a coalesced same-instant burst (instant links, fused).

        Never runs instrumented: telemetry and tracing force ``fused``
        off, which routes sends through the per-packet :meth:`_deliver`.
        """
        self._burst_t = -1.0  # seal: no more appends to this burst
        stats = self.stats
        dst = self.dst
        port = self.dst_port
        for packet in burst:
            stats.delivered += 1
            dst.receive(packet, port)

    def _deliver(self, packet: Packet) -> None:
        # Seal any open burst tracking: with zero delay a send from a
        # later event at this same timestamp must schedule afresh rather
        # than append behind an already-fired delivery.  (For bandwidth
        # links _burst_t is always -1 and the store is inert.)
        self._burst_t = -1.0
        self.stats.delivered += 1
        if self._telemetry is not None:
            self._m_delivered.inc()
        self.dst.receive(packet, self.dst_port)

    def _update_depth(self) -> None:
        """Single point updating the telemetry queue-depth gauge."""
        if self._telemetry is not None:
            self._m_depth.set(len(self._tx_queue) + len(self._ctrl_queue))

    @property
    def queue_len(self) -> int:
        """Total serialization-queue occupancy, data *and* control class.

        Consumed by the switch TM for tail-drop admission and by
        telemetry; both classes occupy the same physical port buffer.
        """
        return len(self._tx_queue) + len(self._ctrl_queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, delay={self.delay_s * 1e3:.3f}ms)"


def connect_duplex(
    sim: Simulator,
    node_a: Any,
    port_a: int,
    node_b: Any,
    port_b: int,
    bandwidth_bps: float | None = 10e9,
    delay_s: float = 0.010,
    loss_model_ab: Callable[[Packet, float], bool] | None = None,
    loss_model_ba: Callable[[Packet, float], bool] | None = None,
    telemetry: Any | None = None,
) -> tuple[Link, Link]:
    """Create a bidirectional connection as a pair of unidirectional links.

    Nodes must expose ``attach_link(port, link)`` and ``receive(packet,
    in_port)``; every node in :mod:`repro.simulator` does.
    """
    ab = Link(sim, node_b, port_b, bandwidth_bps, delay_s, loss_model_ab,
              name=f"{getattr(node_a, 'name', 'a')}->{getattr(node_b, 'name', 'b')}",
              telemetry=telemetry)
    ba = Link(sim, node_a, port_a, bandwidth_bps, delay_s, loss_model_ba,
              name=f"{getattr(node_b, 'name', 'b')}->{getattr(node_a, 'name', 'a')}",
              telemetry=telemetry)
    node_a.attach_link(port_a, ab)
    node_b.attach_link(port_b, ba)
    return ab, ba
