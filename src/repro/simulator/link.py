"""Point-to-point links with bandwidth, delay and gray-failure injection.

A :class:`Link` is unidirectional: it serializes packets at a configured
bandwidth, applies the propagation delay, and delivers to the receiving
node.  Gray failures are injected *on the wire*, i.e. after the sender has
finished transmitting (hence after any upstream egress counting) and before
the receiver sees the packet (hence before downstream ingress counting) —
matching the counter placement rationale of §3.

Congestion losses are intentionally *not* modelled here: tail-drop happens
in the switch traffic manager (see :mod:`repro.simulator.switch`), upstream
of the FANcY egress counters, exactly as in the paper.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional, Protocol

from .engine import Simulator
from .packet import Packet, PacketKind

__all__ = ["Receiver", "Link", "LinkStats", "connect_duplex"]


class Receiver(Protocol):
    """Anything that can accept packets from a link."""

    def receive(self, packet: Packet, in_port: int) -> None: ...


class LinkStats:
    """Per-link counters for delivered and dropped traffic."""

    __slots__ = ("tx_packets", "tx_bytes", "delivered", "dropped_failure")

    def __init__(self) -> None:
        self.tx_packets = 0
        self.tx_bytes = 0
        self.delivered = 0
        self.dropped_failure = 0

    def as_dict(self) -> dict:
        return {
            "tx_packets": self.tx_packets,
            "tx_bytes": self.tx_bytes,
            "delivered": self.delivered,
            "dropped_failure": self.dropped_failure,
        }


class Link:
    """A unidirectional link.

    Args:
        sim: the event engine.
        dst: receiving node.
        dst_port: port index presented to the receiver.
        bandwidth_bps: link rate in bits/second; ``None`` disables the
            serialization model (packets depart instantly), useful for the
            analytical experiments where queueing is irrelevant.
        delay_s: one-way propagation delay in seconds.
        loss_model: optional callable ``(packet, now) -> bool``; returning
            True drops the packet on the wire (a gray failure).
        telemetry: optional :class:`repro.telemetry.Telemetry`; when set,
            the link maintains ``link_tx_packets_total`` /
            ``link_tx_bytes_total`` / ``link_delivered_total`` /
            ``link_dropped_total{reason=failure}`` counters and the
            ``link_queue_depth`` gauge, all labelled ``link=<name>``.
    """

    def __init__(
        self,
        sim: Simulator,
        dst: Receiver,
        dst_port: int,
        bandwidth_bps: Optional[float] = 10e9,
        delay_s: float = 0.010,
        loss_model: Optional[Callable[[Packet, float], bool]] = None,
        name: str = "",
        telemetry: Optional[Any] = None,
    ):
        self.sim = sim
        self.dst = dst
        self.dst_port = dst_port
        self.bandwidth_bps = bandwidth_bps
        self.delay_s = delay_s
        self.loss_model = loss_model
        self.name = name or f"link->{dst_port}"
        self.stats = LinkStats()
        self._tx_queue: deque[Packet] = deque()
        self._ctrl_queue: deque[Packet] = deque()
        self._transmitting = False
        self._telemetry = telemetry
        if telemetry is not None:
            metrics = telemetry.metrics
            self._m_tx = metrics.counter(
                "link_tx_packets_total", "Packets that left the sender", link=self.name)
            self._m_tx_bytes = metrics.counter(
                "link_tx_bytes_total", "Bytes that left the sender", link=self.name)
            self._m_delivered = metrics.counter(
                "link_delivered_total", "Packets delivered to the receiver",
                link=self.name)
            self._m_dropped = metrics.counter(
                "link_dropped_total", "Packets dropped on the wire",
                link=self.name, reason="failure")
            self._m_depth = metrics.gauge(
                "link_queue_depth", "Serialization-queue occupancy (packets)",
                link=self.name)

    def send(self, packet: Packet) -> None:
        """Enqueue ``packet`` for transmission.

        Control *responses* (StartACK, Report) ride a strict-priority
        class, modelling the control-traffic QoS class switches give
        protocol packets, so FANcY's reverse channel does not starve
        behind congested data queues.  Start and Stop stay in the FIFO
        data class on purpose: the counting protocol's correctness relies
        on Stop never overtaking the tagged data packets it delimits
        (§4.1's per-session consistency).
        """
        if self.bandwidth_bps is None:
            self._depart(packet)
            return
        if packet.kind in (PacketKind.FANCY_START_ACK, PacketKind.FANCY_REPORT):
            self._ctrl_queue.append(packet)
        else:
            self._tx_queue.append(packet)
        if self._telemetry is not None:
            self._m_depth.set(len(self._tx_queue) + len(self._ctrl_queue))
        if not self._transmitting:
            self._start_next()

    def _start_next(self) -> None:
        if self._ctrl_queue:
            packet = self._ctrl_queue.popleft()
        elif self._tx_queue:
            packet = self._tx_queue.popleft()
        else:
            self._transmitting = False
            return
        self._transmitting = True
        tx_time = packet.size * 8 / self.bandwidth_bps
        self.sim.schedule(tx_time, self._finish_tx, packet)

    def _finish_tx(self, packet: Packet) -> None:
        self._depart(packet)
        self._start_next()

    def _depart(self, packet: Packet) -> None:
        """Packet left the sender; apply the wire loss model then propagate."""
        self.stats.tx_packets += 1
        self.stats.tx_bytes += packet.size
        if self._telemetry is not None:
            self._m_tx.inc()
            self._m_tx_bytes.inc(packet.size)
            self._m_depth.set(len(self._tx_queue) + len(self._ctrl_queue))
        if self.loss_model is not None and self.loss_model(packet, self.sim.now):
            self.stats.dropped_failure += 1
            if self._telemetry is not None:
                self._m_dropped.inc()
            return
        self.sim.schedule(self.delay_s, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        self.stats.delivered += 1
        if self._telemetry is not None:
            self._m_delivered.inc()
        self.dst.receive(packet, self.dst_port)

    @property
    def queue_len(self) -> int:
        return len(self._tx_queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, delay={self.delay_s * 1e3:.3f}ms)"


def connect_duplex(
    sim: Simulator,
    node_a: Any,
    port_a: int,
    node_b: Any,
    port_b: int,
    bandwidth_bps: Optional[float] = 10e9,
    delay_s: float = 0.010,
    loss_model_ab: Optional[Callable[[Packet, float], bool]] = None,
    loss_model_ba: Optional[Callable[[Packet, float], bool]] = None,
    telemetry: Optional[Any] = None,
) -> tuple[Link, Link]:
    """Create a bidirectional connection as a pair of unidirectional links.

    Nodes must expose ``attach_link(port, link)`` and ``receive(packet,
    in_port)``; every node in :mod:`repro.simulator` does.
    """
    ab = Link(sim, node_b, port_b, bandwidth_bps, delay_s, loss_model_ab,
              name=f"{getattr(node_a, 'name', 'a')}->{getattr(node_b, 'name', 'b')}",
              telemetry=telemetry)
    ba = Link(sim, node_a, port_a, bandwidth_bps, delay_s, loss_model_ba,
              name=f"{getattr(node_b, 'name', 'b')}->{getattr(node_a, 'name', 'a')}",
              telemetry=telemetry)
    node_a.attach_link(port_a, ab)
    node_b.attach_link(port_b, ba)
    return ab, ba
