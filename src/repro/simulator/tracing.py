"""Packet tracing — the ns-3-style ascii-trace facility.

Attach a :class:`PacketTracer` to links and switches to record per-packet
events (enqueue/transmit/drop/deliver, ingress/forward) with timestamps.
Used for debugging protocol interactions and by tests that need to assert
on exact packet orderings; deliberately opt-in, since tracing every packet
of a large experiment is expensive.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Any

from .engine import Simulator
from .link import Link
from .packet import Packet, PacketKind
from .switch import Switch

__all__ = ["TraceEvent", "PacketTracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded packet event."""

    time: float
    location: str
    event: str          # "tx" | "drop" | "deliver" | "ingress" | "egress"
    pid: int
    kind: str
    entry: Any
    size: int
    tag: tuple[int, ...] | None

    def format(self) -> str:
        tag = f" tag={self.tag}" if self.tag is not None else ""
        return (f"{self.time:.6f} {self.location:<16} {self.event:<8} "
                f"#{self.pid} {self.kind} entry={self.entry!r} "
                f"size={self.size}{tag}")


class PacketTracer:
    """Collects :class:`TraceEvent` records from instrumented components.

    Args:
        sim: event engine (timestamps).
        predicate: optional packet filter; only matching packets are
            recorded (e.g. ``lambda p: p.kind.is_control``).
        max_events: hard cap to bound memory in long runs.
        ring_buffer: when True, keep the most *recent* ``max_events``
            records instead of the first ones — the right mode when a
            bug manifests late in a long run.  Either way,
            ``dropped_records`` counts suppressed/evicted events and
            :meth:`summary` / :meth:`dump` carry an explicit
            truncation marker.
    """

    def __init__(
        self,
        sim: Simulator,
        predicate: Callable[[Packet], bool] | None = None,
        max_events: int = 100_000,
        ring_buffer: bool = False,
    ) -> None:
        self.sim = sim
        self.predicate = predicate
        self.max_events = max_events
        self.ring_buffer = ring_buffer
        self.events: list[TraceEvent] | deque[TraceEvent] = (
            deque(maxlen=max_events) if ring_buffer else []
        )
        self.dropped_records = 0

    # -- recording ----------------------------------------------------------

    def record(self, location: str, event: str, packet: Packet) -> None:
        if self.predicate is not None and not self.predicate(packet):
            return
        if len(self.events) >= self.max_events:
            self.dropped_records += 1
            if not self.ring_buffer:
                return
            # deque(maxlen=...) evicts the oldest record on append.
        self.events.append(TraceEvent(
            time=self.sim.now,
            location=location,
            event=event,
            pid=packet.pid,
            kind=packet.kind.value,
            entry=packet.entry,
            size=packet.size,
            tag=packet.tag,
        ))

    # -- instrumentation ------------------------------------------------------

    def attach_link(self, link: Link) -> None:
        """Record transmit/drop/deliver on a link (wraps its internals).

        Tracing needs the full serialize→propagate→deliver pipeline, so
        the link's fused fast path is disabled for the link's lifetime.
        """
        link.fused = False  # the fused event would bypass _depart/_deliver
        original_depart = link._depart
        original_deliver = link._deliver

        def traced_depart(packet: Packet) -> None:
            delivered_before = link.stats.dropped_failure
            original_depart(packet)
            if link.stats.dropped_failure > delivered_before:
                self.record(link.name, "drop", packet)
            else:
                self.record(link.name, "tx", packet)

        def traced_deliver(packet: Packet) -> None:
            self.record(link.name, "deliver", packet)
            original_deliver(packet)

        # Deliberate wrapper injection over the link's internal pipeline;
        # mypy (rightly) flags method assignment, but this is the tracer's
        # whole mechanism and is scoped to the traced link instance.
        link._depart = traced_depart  # type: ignore[method-assign]
        link._deliver = traced_deliver  # type: ignore[method-assign]

    def attach_switch(self, switch: Switch, ports: Iterable[int] | None = None) -> None:
        """Record ingress events on a switch (per port, before hooks)."""
        watch = set(ports) if ports is not None else None

        def hook_factory(port: int) -> Callable[[Packet, int], bool]:
            def hook(packet: Packet, _in_port: int) -> bool:
                self.record(switch.name, "ingress", packet)
                return True
            return hook

        target_ports = watch if watch is not None else set(switch.links)
        for port in target_ports:
            switch.add_ingress_hook(port, hook_factory(port), front=True)

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def filter(self, event: str | None = None, entry: Any = None,
               kind: PacketKind | None = None) -> list[TraceEvent]:
        out: list[TraceEvent] = []
        for ev in self.events:
            if event is not None and ev.event != event:
                continue
            if entry is not None and ev.entry != entry:
                continue
            if kind is not None and ev.kind != kind.value:
                continue
            out.append(ev)
        return out

    def packet_journey(self, pid: int) -> list[TraceEvent]:
        """All events of one packet, time-ordered."""
        return sorted((e for e in self.events if e.pid == pid),
                      key=lambda e: e.time)

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for ev in self.events:
            counts[ev.event] = counts.get(ev.event, 0) + 1
        if self.dropped_records:
            counts["truncated"] = self.dropped_records
        return counts

    def dump(self, limit: int = 50) -> str:
        head = list(self.events)[:limit]
        lines = [ev.format() for ev in head]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        if self.dropped_records:
            what = ("oldest records evicted (ring buffer)" if self.ring_buffer
                    else "records suppressed at the cap")
            lines.append(
                f"!!! truncated: {self.dropped_records} {what} "
                f"(max_events={self.max_events})"
            )
        return "\n".join(lines)
