"""FANcY — fast in-network gray failure detection for ISPs.

A full-system Python reproduction of "FAst In-Network GraY Failure
Detection for ISPs" (Costa Molero, Vissicchio, Vanbever — SIGCOMM 2022):
the counting protocol and its FSMs, dedicated counters, hash-based trees
with the zooming algorithm, a packet-level network simulator standing in
for ns-3, baselines (Loss Radar, NetSeer, Blink, simple counter designs),
a Tofino resource model, and the complete experiment harness regenerating
every table and figure of the paper's evaluation.

Quickstart::

    from repro import (
        Simulator, TwoSwitchTopology, EntryLossFailure,
        FancyConfig, FancyLinkMonitor, FlowGenerator,
    )

    sim = Simulator()
    failure = EntryLossFailure({"10.0.0.0/8"}, loss_rate=0.1, start_time=2.0)
    topo = TwoSwitchTopology(sim, loss_model=failure)
    monitor = FancyLinkMonitor(sim, topo.upstream, 1, topo.downstream, 1,
                               FancyConfig(high_priority=["10.0.0.0/8"]))
    gen = FlowGenerator(sim, topo.source, "10.0.0.0/8",
                        rate_bps=1e6, flows_per_second=10)
    monitor.start()
    gen.start()
    sim.run(until=10.0)
    print(monitor.log.reports)
"""

from .core import (
    BloomFilter,
    FancyDeployment,
    LatencyModel,
    LinkSpec,
    QueueGuard,
    CountingBloomFilter,
    FailureKind,
    FailureLog,
    FailureReport,
    FancyConfig,
    FancyLinkMonitor,
    HashTree,
    HashTreeParams,
    MemoryBudgetError,
    MemoryPlan,
    MonitoringInput,
    plan_memory,
)
from .scenario import Scenario, ScenarioResult
from .simulator import (
    ChainTopology,
    EntryLossFailure,
    FlowGenerator,
    Host,
    Link,
    Packet,
    PacketKind,
    Simulator,
    Switch,
    ThroughputMeter,
    TwoSwitchTopology,
    UdpSource,
    UniformLossFailure,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "FancyConfig",
    "FancyLinkMonitor",
    "FancyDeployment",
    "LinkSpec",
    "QueueGuard",
    "LatencyModel",
    "HashTree",
    "HashTreeParams",
    "MonitoringInput",
    "MemoryPlan",
    "MemoryBudgetError",
    "plan_memory",
    "FailureKind",
    "FailureReport",
    "FailureLog",
    "BloomFilter",
    "CountingBloomFilter",
    # simulator
    "Simulator",
    "Packet",
    "PacketKind",
    "Link",
    "Switch",
    "Host",
    "FlowGenerator",
    "ThroughputMeter",
    "UdpSource",
    "TwoSwitchTopology",
    "ChainTopology",
    "EntryLossFailure",
    "UniformLossFailure",
    "Scenario",
    "ScenarioResult",
]
