"""Long-running FANcY supervision service (docs/ROBUSTNESS.md).

The single-link experiments and the chaos soak run minutes of simulated
time and evaluate their invariants at teardown; an ISP deployment runs
*days* with thousands of per-link sessions, and its failure mode of
interest is not the data plane but the *monitoring* plane — control
channels grey out, counter reports go missing, and a naive detector
converts its own impairment into false LINK_DOWN declarations.  This
package is the degraded-mode answer:

* :mod:`.ladder` — a per-link :class:`~repro.service.ladder.
  DegradationLadder` FSM that steps HEALTHY → USE_LAST_STATE → FREEZE →
  DECLARED on control-channel impairment signals, absorbing retransmit
  exhaustions while the link was recently verified alive.
* :mod:`.supervision` — online I1–I6 invariant observers evaluated
  continuously during the run, breaches metered as
  ``fancy_invariant_breach_total``.
* :mod:`.soak` — the ``fancy-repro serve`` driver: a fabric under a
  chaos schedule with Zipf entry churn, run for simulated days with
  periodic health snapshots, deterministic under seed and ``--shards``.
"""

from __future__ import annotations

from .ladder import LADDER_FSM_SPEC, DegradationLadder, LadderState, attach_ladder
from .soak import ServeConfig, ServeResult, run_serve
from .supervision import InvariantSupervisor

__all__ = [
    "LADDER_FSM_SPEC",
    "DegradationLadder",
    "LadderState",
    "attach_ladder",
    "InvariantSupervisor",
    "ServeConfig",
    "ServeResult",
    "run_serve",
]
