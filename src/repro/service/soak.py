"""``fancy-repro serve``: the long-running degraded-mode soak driver.

A serve runs a ring fabric under FANcY supervision for *simulated days*:
per-link monitors with paper-shaped (but coarser-clocked) counting
sessions, a rotating Zipf top-N dedicated entry set (entry churn via
:meth:`~repro.core.detector.FancyLinkMonitor.update_entries`), a
degradation ladder on every link, online I1–I6 invariant supervision,
and periodic health snapshots.  The default fault schedule is
``control-plane-grey``: asymmetric loss on one link's *reverse* (control)
channel only — the scenario the ladder exists for, where the data plane
is perfect and a naive detector would still declare LINK_DOWN.

Execution follows the fabric experiments' sharding contract
(docs/FABRIC.md): each monitored link runs as an isolated *probe*
simulation that is a pure function of ``(config, schedule, link_id)``,
and ``--shards N`` only changes how probes are batched across worker
processes.  Health snapshots, Prometheus text and trace JSONL are
byte-identical for any shard count and any same-seed rerun.

Clock scaling: a day of 50 ms sessions is ~1.7 M sessions per link —
far past what a Python event loop should burn CI minutes on.  The serve
configs instead scale every protocol timer up together (sessions,
retransmit timeout, grace), preserving the ratios that make the ladder
sound: ``tree_session_s < declare_grace_s < dead-channel exhaustion
floor`` (``rtx_timeout_s × 23/2``), so absorption covers report gaps at
grey loss rates while a dead channel still declares within one
exhaustion cycle.  The paper-default timer tests live in
``tests/service/``, at paper scale.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from ..chaos.invariants import Violation
from ..chaos.schedule import FaultSpec
from ..core.detector import FancyConfig
from ..core.hashtree import HashTreeParams
from ..fabric.builders import ring
from ..fabric.chaos import (
    as_directional,
    link_target,
    materialize_on_fabric,
    parse_link_target,
)
from ..fabric.deployment import FabricDeployment
from ..fabric.graph import FabricNetwork
from ..fabric.sharding import merge_link_results, plan_shards
from ..obs.health import FabricHealthReport
from ..runtime import Job, RuntimeContext, fingerprint, resolve, run_sweep, stable_seed
from ..simulator.engine import Simulator
from ..simulator.fluid import FluidFlow, FluidTraffic
from ..telemetry import Telemetry
from ..traffic.zipf import assign_rates, sample_zipf_ranks
from .ladder import attach_ladder
from .supervision import InvariantSupervisor

__all__ = [
    "ServeConfig",
    "ServeResult",
    "default_serve_schedule",
    "churn_rotations",
    "run_serve",
]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one serve soak (JSON-round-trippable)."""

    seed: int = 0
    ring_size: int = 6
    duration_s: float = 86_400.0       #: simulated horizon (one day)
    health_every_s: float = 21_600.0   #: health snapshot cadence
    supervise_every_s: float = 60.0    #: invariant observer tick cadence
    churn_every_s: float = 14_400.0    #: dedicated entry-set rotation cadence
    universe_size: int = 2_000         #: prefix universe the Zipf draws from
    top_n: int = 500                   #: dedicated (top-N) entry-set size
    n_flows: int = 24                  #: fluid flows over the heaviest entries
    zipf_alpha: float = 1.0
    total_rate_bps: float = 4_000_000.0
    packet_size: int = 400
    dedicated_session_s: float = 5.0
    tree_session_s: float = 6.0
    twait_s: float = 0.5
    rtx_timeout_s: float = 1.0
    #: absorption-recency window: when one sender FSM exhausts its
    #: retransmits, the exhaustion itself lasted the full backoff floor
    #: (23 × rtx), so the freshness proving the channel alive must come
    #: from the *other* FSM's reports — the grace must exceed **both**
    #: FSMs' verified-report gaps (session length + retry slack) and stay
    #: under the floor so a dead channel is denied on first exhaustion.
    declare_grace_s: float = 10.0
    max_absorbed_cycles: int = 3
    #: link whose *reverse* channel greys out (None disables the fault).
    grey_link: Optional[str] = "s1->s2"
    grey_rate: float = 0.2
    grey_start_s: float = 600.0
    #: how long the fault-rooted trace episode stays open (bounded so a
    #: day-long grey fault doesn't record a day of control spans).
    trace_window_s: float = 60.0

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ServeConfig":
        return cls(**{f.name: d[f.name] for f in dataclasses.fields(cls)
                      if f.name in d})

    @classmethod
    def quick(cls, seed: int = 0) -> "ServeConfig":
        """CI-sized serve: still a simulated day, coarser everything."""
        return cls(
            seed=seed, ring_size=4, universe_size=200, top_n=40, n_flows=6,
            churn_every_s=28_800.0, supervise_every_s=600.0,
            total_rate_bps=1_000_000.0, dedicated_session_s=10.0,
            tree_session_s=12.0, twait_s=1.0, rtx_timeout_s=2.0,
            declare_grace_s=20.0, grey_start_s=3_600.0,
            trace_window_s=120.0,
        )


@dataclass
class ServeResult:
    """Merged outcome of one serve (all links, all shards)."""

    config: ServeConfig
    links: list[str]
    snapshots: list[dict[str, Any]]
    ladder_states: dict[str, str]
    breaches: dict[str, int]
    violations: list[dict[str, Any]]
    detections: list[tuple[Any, ...]]
    sessions_completed: dict[str, int]
    absorbed_exhaustions: int
    prometheus: str
    trace_jsonl: str
    health_json: str
    events_processed: int
    fluid_absorbed: int
    shards: int = 1

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "config": self.config.to_dict(),
            "ok": self.ok,
            "links": list(self.links),
            "snapshots": self.snapshots,
            "ladder_states": dict(self.ladder_states),
            "breaches": dict(self.breaches),
            "violations": list(self.violations),
            "detections": [list(r) for r in self.detections],
            "sessions_completed": dict(self.sessions_completed),
            "absorbed_exhaustions": self.absorbed_exhaustions,
            "events_processed": self.events_processed,
            "fluid_absorbed": self.fluid_absorbed,
            "shards": self.shards,
        }


# -- deterministic planning (pure functions of the config) ---------------------


def churn_rotations(config: ServeConfig) -> list[tuple[float, tuple[str, ...]]]:
    """``(apply_time, top-N entry tuple)`` per rotation; rotation 0 at t=0.

    Each rotation draws its top-N from the Zipf prefix universe with a
    rotation-derived seed, dedup-preserving rank popularity order and
    padding from the unseen head of the universe if the draw collapses —
    always exactly ``top_n`` distinct entries, pure in (seed, k).
    """
    out: list[tuple[float, tuple[str, ...]]] = []
    k = 0
    t = 0.0
    while t < config.duration_s:
        ranks = sample_zipf_ranks(
            config.universe_size, count=config.top_n * 3,
            alpha=config.zipf_alpha,
            seed=stable_seed(config.seed, "churn", k))
        distinct: list[int] = []
        seen: set[int] = set()
        for rank in ranks:
            if rank not in seen:
                seen.add(rank)
                distinct.append(rank)
            if len(distinct) == config.top_n:
                break
        for rank in range(config.universe_size):
            if len(distinct) == config.top_n:
                break
            if rank not in seen:
                seen.add(rank)
                distinct.append(rank)
        out.append((t, tuple(f"p/{rank}" for rank in distinct)))
        k += 1
        t = k * config.churn_every_s
        if config.churn_every_s <= 0:
            break
    return out


def _entry_endpoints(entry: str, ring_size: int) -> tuple[str, str]:
    """Spread entries around the ring: ``p/r`` flows s(r) → s(r+2)."""
    rank = int(entry.split("/", 1)[1])
    return f"s{rank % ring_size}", f"s{(rank + 2) % ring_size}"


def _flow_plan(config: ServeConfig,
               rotations: list[tuple[float, tuple[str, ...]]]
               ) -> dict[str, float]:
    """Entry → rate for the fixed fluid flow set (heaviest of rotation 0).

    Flows persist across churn — an entry rotated out of the top-N keeps
    sending and is simply counted by the tree tier instead (the dynamic
    tier membership the fluid engine re-evaluates every window).
    """
    entries = list(rotations[0][1][:config.n_flows])
    return dict(assign_rates(entries, config.total_rate_bps,
                             config.zipf_alpha))


def default_serve_schedule(config: ServeConfig) -> list[FaultSpec]:
    """``control-plane-grey`` on the reverse of ``config.grey_link``.

    The loss model only matches control-plane packets, so counter
    reports and ACKs returning over the greyed wire are dropped at
    ``grey_rate`` while every data packet crosses untouched — the
    false-LINK_DOWN trap the degradation ladder must absorb.
    """
    if config.grey_link is None or config.grey_rate <= 0:
        return []
    a, b = config.grey_link.split("->")
    return [FaultSpec(
        "control_loss",
        target=link_target(b, a),
        params={"rate": config.grey_rate,
                "start": config.grey_start_s, "end": None},
        index=0,
    )]


def _directional_schedule(link_id: str,
                          schedule: list[FaultSpec]) -> list[FaultSpec]:
    """Link-addressed specs, translated for one monitor's invariants.

    A spec on the monitored link itself is its *forward* (data)
    direction; a spec on the opposite directed link is its *reverse*
    (control-return) channel — which is how a ``control_loss`` on
    ``B->A`` legitimately explains impairment seen by ``A->B``'s monitor.
    """
    a, b = link_id.split("->")
    reverse_id = f"{b}->{a}"
    out: list[FaultSpec] = []
    for spec in schedule:
        target = parse_link_target(spec.target)
        if target == link_id:
            out.append(as_directional(spec))
        elif target == reverse_id:
            out.append(FaultSpec(kind=spec.kind, target="reverse",
                                 params=dict(spec.params), index=spec.index))
    return out


def _delay_legs(net: FabricNetwork, path: list[str], a: str, b: str,
                packet_size: int) -> Optional[tuple[float, ...]]:
    """Host→monitored-egress delay chain, or None when a→b is off-path.

    Mirrors the discrete pipeline hop for hop (access delay, then
    serialize+propagate per crossed link) so fluid arrivals land on the
    exact floats the packet model would produce.
    """
    try:
        idx = path.index(a)
    except ValueError:
        return None
    if idx + 1 >= len(path) or path[idx + 1] != b:
        return None
    legs: list[float] = [net.access_delay_s]
    for i in range(idx):
        link = net.link(path[i], path[i + 1])
        if link.bandwidth_bps:
            legs.append(packet_size * 8 / link.bandwidth_bps)
        legs.append(link.delay_s)
    return tuple(legs)


# -- the per-link probe --------------------------------------------------------


def _serve_probe(config: ServeConfig, schedule: list[FaultSpec],
                 link_id: str, link_seed: int) -> dict[str, Any]:
    """One link's serve — a pure function of (config, schedule, link).

    Builds a fresh ring, monitors exactly one link with a degradation
    ladder and an invariant observer, installs the full fault schedule
    (all probes observe the same fabric), binds the fluid flows that
    cross the link, rotates the dedicated entry set on the churn grid,
    and snapshots health on the health grid.  Nothing depends on shard
    grouping — the ``--shards`` byte-equality contract.
    """
    rotations = churn_rotations(config)
    flow_rates = _flow_plan(config, rotations)

    sim = Simulator()
    net = FabricNetwork(sim, ring(config.ring_size))
    all_entries: list[str] = []
    seen: set[str] = set()
    for _t, entries in rotations:
        for entry in entries:
            if entry not in seen:
                seen.add(entry)
                all_entries.append(entry)
    for entry in flow_rates:
        if entry not in seen:
            seen.add(entry)
            all_entries.append(entry)
    for entry in all_entries:
        src, dst = _entry_endpoints(entry, config.ring_size)
        net.add_entry(entry, src, dst)
        net.host(dst)  # materialize sinks before traffic arrives

    fancy = FancyConfig(
        high_priority=list(rotations[0][1]),
        tree_params=HashTreeParams(width=8, depth=2, split=2, pipelined=True),
        dedicated_session_s=config.dedicated_session_s,
        tree_session_s=config.tree_session_s,
        rtx_timeout_s=config.rtx_timeout_s,
        twait_s=config.twait_s,
        seed=stable_seed(config.seed, "fancy", bits=31),
    )
    telemetry = Telemetry(scope=link_id)
    deployment = FabricDeployment(net, config=fancy, links=[link_id],
                                  telemetry=telemetry)
    monitor = deployment.monitors[link_id]

    materialized = materialize_on_fabric(schedule, config.seed, net,
                                         deployment)
    a, b = net.endpoints(link_id)
    reverse_id = f"{b}->{a}"
    _schedule_reverse_episodes(net, monitor, link_id, reverse_id, schedule,
                               config)

    ladder = attach_ladder(
        monitor, link_id=link_id,
        declare_grace_s=config.declare_grace_s,
        max_absorbed_cycles=config.max_absorbed_cycles)

    link_schedule = _directional_schedule(link_id, schedule)
    dedicated0 = list(rotations[0][1])
    best_effort0 = [e for e in flow_rates if e not in set(dedicated0)]
    supervisor = InvariantSupervisor(sim, telemetry=telemetry,
                                     interval_s=config.supervise_every_s)
    observer = supervisor.watch(
        link_id, monitor, link_schedule, dedicated0, best_effort0,
        links=[net.links[lid] for lid in sorted(net.links)],
        chaos_models=materialized.chaos_models_for(link_id, reverse_id))
    supervisor.start()

    # -- fluid flows crossing this link, grouped by delay chain -------------
    engine = FluidTraffic(sim)
    for i, (entry, rate) in enumerate(flow_rates.items()):
        engine.add_flow(FluidFlow(
            entry=entry, flow_id=i, rate_bps=rate,
            packet_size=config.packet_size, jitter=0.1,
            seed=stable_seed(config.seed, "flow", i),
            start_s=0.0005 * (i + 1),
        ))
    by_legs: dict[tuple[float, ...], list[FluidFlow]] = {}
    for flow in engine.flows:
        path = net.flow_path(flow.entry, flow.flow_id)
        legs = _delay_legs(net, path, a, b, flow.packet_size)
        if legs is not None:
            by_legs.setdefault(legs, []).append(flow)
    for legs, flows in by_legs.items():
        engine.bind_monitor(monitor, flows, legs,
                            loss_model=net.link(a, b).loss_model,
                            loss_seed=link_seed)

    # -- entry churn on the rotation grid -----------------------------------
    def _rotate(entries: tuple[str, ...]) -> None:
        monitor.update_entries(entries)
        observer.update_entries(
            list(entries),
            [e for e in flow_rates if e not in set(entries)])

    for t, entries in rotations[1:]:
        sim.schedule_at(t, _rotate, entries)

    # Stagger by position in the full link order, so session boundaries
    # match what an all-links deployment would produce.
    pos = net.directed_link_ids().index(link_id)
    monitor.start(delay=pos * 0.001)

    # -- run with health snapshots on the health grid -----------------------
    def _snapshot(t: float, label: str) -> dict[str, Any]:
        report = FabricHealthReport.from_deployment(
            deployment, sim_time=t, ladders={link_id: ladder},
            breaches={link_id: _breach_counts(observer.breaches)})
        row = report.links[0].to_dict()
        return {"t": t, "label": label, "link": row}

    snapshots: list[dict[str, Any]] = []
    t = config.health_every_s
    while t < config.duration_s:
        sim.run(until=t)
        snapshots.append(_snapshot(t, f"t+{t:.0f}s"))
        t += config.health_every_s
    sim.run(until=config.duration_s)

    # -- wind-down: stop, drain, final checks, final snapshot ---------------
    supervisor.stopped = True
    deployment.stop()
    sim.run()
    supervisor.finalize(horizon=config.duration_s)
    snapshots.append(_snapshot(config.duration_s, "final"))
    traces = getattr(monitor.telemetry, "traces", None)
    if traces is not None:
        traces.finalize(sim.now)

    return {
        "link": link_id,
        "detections": deployment.detection_records(),
        "metrics": telemetry.metrics.snapshot(),
        "spans": monitor.telemetry.traces.span_dicts(),
        "sessions_completed": deployment.sessions_completed()[link_id],
        "events_processed": sim.events_processed,
        "fluid_absorbed": engine.absorbed,
        "snapshots": snapshots,
        "violations": [v.to_dict() for v in observer.breaches],
        "ladder": {
            "state": ladder.state.value,
            "transitions": ladder.transitions,
            "absorbed_streak": ladder.absorbed_streak,
        },
        "absorbed_exhaustions": sum(
            fsm.absorbed_exhaustions
            for fsm in (monitor.dedicated_sender, monitor.tree_sender)
            if fsm is not None),
    }


def _breach_counts(breaches: list[Violation]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for violation in breaches:
        counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
    return dict(sorted(counts.items()))


def _schedule_reverse_episodes(net: FabricNetwork, monitor: Any,
                               link_id: str, reverse_id: str,
                               schedule: list[FaultSpec],
                               config: ServeConfig) -> None:
    """Open bounded trace episodes for faults on the reverse channel.

    ``materialize_on_fabric`` roots episodes only on the faulted link's
    own monitor; a control-channel fault on the *reverse* wire impairs
    this monitor just the same, so the serve roots one here too.  The
    episode closes after ``trace_window_s`` — long enough to capture the
    ladder stepping and the absorbed exhaustions, bounded so a day-long
    grey fault doesn't record a day of control chatter.
    """
    traces = getattr(monitor.telemetry, "traces", None)
    if traces is None:
        return
    for spec in schedule:
        if parse_link_target(spec.target) != reverse_id:
            continue
        start = float(spec.params.get("start") or spec.params.get("time")
                      or 0.0)

        def _open(spec: FaultSpec = spec, start: float = start) -> None:
            traces.begin_episode(
                net.sim.now, cause="fault", name=spec.kind, link=link_id,
                target=spec.target, index=spec.index, params=spec.params)
            net.sim.schedule(config.trace_window_s,
                             lambda: traces.end_episode(net.sim.now))

        net.sim.schedule_at(start, _open)


# -- sharded execution and merge -----------------------------------------------


def _serve_shard_worker(payload: tuple) -> dict[str, Any]:
    """Top-level (picklable) shard executor: one probe per assigned link."""
    config, schedule, links, link_seeds = payload
    return {
        link_id: _serve_probe(config, schedule, link_id, link_seed)
        for link_id, link_seed in zip(links, link_seeds)
    }


def _merge_health(per_link: dict[str, dict[str, Any]]) -> list[dict[str, Any]]:
    """Fold per-probe snapshot rows into fabric-wide snapshots by time.

    All probes share the same health grid (it is a pure function of the
    config), so grouping by snapshot index gives one fabric snapshot per
    grid point, links in sorted id order — byte-stable under sharding.
    """
    ordered = sorted(per_link)
    if not ordered:
        return []
    depth = min(len(per_link[lid]["snapshots"]) for lid in ordered)
    merged: list[dict[str, Any]] = []
    for i in range(depth):
        first = per_link[ordered[0]]["snapshots"][i]
        rows = [per_link[lid]["snapshots"][i]["link"] for lid in ordered]
        status: dict[str, int] = {}
        for row in rows:
            status[row["status"]] = status.get(row["status"], 0) + 1
        merged.append({
            "t": first["t"],
            "label": first["label"],
            "status": dict(sorted(status.items())),
            "links": rows,
        })
    return merged


def run_serve(config: Optional[ServeConfig] = None,
              schedule: Optional[list[FaultSpec]] = None,
              shards: int = 1,
              runtime: Optional[RuntimeContext] = None) -> ServeResult:
    """Run one serve soak, sharded across worker processes.

    ``schedule`` defaults to :func:`default_serve_schedule` (control-
    plane-grey on the configured link's reverse channel).  The merged
    result is a pure function of ``(config, schedule)`` — shard count
    and worker scheduling cannot change a byte of it.
    """
    config = config or ServeConfig()
    if schedule is None:
        schedule = default_serve_schedule(config)
    link_ids = FabricNetwork(Simulator(),
                             ring(config.ring_size)).directed_link_ids()
    specs = plan_shards(link_ids, shards, seed=config.seed)
    jobs = [
        Job(
            key=f"serve-{spec.index}",
            payload=(config, schedule, spec.links, spec.link_seeds),
            fingerprint=fingerprint(
                "serve", config, [s.to_dict() for s in schedule], spec.links),
            sim_s=config.duration_s * len(spec.links),
        )
        for spec in specs
    ]
    sweep = run_sweep(jobs, _serve_shard_worker, runtime=resolve(runtime),
                      label="serve")
    sweep.require_ok("serve")
    per_link: dict[str, dict[str, Any]] = {}
    for spec in specs:
        per_link.update(sweep.results[f"serve-{spec.index}"])

    merged = merge_link_results(per_link)
    ordered = merged["links"]
    snapshots = _merge_health(per_link)
    violations = [v for lid in ordered for v in per_link[lid]["violations"]]
    breach_totals: dict[str, int] = {}
    for violation in violations:
        inv = violation["invariant"]
        breach_totals[inv] = breach_totals.get(inv, 0) + 1
    ladder_states = {lid: per_link[lid]["ladder"]["state"] for lid in ordered}
    health_json = json.dumps(
        {"snapshots": snapshots, "ladder_states": ladder_states,
         "breaches": dict(sorted(breach_totals.items()))},
        sort_keys=True)

    return ServeResult(
        config=config,
        links=list(ordered),
        snapshots=snapshots,
        ladder_states=ladder_states,
        breaches=dict(sorted(breach_totals.items())),
        violations=violations,
        detections=merged["detections"],
        sessions_completed=merged["sessions_completed"],
        absorbed_exhaustions=sum(
            per_link[lid]["absorbed_exhaustions"] for lid in ordered),
        prometheus=merged["prometheus"],
        trace_jsonl=merged["trace_jsonl"],
        health_json=health_json,
        events_processed=merged["events_processed"],
        fluid_absorbed=merged["fluid_absorbed"],
        shards=len(specs),
    )
