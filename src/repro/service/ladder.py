"""Graceful-degradation ladder for control-channel impairment (§4.1+).

The paper's sender FSM has exactly one answer to an unresponsive control
channel: retransmit ``X`` times, then declare LINK_DOWN.  That is
correct when the reverse channel is dead, but an ISP control channel
that *greys* — drops 20% of counter reports while the data link forwards
perfectly — would trip the same declaration and trigger a spurious
reroute.  The ladder interposes a second, slower FSM between impairment
evidence and the declaration:

``HEALTHY → USE_LAST_STATE``
    First retransmission or checksum-rejected report in a phase: the
    link's last *verified* counter snapshot stands in for the one we
    cannot fetch (the sender caches it on every verified Report).

``USE_LAST_STATE → FREEZE``
    Retransmit backoff saturated (factor hit ``backoff_cap``): stop
    trusting window advancement.  Flags raised so far are captured and
    *held* — kept visible, but marked for re-validation.

``FREEZE → DECLARED``
    Retransmit attempts exhausted *and* the link is no longer recently
    verified (see below): today's LINK_DOWN, rerouting proceeds.

``→ HEALTHY`` (recovery)
    Any verified Report steps the ladder back down.  Recovery out of
    FREEZE clears the held flags so the next *live* counting window
    re-validates them: genuine loss re-flags within one window, flags
    that only existed because the control channel was lying are gone.

The DECLARE gate is recency: an exhaustion is *absorbed* (session
aborted and reopened, window discarded, no declaration) while some FSM
on the link produced a verified report less than ``declare_grace_s``
ago and fewer than ``max_absorbed_cycles`` consecutive exhaustions have
been absorbed.  ``declare_grace_s`` must sit below the protocol's
dead-channel floor (≈1.15 s from phase start to exhaustion with the
paper's timers), so a genuinely dead reverse channel is *never*
absorbed — its last verified report is necessarily older than the grace
by the time the first exhaustion fires — and detection latency keeps
the paper's ≤1.2 s bound.

``LADDER_FSM_SPEC`` is the machine-checked contract: fancylint FCY012
extracts every ``_set_state`` call in :class:`DegradationLadder` and
proves the implemented edge set equals this table.
"""

from __future__ import annotations

import enum
from typing import Any

__all__ = [
    "LADDER_FSM_SPEC",
    "LadderState",
    "DegradationLadder",
    "attach_ladder",
]


class LadderState(enum.Enum):
    HEALTHY = "healthy"
    USE_LAST_STATE = "use_last_state"
    FREEZE = "freeze"
    DECLARED = "declared"


#: FCY012 model-checking table (see ``repro.lint.fsm``): rows are
#: ``(from, to, label, kind)``; ``"*"`` means "from any state".  All
#: protocol edges are ``event`` — the ladder owns no timers; it is
#: driven entirely by impairment signals the sender FSMs emit.
LADDER_FSM_SPEC: dict[str, Any] = {
    "role": "ladder",
    "fsm_class": "DegradationLadder",
    "state_enum": "LadderState",
    "initial": "HEALTHY",
    "terminal": ("DECLARED",),
    "lifecycle_methods": ("reset",),
    "backoff_helper": None,
    "transitions": (
        ("HEALTHY", "USE_LAST_STATE", "control_impaired", "event"),
        ("USE_LAST_STATE", "FREEZE", "impairment_persists", "event"),
        ("FREEZE", "DECLARED", "attempts_exhausted", "event"),
        ("USE_LAST_STATE", "HEALTHY", "recovered", "event"),
        ("FREEZE", "HEALTHY", "recovered", "event"),
        ("*", "HEALTHY", "reset", "lifecycle"),
    ),
}


class DegradationLadder:
    """Per-link degraded-mode FSM, fed by sender impairment signals.

    Args:
        monitor: the :class:`~repro.core.detector.FancyLinkMonitor`
            whose control-channel health this ladder tracks.
        link_id: label for telemetry (``fancy_ladder_transitions_total``
            and timeline/trace records).
        declare_grace_s: how recently the link must have produced a
            verified report for an exhaustion to be absorbed.  Must stay
            below the protocol's dead-channel exhaustion floor.
        max_absorbed_cycles: consecutive absorbed exhaustions allowed
            before the ladder lets the declaration through anyway (a
            channel that exhausts every phase is dead for all practical
            purposes, however fresh the other FSM's reports are).
    """

    def __init__(
        self,
        monitor: Any,
        link_id: str = "link",
        declare_grace_s: float = 1.0,
        max_absorbed_cycles: int = 3,
    ) -> None:
        self.monitor = monitor
        self.link_id = link_id
        self.declare_grace_s = declare_grace_s
        self.max_absorbed_cycles = max_absorbed_cycles
        self.state = LadderState.HEALTHY
        #: Simulated time of the most recent verified counter report on
        #: any of the link's FSMs; ``None`` until the first one lands —
        #: a link never verified alive gets no absorption grace.
        self.last_report_at: float | None = None
        #: Consecutive exhaustions absorbed without an intervening
        #: verified report.
        self.absorbed_streak = 0
        #: Dedicated flags captured when the ladder froze; cleared (for
        #: re-validation by the next live window) on recovery.
        self.held_flags: tuple[Any, ...] = ()
        #: Flags cleared by the most recent FREEZE→HEALTHY recovery
        #: (observability for tests and the health report).
        self.revalidated: tuple[Any, ...] = ()
        self.transitions = 0
        self._t = 0.0

    # -- state bookkeeping -------------------------------------------------

    def _set_state(self, new_state: LadderState) -> None:
        old_state = self.state
        self.state = new_state
        if old_state is new_state:
            return
        self.transitions += 1
        telemetry = self.monitor.telemetry
        if telemetry is not None:
            telemetry.metrics.counter(
                "fancy_ladder_transitions_total",
                "Degradation-ladder rung changes, by link and edge",
                link=self.link_id, src=old_state.value,
                dst=new_state.value).inc()
            telemetry.timeline.record(
                self._t, f"ladder:{self.link_id}", "ladder_transition",
                **{"from": old_state.value, "to": new_state.value})
            traces = telemetry.traces
            if traces is not None and traces.active:
                traces.emit(
                    f"ladder {old_state.value}->{new_state.value}",
                    self._t, category="ladder", link=self.link_id)

    # -- impairment signal protocol ---------------------------------------

    def on_signal(self, signal: str, now: float) -> None:
        """Sender impairment tap: route one signal into the ladder.

        Signals (see ``FancySender.impairment_taps``): ``rtx`` — a
        retransmission happened; ``corrupt`` — a checksum-rejected
        control message; ``saturated`` — retransmit backoff hit its
        cap; ``recovered`` — a verified Report closed a window;
        ``absorbed`` — an exhaustion was absorbed (bookkeeping only,
        the rung already moved via :meth:`on_exhaustion`).
        """
        self._t = now
        if self.state is LadderState.DECLARED:
            return
        if signal == "recovered":
            self.last_report_at = now
            self.absorbed_streak = 0
            self._recover(now)
        elif signal == "saturated":
            self._freeze(now)
        elif signal in ("rtx", "corrupt"):
            self._impaired(now)

    def _impaired(self, now: float) -> None:
        """First impairment evidence: fall back to the last snapshot."""
        if self.state is not LadderState.HEALTHY:
            return
        self._set_state(LadderState.USE_LAST_STATE)

    def _freeze(self, now: float) -> None:
        """Persistent impairment: step through to FREEZE, holding flags."""
        if self.state is LadderState.HEALTHY:
            self._set_state(LadderState.USE_LAST_STATE)
        if self.state is LadderState.USE_LAST_STATE:
            self._set_state(LadderState.FREEZE)
            self.held_flags = tuple(self.monitor.flagged_entries())

    def _recover(self, now: float) -> None:
        """Verified report: step back to HEALTHY, re-validating flags."""
        if self.state is LadderState.FREEZE:
            # Flags held across the freeze were raised from windows the
            # impaired control channel may have mangled: clear them and
            # let the next live window re-raise the genuine ones.
            self.revalidated = tuple(
                self.monitor.clear_dedicated_flags(self.held_flags))
            self.held_flags = ()
            self._set_state(LadderState.HEALTHY)
            return
        if self.state is LadderState.USE_LAST_STATE:
            self._set_state(LadderState.HEALTHY)

    # -- declaration gate --------------------------------------------------

    def on_exhaustion(self, fsm_id: str, now: float) -> bool:
        """Absorb-or-declare decision for one exhausted control exchange.

        Installed as ``FancySender.on_exhaustion``; returning True
        aborts the window and reopens a session instead of declaring
        LINK_DOWN.  Absorption requires the link recently verified
        alive and an unexhausted absorb budget — both false for a dead
        reverse channel, so declaration latency keeps its bound.
        """
        self._t = now
        if self.state is LadderState.DECLARED:
            return False
        if self.last_report_at is None:
            return False
        if now - self.last_report_at >= self.declare_grace_s:
            return False
        if self.absorbed_streak >= self.max_absorbed_cycles:
            return False
        self.absorbed_streak += 1
        self._freeze(now)
        return True

    def on_declared(self, fsm_id: str, now: float) -> None:
        """Walk the remaining rungs down to DECLARED (LINK_DOWN stands)."""
        self._t = now
        if self.state is LadderState.DECLARED:
            return
        if self.state is LadderState.HEALTHY:
            self._set_state(LadderState.USE_LAST_STATE)
        if self.state is LadderState.USE_LAST_STATE:
            self._set_state(LadderState.FREEZE)
        if self.state is LadderState.FREEZE:
            self._set_state(LadderState.DECLARED)

    # -- lifecycle ---------------------------------------------------------

    def reset(self, now: float = 0.0) -> None:
        """Operator/recovery reset: back to HEALTHY from any rung."""
        self._t = now
        self.absorbed_streak = 0
        self.held_flags = ()
        self._set_state(LadderState.HEALTHY)

    # -- queries -----------------------------------------------------------

    @property
    def status(self) -> str:
        """Health-report status string for the current rung."""
        return self.state.value

    def snapshot(self) -> Any:
        """Most recent verified remote counter snapshot on the link.

        This is the counter state USE_LAST_STATE serves while a fresh
        report cannot be fetched; ``None`` until a window has verified.
        """
        best_at: float | None = None
        best: Any = None
        for fsm in (self.monitor.dedicated_sender, self.monitor.tree_sender):
            if fsm is None or fsm.last_verified_at is None:
                continue
            if best_at is None or fsm.last_verified_at > best_at:
                best_at = fsm.last_verified_at
                best = fsm.last_verified_snapshot
        return best


def attach_ladder(
    monitor: Any,
    link_id: str = "link",
    declare_grace_s: float = 1.0,
    max_absorbed_cycles: int = 3,
) -> DegradationLadder:
    """Wrap one monitor's sender FSMs in a degradation ladder.

    Registers the ladder as impairment tap and exhaustion gate on both
    sender FSMs and chains itself *before* any existing
    ``on_link_failure`` callback (reroute hooks still fire; the ladder
    records the DECLARE first).
    """
    ladder = DegradationLadder(
        monitor, link_id=link_id, declare_grace_s=declare_grace_s,
        max_absorbed_cycles=max_absorbed_cycles)
    for sender in (monitor.dedicated_sender, monitor.tree_sender):
        if sender is None:
            continue
        sender.impairment_taps.append(ladder.on_signal)
        sender.on_exhaustion = ladder.on_exhaustion
        sender.on_link_failure = _chain_declared(
            ladder, sender.on_link_failure)
    return ladder


def _chain_declared(ladder: DegradationLadder,
                    previous: Any) -> Any:
    def declared(fsm_id: str, now: float) -> None:
        ladder.on_declared(fsm_id, now)
        if previous is not None:
            previous(fsm_id, now)
    return declared
