"""Online invariant supervision for long-running serves.

The chaos harness evaluates I1–I6 at teardown — fine for a soak that
lasts minutes, useless for a service meant to run simulated days: a
liveness deadlock at hour 2 must surface at hour 2, not in a post-run
report.  :class:`InvariantSupervisor` owns one
:class:`~repro.chaos.invariants.LinkInvariantObserver` per monitored
link and ticks them on a simulated-clock cadence; every breach is
exported as ``fancy_invariant_breach_total{invariant=,link=}`` and fed
into the health report (the serve driver attaches breach counts to each
link's :class:`~repro.obs.health.LinkHealth`).

Tick evaluation covers the invariants that hold at every instant
(liveness, session monotonicity, incremental attribution, pool
integrity, in-flight-tolerant corruption accounting); the drain-only
arithmetic (eventual detection, per-link conservation, exact corruption
equality) runs once in :meth:`InvariantSupervisor.finalize`.
"""

from __future__ import annotations

from typing import Any

from repro.chaos.invariants import LinkInvariantObserver, Violation
from repro.chaos.schedule import FaultSpec

__all__ = ["InvariantSupervisor"]


class InvariantSupervisor:
    """Periodic I1–I6 evaluation over a set of link observers.

    Args:
        sim: the simulation whose clock drives the tick cadence.
        telemetry: optional session; breaches are metered on its
            registry.
        interval_s: simulated seconds between ticks.  Ticks run between
            engine events, so mid-run liveness checks are sound (a
            due-but-unfired timer still counts as pending).
    """

    def __init__(self, sim: Any, telemetry: Any | None = None,
                 interval_s: float = 0.5) -> None:
        self.sim = sim
        self.telemetry = telemetry
        self.interval_s = interval_s
        self.observers: dict[str, LinkInvariantObserver] = {}
        self.stopped = False
        self.finalized = False

    # -- wiring ------------------------------------------------------------

    def watch(
        self,
        link_id: str,
        monitor: Any,
        schedule: list[FaultSpec],
        dedicated: list[Any],
        best_effort: list[Any],
        links: list[Any],
        chaos_models: list[Any],
    ) -> LinkInvariantObserver:
        """Register one link's monitor for continuous supervision."""
        observer = LinkInvariantObserver(
            monitor, schedule, dedicated, best_effort, links, chaos_models,
            link_id=link_id, on_breach=self._on_breach)
        self.observers[link_id] = observer
        return observer

    def _on_breach(self, link_id: str, violation: Violation) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "fancy_invariant_breach_total",
                "Soak-invariant (I1-I6) breaches observed online",
                invariant=violation.invariant, link=link_id).inc()

    # -- lifecycle ---------------------------------------------------------

    def start(self, delay: float | None = None) -> None:
        """Arm the periodic tick (first fire after one interval)."""
        self.sim.schedule(
            self.interval_s if delay is None else delay, self._tick)

    def _tick(self) -> None:
        if self.stopped:
            return
        for link_id in sorted(self.observers):
            self.observers[link_id].tick(self.sim.now)
        self.sim.schedule(self.interval_s, self._tick)

    def finalize(self, horizon: float) -> list[Violation]:
        """Stop ticking and run the drain-time checks on every observer.

        ``horizon`` is the instant traffic stopped (the eventual-
        detection cutoff).  Idempotent: a second call returns the
        accumulated breach list without re-checking.
        """
        self.stopped = True
        if not self.finalized:
            self.finalized = True
            for link_id in sorted(self.observers):
                self.observers[link_id].final(self.sim.now, horizon)
        return self.breaches()

    # -- queries -----------------------------------------------------------

    def breaches(self) -> list[Violation]:
        """All breaches so far, ordered by link then observation order."""
        out: list[Violation] = []
        for link_id in sorted(self.observers):
            out.extend(self.observers[link_id].breaches)
        return out

    def breach_counts(self) -> dict[str, int]:
        """Breach totals per invariant id (``{}`` when all clean)."""
        counts: dict[str, int] = {}
        for violation in self.breaches():
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return dict(sorted(counts.items()))

    def breaches_for(self, link_id: str) -> list[Violation]:
        observer = self.observers.get(link_id)
        return list(observer.breaches) if observer is not None else []
