"""``fancy-repro serve``: run the degraded-mode soak service.

Runs :func:`repro.service.run_serve` — a ring fabric supervised for a
simulated day under entry churn and the control-plane-grey fault —
prints each health snapshot as it lands in the merged result, and exits
0 only when every online invariant held (zero I1–I6 breaches).

``--out DIR`` writes the machine/operator artifact set:

* ``serve-health.json`` — the byte-stable health document (snapshots,
  ladder states, breach totals; identical across same-seed runs and any
  ``--shards`` value — the determinism contract CI diffs),
* ``serve-report.html`` — the offline dashboard (tiles + per-link
  table + ladder/trace waterfalls),
* ``serve-traces.jsonl`` and ``serve-metrics.prom`` — the raw exports,
* ``serve-result.json`` — the full merged result document.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
from typing import Any, Optional, Sequence

from ..runtime import RuntimeContext
from .soak import ServeConfig, ServeResult, run_serve

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fancy-repro serve",
        description="Long-running degraded-mode soak: per-link FANcY "
                    "sessions with degradation ladders, online I1-I6 "
                    "supervision, Zipf entry churn and periodic health "
                    "snapshots (docs/ROBUSTNESS.md).",
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized serve (4-switch ring, smaller entry "
                             "universe, coarser cadences)")
    parser.add_argument("--seed", type=int, default=0, metavar="S")
    parser.add_argument("--duration", type=float, default=None,
                        metavar="SECONDS",
                        help="simulated horizon (default: one day)")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="batch the per-link probes into N worker "
                             "processes; output is byte-identical for any N")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="parallel shard processes (default: serial)")
    parser.add_argument("--grey-link", default=None, metavar="A->B",
                        help="link whose reverse (control) channel greys "
                             "out (default: the config's)")
    parser.add_argument("--grey-rate", type=float, default=None, metavar="P",
                        help="control-channel loss rate (default 0.2)")
    parser.add_argument("--no-grey", action="store_true",
                        help="disable the control-plane-grey fault entirely")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="write health JSON, HTML dashboard, trace "
                             "JSONL and Prometheus text to DIR")
    return parser


def _config(args: argparse.Namespace) -> ServeConfig:
    config = ServeConfig.quick(seed=args.seed) if args.quick \
        else ServeConfig(seed=args.seed)
    overrides: dict[str, Any] = {}
    if args.duration is not None:
        overrides["duration_s"] = args.duration
    if args.no_grey:
        overrides["grey_link"] = None
    elif args.grey_link is not None:
        overrides["grey_link"] = args.grey_link
    if args.grey_rate is not None:
        overrides["grey_rate"] = args.grey_rate
    return dataclasses.replace(config, **overrides) if overrides else config


def _print_snapshots(result: ServeResult) -> None:
    for snapshot in result.snapshots:
        status = " ".join(f"{k}={v}"
                          for k, v in snapshot["status"].items())
        print(f"  t={snapshot['t']:>9.0f}s  {status}")
    states = " ".join(f"{lid}={state}"
                      for lid, state in result.ladder_states.items()
                      if state != "healthy") or "all healthy"
    print(f"ladders: {states}")
    if result.absorbed_exhaustions:
        print(f"absorbed exhaustions: {result.absorbed_exhaustions}")
    if result.breaches:
        counts = " ".join(f"{k}={v}" for k, v in result.breaches.items())
        print(f"!! invariant breaches: {counts}")
        for violation in result.violations[:10]:
            print(f"   {violation['invariant']} @ t={violation['time']:.3f}: "
                  f"{violation['detail']}")
    else:
        print("invariants: clean (zero breaches)")


def _health_section(result: ServeResult) -> dict[str, Any]:
    """Shape the final snapshot as a dashboard section (obs.report)."""
    rows = result.snapshots[-1]["links"] if result.snapshots else []
    latencies = [lat for row in rows
                 for lat in row.get("detection_latencies", [])]
    summary = {
        "sim_time": result.config.duration_s,
        "links": len(result.links),
        "status": result.snapshots[-1]["status"] if result.snapshots else {},
        "detections": sum(sum(row["detections"].values()) for row in rows),
        "sessions_completed": sum(result.sessions_completed.values()),
        "unattributed_detections": sum(row["unattributed_detections"]
                                       for row in rows),
        "invariant_breaches": dict(result.breaches),
        "absorbed_exhaustions": result.absorbed_exhaustions,
        "detection_latency": {
            "count": len(latencies),
            "min": min(latencies) if latencies else None,
            "mean": (sum(latencies) / len(latencies)) if latencies else None,
            "max": max(latencies) if latencies else None,
        },
    }
    spans = [json.loads(line)
             for line in result.trace_jsonl.splitlines() if line.strip()]
    return {"name": "serve soak", "health": {"summary": summary,
                                             "links": rows, "topology": []},
            "spans": spans}


def _write_artifacts(result: ServeResult, out_dir: pathlib.Path) -> None:
    from ..obs.report import render_html

    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "serve-health.json").write_text(result.health_json + "\n")
    (out_dir / "serve-traces.jsonl").write_text(result.trace_jsonl)
    (out_dir / "serve-metrics.prom").write_text(result.prometheus)
    (out_dir / "serve-result.json").write_text(
        json.dumps(result.to_dict(), sort_keys=True) + "\n")
    (out_dir / "serve-report.html").write_text(
        render_html([_health_section(result)],
                    title="FANcY serve soak report"))
    for name in ("serve-health.json", "serve-traces.jsonl",
                 "serve-metrics.prom", "serve-result.json",
                 "serve-report.html"):
        print(f"wrote {out_dir / name}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(
        list(argv) if argv is not None else None)
    config = _config(args)
    runtime = RuntimeContext(workers=args.workers, cache_dir=None,
                             progress=False)
    grey = (f"control-plane-grey on reverse of {config.grey_link} "
            f"@ {config.grey_rate:.0%}" if config.grey_link else "no fault")
    print(f"serve: ring-{config.ring_size}, "
          f"{config.duration_s:g}s simulated, top-{config.top_n} churn "
          f"every {config.churn_every_s:g}s, {grey}, "
          f"shards={args.shards}")
    result = run_serve(config, shards=args.shards, runtime=runtime)
    _print_snapshots(result)
    if args.out is not None:
        _write_artifacts(result, pathlib.Path(args.out))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
