"""Hardware resource accounting (Appendix B.2, Table 4).

Two layers:

* **Memory accounting** — exact reimplementation of the Appendix B.2
  arithmetic: state machines (96 bits per FSM pair), dedicated counters
  (64 bits per entry), the non-pipelined hash tree (2·32·w counter bits
  plus 40 bits of zooming state per port), and the rerouting structures
  (1-bit flag array plus a 2×100 K-cell Bloom filter).  These reproduce
  the paper's 192 KB / 128 KB / 47.6 KB / ~28 KB / 367.6 KB numbers.

* **Resource-share model** — Table 4 reports compiler-measured shares of
  seven resource classes for three FANcY configurations and switch.p4.
  The P4 compiler is not available here, so the model decomposes the
  published table into per-component cost vectors (dedicated counters,
  tree + zooming, rerouting) that compose back to the published columns;
  SRAM additionally scales with the configured memory budget, the only
  resource the paper says grows with budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .tofino import TOFINO_32PORT, TofinoProfile

__all__ = [
    "fsm_memory_bits",
    "dedicated_counter_memory_bits",
    "hashtree_memory_bits",
    "rerouting_memory_bits",
    "total_fancy_memory_bits",
    "ResourceShares",
    "RESOURCE_CLASSES",
    "COMPONENT_COSTS",
    "SWITCH_P4",
    "resource_usage",
    "TABLE4_CONFIGS",
]

#: Appendix B.2: per FSM pair, state counter (32) + current state (8) +
#: state lock (8) bits, at both ingress and egress.
FSM_BITS_PER_PAIR = (32 + 8 + 8) * 2


def fsm_memory_bits(n_fsms_per_port: int = 512, n_ports: int = 32) -> int:
    """State-machine register memory (B.2: 512/port × 32 ports = 192 KB)."""
    return FSM_BITS_PER_PAIR * n_fsms_per_port * n_ports


def dedicated_counter_memory_bits(n_entries_per_port: int = 512, n_ports: int = 32) -> int:
    """Dedicated counters (B.2: one 32-bit pair per entry → 128 KB)."""
    return 32 * 2 * n_entries_per_port * n_ports


def hashtree_memory_bits(width: int = 190, n_ports: int = 32) -> int:
    """Non-pipelined split-1 tree as implemented on the Tofino (B.2).

    Memory cells are reused across levels, so only one node of counters
    (two 32-bit registers × width) plus 40 bits of zooming state
    (stage 8 + max0 16 + max1 16) exist per port: 47.6 KB for the
    32-port switch at width 190.
    """
    per_port = 32 * 2 * width + (8 + 16 + 16)
    return per_port * n_ports


def rerouting_memory_bits(
    n_entries_per_port: int = 512, n_ports: int = 32, bloom_cells: int = 100_000
) -> int:
    """Rerouting structures (B.2): a 1-bit flag per dedicated entry and
    port, plus a Bloom filter of two 1-bit registers of ``bloom_cells``."""
    flags = n_entries_per_port * n_ports
    bloom = 2 * bloom_cells
    return flags + bloom


def total_fancy_memory_bits(
    n_entries_per_port: int = 512,
    width: int = 190,
    n_ports: int = 32,
    n_fsms_per_port: int = 512,
    with_rerouting: bool = False,
) -> int:
    """B.2 bottom line: 367.6 KB without rerouting, ≈394 KB with."""
    total = (
        fsm_memory_bits(n_fsms_per_port, n_ports)
        + dedicated_counter_memory_bits(n_entries_per_port, n_ports)
        + hashtree_memory_bits(width, n_ports)
    )
    if with_rerouting:
        total += rerouting_memory_bits(n_entries_per_port, n_ports)
    return total


# --------------------------------------------------------------------------
# Table 4 resource-share model
# --------------------------------------------------------------------------

RESOURCE_CLASSES = (
    "SRAM",
    "Stateful ALU",
    "VLIW Actions",
    "TCAM",
    "Hash bits",
    "Ternary Xbar",
    "Exact Xbar",
)


@dataclass(frozen=True)
class ResourceShares:
    """Percent usage of each Table 4 resource class on a 32-port Tofino."""

    sram: float
    stateful_alu: float
    vliw_actions: float
    tcam: float
    hash_bits: float
    ternary_xbar: float
    exact_xbar: float

    def __add__(self, other: "ResourceShares") -> "ResourceShares":
        return ResourceShares(
            self.sram + other.sram,
            self.stateful_alu + other.stateful_alu,
            self.vliw_actions + other.vliw_actions,
            self.tcam + other.tcam,
            self.hash_bits + other.hash_bits,
            self.ternary_xbar + other.ternary_xbar,
            self.exact_xbar + other.exact_xbar,
        )

    def as_dict(self) -> dict:
        return {
            "SRAM": self.sram,
            "Stateful ALU": self.stateful_alu,
            "VLIW Actions": self.vliw_actions,
            "TCAM": self.tcam,
            "Hash bits": self.hash_bits,
            "Ternary Xbar": self.ternary_xbar,
            "Exact Xbar": self.exact_xbar,
        }

    def dominated_by(self, other: "ResourceShares", except_for: tuple = ()) -> bool:
        """True if every resource (except the named ones) uses no more than
        ``other`` — Table 4's claim versus switch.p4, modulo SALUs."""
        mine, theirs = self.as_dict(), other.as_dict()
        return all(
            mine[k] <= theirs[k] for k in mine if k not in except_for
        )


#: Per-component cost vectors decomposed from Table 4 (percent of a
#: 32-port Tofino).  "dedicated" is the Dedicated Counters column;
#: "tree" and "rerouting" are the successive column differences.
COMPONENT_COSTS: dict[str, ResourceShares] = {
    "dedicated": ResourceShares(4.80, 16.66, 9.4, 1.4, 5.8, 1.8, 5.1),
    "tree": ResourceShares(1.85, 10.42, 4.7, 0.7, 6.0, 1.30, 5.7),
    "rerouting": ResourceShares(1.45, 6.25, 1.5, 0.0, 1.3, 0.00, 1.5),
}

#: Reference application column of Table 4.
SWITCH_P4 = ResourceShares(29.58, 14.58, 36.72, 32.29, 34.74, 43.18, 29.36)

#: Table 4 columns expressed as component compositions.
TABLE4_CONFIGS: dict[str, tuple[str, ...]] = {
    "Dedicated Counters": ("dedicated",),
    "Full FANcY": ("dedicated", "tree"),
    "FANcY + Rerouting": ("dedicated", "tree", "rerouting"),
}


def resource_usage(
    config: str,
    memory_budget_bytes: Optional[float] = None,
    profile: TofinoProfile = TOFINO_32PORT,
) -> ResourceShares:
    """Resource shares for a Table 4 configuration.

    SRAM is the only resource that grows when FANcY is given a larger
    memory budget (§6): when ``memory_budget_bytes`` is provided, the SRAM
    share is recomputed as budget / total switch SRAM, floored at the
    published baseline.
    """
    if config not in TABLE4_CONFIGS:
        raise KeyError(f"unknown configuration {config!r}; "
                       f"choose from {sorted(TABLE4_CONFIGS)}")
    total = ResourceShares(0, 0, 0, 0, 0, 0, 0)
    for component in TABLE4_CONFIGS[config]:
        total = total + COMPONENT_COSTS[component]
    if memory_budget_bytes is not None:
        scaled_sram = 100.0 * memory_budget_bytes / profile.total_sram_bytes
        if scaled_sram > total.sram:
            total = ResourceShares(
                scaled_sram, total.stateful_alu, total.vliw_actions, total.tcam,
                total.hash_bits, total.ternary_xbar, total.exact_xbar,
            )
    return total
