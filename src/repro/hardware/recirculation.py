"""Recirculation cost model (Appendix B.1).

Tofino register arrays allow one access per packet per stage, and state
transitions cannot read-modify-write complex state in one pass.  The
prototype therefore pays pipeline passes:

* every FSM **state transition** takes two passes — the first matches the
  ``next_state`` table, locks the state, and resubmits/clones; the second
  performs the update;
* at the end of each tree counting session, the downstream reads all
  ``width`` counters of a node by recirculating a packet ``width`` times,
  and the upstream compares them the same way (computing the running
  max-difference in a custom header of the recirculated packet).

Recirculated packets consume pipeline bandwidth that would otherwise
carry traffic, so this model answers: what fraction of a Tofino pipe's
packet budget does FANcY's recirculation cost?  (Tiny, it turns out —
another reason the design is deployable.)
"""

from __future__ import annotations

from dataclasses import dataclass

from .tofino import TOFINO_32PORT, TofinoProfile

__all__ = ["RecirculationModel"]

#: Appendix B.1: each state transition is implemented in two steps.
PASSES_PER_TRANSITION = 2

#: FSM transitions per counting session: Idle→WaitACK→Counting→
#: WaitReport→(check)→Idle on the sender, plus the receiver's mirror.
TRANSITIONS_PER_SESSION = 4


@dataclass(frozen=True)
class RecirculationModel:
    """Pipeline-pass accounting for one FANcY switch.

    Args:
        profile: hardware envelope.
        pipeline_pps: packet-processing budget of one pipe (Tofino 1 is
            marketed at ≈2B pps per pipe at 100 G line rate across 16
            ports; the default keeps that order of magnitude).
    """

    profile: TofinoProfile = TOFINO_32PORT
    pipeline_pps: float = 2e9

    def fsm_passes_per_second(self, n_fsms: int, session_s: float) -> float:
        """Recirculated passes from FSM transitions (both FSM sides)."""
        sessions_per_second = 1.0 / session_s
        return (n_fsms * 2 * TRANSITIONS_PER_SESSION * PASSES_PER_TRANSITION
                * sessions_per_second)

    def tree_read_passes_per_second(self, width: int, session_s: float,
                                    n_ports: int = 1) -> float:
        """Recirculations to read + compare one node's counters per session
        (downstream read w, upstream compare w)."""
        sessions_per_second = 1.0 / session_s
        return 2 * width * sessions_per_second * n_ports

    def total_passes_per_second(
        self,
        n_dedicated_fsms: int = 512,
        dedicated_session_s: float = 0.050,
        tree_width: int = 190,
        tree_session_s: float = 0.200,
        n_ports: int = 32,
    ) -> float:
        """Full-switch recirculation load for the prototype configuration."""
        fsm = self.fsm_passes_per_second(n_dedicated_fsms * n_ports,
                                         dedicated_session_s)
        tree = self.tree_read_passes_per_second(tree_width, tree_session_s,
                                                n_ports)
        # Tree FSMs: one pair per port.
        fsm += self.fsm_passes_per_second(n_ports, tree_session_s)
        return fsm + tree

    def pipeline_fraction(self, **kwargs) -> float:
        """Recirculation load as a fraction of the switch's packet budget."""
        budget = self.pipeline_pps * self.profile.n_pipelines
        return self.total_passes_per_second(**kwargs) / budget
