"""Intel Tofino hardware model (Appendix B).

Captures the constraints the paper designs against: per-pipeline stages
with limited SRAM each, one register access per packet per stage (which
forces the w-fold recirculation when reading tree counters), and the
two-step state-transition implementation of the FSMs.

The numbers are the public Tofino-1 (Wedge 100BF-32X) envelope the paper
cites: ~12-15 MB SRAM per pipeline, split across stages, shared by all
in-switch applications (§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TofinoProfile", "TOFINO_32PORT", "recirculations_for_tree_read"]


@dataclass(frozen=True)
class TofinoProfile:
    """Resource envelope of one Tofino switch."""

    name: str
    n_ports: int
    n_pipelines: int
    stages_per_pipeline: int
    sram_per_pipeline_bytes: float

    @property
    def sram_per_stage_bytes(self) -> float:
        return self.sram_per_pipeline_bytes / self.stages_per_pipeline

    @property
    def total_sram_bytes(self) -> float:
        return self.sram_per_pipeline_bytes * self.n_pipelines


#: The Wedge 100BF-32X used in §6 (Tofino 1, 32 × 100 Gbps).
TOFINO_32PORT = TofinoProfile(
    name="Wedge 100BF-32X",
    n_ports=32,
    n_pipelines=2,
    stages_per_pipeline=12,
    sram_per_pipeline_bytes=13.5e6,
)


def recirculations_for_tree_read(width: int) -> int:
    """Appendix B.1: register arrays can be accessed once per packet, so
    reading/comparing all ``width`` counters of a node takes ``width``
    recirculated packets."""
    if width < 1:
        raise ValueError("width must be >= 1")
    return width
