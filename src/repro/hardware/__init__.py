"""Tofino hardware model: resource envelope (Appendix B), memory
accounting (B.2), and the Table 4 resource-share model."""

from .resources import (
    COMPONENT_COSTS,
    RESOURCE_CLASSES,
    SWITCH_P4,
    TABLE4_CONFIGS,
    ResourceShares,
    dedicated_counter_memory_bits,
    fsm_memory_bits,
    hashtree_memory_bits,
    rerouting_memory_bits,
    resource_usage,
    total_fancy_memory_bits,
)
from .recirculation import RecirculationModel
from .tofino import TOFINO_32PORT, TofinoProfile, recirculations_for_tree_read

__all__ = [
    "TofinoProfile",
    "TOFINO_32PORT",
    "recirculations_for_tree_read",
    "RecirculationModel",
    "ResourceShares",
    "RESOURCE_CLASSES",
    "COMPONENT_COSTS",
    "SWITCH_P4",
    "TABLE4_CONFIGS",
    "resource_usage",
    "fsm_memory_bits",
    "dedicated_counter_memory_bits",
    "hashtree_memory_bits",
    "rerouting_memory_bits",
    "total_fancy_memory_bits",
]
