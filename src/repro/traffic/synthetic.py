"""Synthetic workloads: the §5.1 benchmarking grid.

The paper sweeps 18 entry sizes, each a (total throughput, flows per
second) pair from 4 Kbps / 1 fps up to 500 Mbps / 250 fps, against 6 loss
rates.  :data:`ENTRY_SIZE_GRID` reproduces the exact grid from Figures 7
and 9a, :data:`ENTRY_SIZE_GRID_100` the Figure 9b variant (which tops out
at 200 Mbps), and :data:`LOSS_RATES` the loss-rate axis.

``EntrySize`` also provides the scaled-down variants used by the default
benchmark harness: packet rates are capped while keeping the flow
structure, preserving behaviour shape at tractable simulation cost.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EntrySize", "ENTRY_SIZE_GRID", "ENTRY_SIZE_GRID_100", "LOSS_RATES"]


@dataclass(frozen=True)
class EntrySize:
    """One row of the Figure 7 / 9 heatmaps."""

    rate_bps: float
    flows_per_second: float

    @property
    def label(self) -> str:
        rate = self.rate_bps
        if rate >= 1e6:
            rate_s = f"{rate / 1e6:g}Mbps"
        else:
            rate_s = f"{rate / 1e3:g}Kbps"
        return f"{rate_s}/{self.flows_per_second:g}"

    @property
    def per_flow_bps(self) -> float:
        return self.rate_bps / self.flows_per_second

    def packets_per_second(self, packet_size: int = 1500) -> float:
        return self.rate_bps / (packet_size * 8)

    def scaled(self, max_pps: float, packet_size: int = 1500) -> "EntrySize":
        """Cap the packet rate at ``max_pps`` preserving the flow count.

        Used by the reduced benchmark harness: detection behaviour depends
        on packets per counting session, which saturates well below the
        paper's fattest entries, so capping preserves the heatmap shape.
        """
        pps = self.packets_per_second(packet_size)
        if pps <= max_pps:
            return self
        return EntrySize(max_pps * packet_size * 8, self.flows_per_second)


def _grid(rows: list[tuple[float, float]]) -> tuple[EntrySize, ...]:
    return tuple(EntrySize(rate, fps) for rate, fps in rows)


#: Figure 7 / 9a rows, largest to smallest (paper order).
ENTRY_SIZE_GRID: tuple[EntrySize, ...] = _grid([
    (500e6, 250), (100e6, 200), (50e6, 150), (10e6, 150), (10e6, 100),
    (1e6, 100), (1e6, 50), (500e3, 50), (500e3, 25), (100e3, 25),
    (100e3, 10), (50e3, 10), (50e3, 5), (25e3, 5), (25e3, 2),
    (8e3, 2), (8e3, 1), (4e3, 1),
])

#: Figure 9b rows (100-entry failures; the grid tops out at 200 Mbps).
ENTRY_SIZE_GRID_100: tuple[EntrySize, ...] = _grid([
    (200e6, 200), (100e6, 200), (50e6, 150), (10e6, 150), (10e6, 100),
    (1e6, 100), (1e6, 50), (500e3, 50), (500e3, 25), (100e3, 25),
    (100e3, 10), (50e3, 10), (50e3, 5), (25e3, 5), (25e3, 2),
    (8e3, 2), (8e3, 1), (4e3, 1),
])

#: Loss-rate axis of the heatmaps: 100 %, 50 %, 10 %, 1 %, 0.1 %, and the
#: paper's "5.0·10⁻⁷" column header which is the 50 % row rendered oddly —
#: reading Figure 7's x axis left to right: 100, 50, 10, 1, 0.1, plus a
#: near-zero control.  We use the five meaningful rates.
LOSS_RATES: tuple[float, ...] = (1.0, 0.5, 0.1, 0.01, 0.001)
