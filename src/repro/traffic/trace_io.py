"""Trace-slice serialization.

Lets experiments snapshot the exact workload they ran (a
:class:`~repro.traffic.caida.TraceSlice`) to JSON and reload it later —
so a Table 3 result can be re-examined against the *same* per-prefix
rates without regenerating the synthetic trace, and so users can feed
their own measured per-prefix workloads into the harness in place of the
synthetic CAIDA model.

Format (versioned)::

    {
      "format": "fancy-trace-slice/1",
      "packet_size": 783,
      "prefixes": [
        {"prefix": "1.2.3.0/24", "rate_bps": 123456.0, "flows_per_second": 3.5},
        ...
      ]
    }
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from .caida import TraceSlice

__all__ = ["save_slice", "load_slice", "slice_to_dict", "slice_from_dict"]

FORMAT = "fancy-trace-slice/1"


def slice_to_dict(sl: TraceSlice) -> dict:
    """Serializable representation of a slice (heaviest prefix first)."""
    return {
        "format": FORMAT,
        "packet_size": sl.packet_size,
        "prefixes": [
            {
                "prefix": prefix,
                "rate_bps": sl.rates_bps[prefix],
                "flows_per_second": sl.flows_per_second[prefix],
            }
            for prefix in sl.prefixes
        ],
    }


def slice_from_dict(data: dict) -> TraceSlice:
    """Inverse of :func:`slice_to_dict`, with format validation."""
    if data.get("format") != FORMAT:
        raise ValueError(
            f"unsupported trace-slice format {data.get('format')!r}; "
            f"expected {FORMAT!r}"
        )
    prefixes = []
    rates = {}
    fps = {}
    for row in data.get("prefixes", []):
        prefix = row["prefix"]
        if prefix in rates:
            raise ValueError(f"duplicate prefix {prefix!r} in slice")
        rate = float(row["rate_bps"])
        flow_rate = float(row["flows_per_second"])
        if rate < 0 or flow_rate <= 0:
            raise ValueError(f"invalid rates for {prefix!r}")
        prefixes.append(prefix)
        rates[prefix] = rate
        fps[prefix] = flow_rate
    prefixes.sort(key=lambda p: -rates[p])
    return TraceSlice(
        prefixes=tuple(prefixes),
        rates_bps=rates,
        flows_per_second=fps,
        packet_size=int(data.get("packet_size", 1500)),
    )


def save_slice(sl: TraceSlice, path: Union[str, pathlib.Path]) -> None:
    """Write a slice to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(slice_to_dict(sl), indent=1))


def load_slice(path: Union[str, pathlib.Path]) -> TraceSlice:
    """Read a slice from a JSON file."""
    return slice_from_dict(json.loads(pathlib.Path(path).read_text()))
