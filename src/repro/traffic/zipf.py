"""Zipf traffic distributions.

ISP traffic per prefix is heavily skewed (Sarrar et al., "Leveraging
Zipf's law for traffic offloading", cited by the paper as the rationale
for dedicated counters covering the few heavy prefixes).  The uniform-
failure experiments (§5.1.3) assign traffic to entries "mimicking a Zipf
distribution"; the CAIDA-like trace synthesizer reuses this module.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

__all__ = ["zipf_weights", "assign_rates", "sample_zipf_ranks"]


def zipf_weights(n: int, alpha: float = 1.0) -> list[float]:
    """Normalized Zipf weights for ranks 1..n: ``w_i ∝ 1 / i^alpha``."""
    if n <= 0:
        raise ValueError("need at least one rank")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    raw = [1.0 / (i ** alpha) for i in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def assign_rates(
    entries: Sequence, total_rate_bps: float, alpha: float = 1.0
) -> dict:
    """Split ``total_rate_bps`` across entries by Zipf rank (first entry is
    rank 1, i.e. the heaviest)."""
    weights = zipf_weights(len(entries), alpha)
    return {entry: total_rate_bps * w for entry, w in zip(entries, weights)}


def sample_zipf_ranks(n: int, count: int, alpha: float = 1.0, seed: int = 0) -> list[int]:
    """Sample ``count`` ranks in [0, n) with Zipf probabilities.

    Uses inverse-CDF sampling over the exact normalized weights; fine for
    the populations used here (≤ a few hundred thousand entries).
    """
    if count < 0:
        raise ValueError("count cannot be negative")
    weights = zipf_weights(n, alpha)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc)
    rng = random.Random(seed)
    out = []
    for _ in range(count):
        u = rng.random()
        out.append(_bisect(cdf, u))
    return out


def _bisect(cdf: list[float], u: float) -> int:
    lo, hi = 0, len(cdf) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cdf[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return lo


def flows_for_rate(rate_bps: float, per_flow_bps: float = 50e3, minimum: int = 1) -> int:
    """Heuristic flow-arrival rate for an entry of a given size, mirroring
    the paper's grid where fatter entries also see more flows/s (their
    ratio spans ≈2–4 Kbps per flow at the low end to 2 Mbps at the top).
    """
    return max(minimum, round(math.sqrt(rate_bps / 1e3)))


__all__.append("flows_for_rate")
