"""CAIDA-like trace synthesis (§5.2, Appendix C).

The paper evaluates FANcY on four CAIDA anonymized backbone traces whose
aggregate characteristics are published in Table 5.  The traces themselves
are not redistributable, so this module synthesizes traces that match the
published statistics:

* aggregate bit rate, packet rate and flow rate per Table 5;
* ≈250 K /24 destination prefixes on average (§5.2), ≈560 K for trace 4
  (Appendix D);
* a heavy-tailed traffic-per-prefix distribution calibrated to the
  paper's two anchors: the top-500 prefixes carry ≈60 % of the bytes
  (the remaining ≈249 K carry ≈40 %, §5.2) and the top-10,000 carry
  ≥95 % (§5.2 methodology).  A Zipf–Mandelbrot law with ``a = 1.7``,
  ``q = 150`` hits both anchors within a few percent.

Experiments extract 30-second *slices* and drive the simulator with one
flow generator per prefix — optionally scaled down (fewer prefixes,
capped packet rates) to keep Python-side simulation tractable while
preserving the distributional shape.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..runtime.jobs import stable_seed
from .prefixes import PrefixSpace

__all__ = [
    "TraceSpec",
    "CAIDA_TRACES",
    "SyntheticCaidaTrace",
    "TraceSlice",
    "zipf_mandelbrot_weights",
]

#: Calibrated heavy-tail parameters (see module docstring).
DEFAULT_ALPHA = 1.7
DEFAULT_Q = 150.0


@dataclass(frozen=True)
class TraceSpec:
    """Published characteristics of one CAIDA trace (Table 5)."""

    trace_id: int
    link: str
    date: str
    bit_rate_bps: float
    packet_rate_pps: float
    flow_rate_fps: float
    size_bytes: float
    duration_s: float
    n_prefixes: int

    @property
    def mean_packet_size(self) -> float:
        return self.bit_rate_bps / 8 / self.packet_rate_pps


#: Table 5, with prefix populations from §5.2 (≈250 K average) and
#: Appendix D (trace 4 has ≈560 K, the most prefixes).
CAIDA_TRACES: tuple[TraceSpec, ...] = (
    TraceSpec(1, "caida-equinix-chicago.dirB", "19-06-2014",
              6.25e9, 759.1e3, 28.3e3, 163e9, 3719, 230_000),
    TraceSpec(2, "caida-equinix-nyc.dirA", "19-04-2018",
              3.86e9, 557e3, 26.4e3, 125e9, 3719, 210_000),
    TraceSpec(3, "caida-equinix-nyc.dirB", "16-08-2018",
              5.79e9, 2.03e6, 104.5e3, 465e9, 3719, 250_000),
    TraceSpec(4, "caida-equinix-nyc.dirB", "17-01-2019",
              4.72e9, 1.56e6, 90.7e3, 345e9, 3720, 560_000),
)


def zipf_mandelbrot_weights(n: int, alpha: float = DEFAULT_ALPHA, q: float = DEFAULT_Q) -> list[float]:
    """Normalized Zipf–Mandelbrot weights ``w_i ∝ (i + q)^-alpha``."""
    if n <= 0:
        raise ValueError("need at least one prefix")
    raw = [(i + q) ** (-alpha) for i in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


@dataclass(frozen=True)
class TraceSlice:
    """A time slice of a trace, ready to drive flow generators.

    Attributes:
        prefixes: prefixes present in the slice, heaviest first.
        rates_bps: per-prefix bit rate.
        flows_per_second: per-prefix flow arrival rate.
        packet_size: mean packet size to use for generated flows.
    """

    prefixes: tuple
    rates_bps: dict
    flows_per_second: dict
    packet_size: int

    @property
    def total_rate_bps(self) -> float:
        return sum(self.rates_bps.values())

    def top(self, n: int) -> list:
        return list(self.prefixes[:n])


class SyntheticCaidaTrace:
    """A synthesized trace matching a :class:`TraceSpec`.

    Args:
        spec: published trace characteristics to match.
        seed: RNG seed (prefix identities, jitter).
        n_prefixes: override the prefix population (downscaling).
        alpha, q: heavy-tail parameters.
    """

    def __init__(
        self,
        spec: TraceSpec,
        seed: int = 0,
        n_prefixes: Optional[int] = None,
        alpha: float = DEFAULT_ALPHA,
        q: float = DEFAULT_Q,
    ):
        self.spec = spec
        self.seed = seed
        self.n_prefixes = n_prefixes if n_prefixes is not None else spec.n_prefixes
        self.alpha = alpha
        self.q = q
        self.space = PrefixSpace(self.n_prefixes, seed=seed + spec.trace_id * 7919)
        self._weights = zipf_mandelbrot_weights(self.n_prefixes, alpha, q)
        # Flow arrivals skew less than bytes: heavier prefixes host fatter
        # flows, not only more flows.  sqrt-proportional allocation keeps
        # per-flow rates spanning the paper's grid.
        flow_raw = [math.sqrt(w) for w in self._weights]
        flow_total = sum(flow_raw)
        self._flow_share = [f / flow_total for f in flow_raw]

    # -- whole-trace statistics ---------------------------------------------

    @property
    def prefixes(self) -> Sequence[str]:
        """Prefixes ordered by traffic rank (heaviest first)."""
        return self.space.prefixes

    def rate_of(self, rank: int) -> float:
        """Bit rate of the prefix at ``rank`` (0-based)."""
        return self.spec.bit_rate_bps * self._weights[rank]

    def top_share(self, n: int) -> float:
        """Fraction of bytes carried by the top-``n`` prefixes."""
        return sum(self._weights[: min(n, self.n_prefixes)])

    def top_prefixes(self, n: int) -> list[str]:
        return list(self.space.prefixes[:n])

    def table5_row(self) -> dict:
        """Row for the Table 5 regeneration."""
        s = self.spec
        return {
            "trace_id": s.trace_id,
            "link": s.link,
            "date": s.date,
            "bit_rate_gbps": s.bit_rate_bps / 1e9,
            "packet_rate_pps": s.packet_rate_pps,
            "flow_rate_fps": s.flow_rate_fps,
            "size_gb": s.size_bytes / 1e9,
            "duration_s": s.duration_s,
            "n_prefixes": self.n_prefixes,
            "mean_packet_size": s.mean_packet_size,
            "top500_byte_share": self.top_share(500),
            "top10000_byte_share": self.top_share(10_000),
        }

    # -- slice extraction ------------------------------------------------------

    def slice(
        self,
        start_s: Optional[float] = None,
        duration_s: float = 30.0,
        max_prefixes: Optional[int] = None,
        rate_scale: float = 1.0,
        min_rate_bps: float = 1e3,
        jitter: float = 0.2,
    ) -> TraceSlice:
        """Extract a randomized slice of the trace.

        Per-prefix rates are the trace-wide means perturbed by lognormal-ish
        jitter (prefix activity varies slice to slice — the paper notes the
        top prefixes of a slice need not match the trace-wide top-500).

        Args:
            start_s: slice offset; only used to derive the jitter RNG, as
                the synthetic model is stationary.
            duration_s: slice length (30 s in the paper's methodology).
            max_prefixes: keep only the heaviest N prefixes (downscaling).
            rate_scale: multiply all rates (downscaling).
            min_rate_bps: drop prefixes below this rate after scaling.
            jitter: multiplicative rate perturbation amplitude.
        """
        if duration_s <= 0:
            raise ValueError("slice duration must be positive")
        rng = random.Random(stable_seed(self.seed, self.spec.trace_id, start_s, duration_s))
        n = self.n_prefixes if max_prefixes is None else min(max_prefixes, self.n_prefixes)
        prefixes = []
        rates: dict[str, float] = {}
        fps: dict[str, float] = {}
        total_fps = self.spec.flow_rate_fps
        for rank in range(n):
            prefix = self.space.prefixes[rank]
            factor = math.exp(rng.uniform(-jitter, jitter))
            rate = self.spec.bit_rate_bps * self._weights[rank] * factor * rate_scale
            if rate < min_rate_bps:
                continue
            prefixes.append(prefix)
            rates[prefix] = rate
            flow_rate = total_fps * self._flow_share[rank] * rate_scale
            # At least one flow every slice so the prefix is observable.
            fps[prefix] = max(flow_rate, 1.0 / duration_s)
        prefixes.sort(key=lambda p: -rates[p])
        return TraceSlice(
            prefixes=tuple(prefixes),
            rates_bps=rates,
            flows_per_second=fps,
            packet_size=int(round(self.spec.mean_packet_size)),
        )
