"""Workload generation: prefixes, the §5.1 synthetic grid, Zipf skew, and
CAIDA-like trace synthesis."""

from .caida import (
    CAIDA_TRACES,
    SyntheticCaidaTrace,
    TraceSlice,
    TraceSpec,
    zipf_mandelbrot_weights,
)
from .prefixes import PrefixSpace, prefix_str, random_slash24s
from .synthetic import ENTRY_SIZE_GRID, ENTRY_SIZE_GRID_100, LOSS_RATES, EntrySize
from .zipf import assign_rates, flows_for_rate, sample_zipf_ranks, zipf_weights

__all__ = [
    "PrefixSpace",
    "prefix_str",
    "random_slash24s",
    "EntrySize",
    "ENTRY_SIZE_GRID",
    "ENTRY_SIZE_GRID_100",
    "LOSS_RATES",
    "zipf_weights",
    "assign_rates",
    "sample_zipf_ranks",
    "flows_for_rate",
    "TraceSpec",
    "CAIDA_TRACES",
    "SyntheticCaidaTrace",
    "TraceSlice",
    "zipf_mandelbrot_weights",
]
