"""IPv4 prefix utilities.

Entries in the evaluation are destination prefixes.  We keep them as
plain strings (``"a.b.c.0/24"``) so they stay hashable and readable in
reports, and provide helpers to synthesize realistic prefix populations
(CAIDA traces anonymize at /24 granularity, §5.2).
"""

from __future__ import annotations

import random
from typing import Iterator

__all__ = ["prefix_str", "random_slash24s", "PrefixSpace"]


def prefix_str(value: int, length: int = 24) -> str:
    """Render a 32-bit integer network address as ``a.b.c.d/len``."""
    if not 0 <= value < 2 ** 32:
        raise ValueError(f"address out of range: {value}")
    octets = [(value >> shift) & 0xFF for shift in (24, 16, 8, 0)]
    return ".".join(str(o) for o in octets) + f"/{length}"


def random_slash24s(count: int, seed: int = 0) -> list[str]:
    """``count`` distinct random /24 prefixes (deterministic per seed)."""
    if count < 0:
        raise ValueError("count cannot be negative")
    if count > 2 ** 24:
        raise ValueError("not that many /24s exist")
    rng = random.Random(seed)
    nets = rng.sample(range(2 ** 24), count)
    return [prefix_str(n << 8) for n in nets]


class PrefixSpace:
    """A reusable universe of /24 prefixes for experiments.

    Provides stable prefix identities across repetitions so that, e.g.,
    "the 500 top prefixes" and "the failed prefixes" refer to the same
    strings in every run with the same seed.
    """

    def __init__(self, count: int, seed: int = 0):
        self.prefixes = random_slash24s(count, seed)
        self._index = {p: i for i, p in enumerate(self.prefixes)}

    def __len__(self) -> int:
        return len(self.prefixes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.prefixes)

    def __getitem__(self, i: int) -> str:
        return self.prefixes[i]

    def index(self, prefix: str) -> int:
        return self._index[prefix]

    def sample(self, count: int, seed: int = 0) -> list[str]:
        rng = random.Random(seed)
        return rng.sample(self.prefixes, count)
