"""Content-addressed on-disk result cache.

Results are stored as JSON under ``<cache_dir>/<fp[:2]>/<fp>.json`` where
``fp`` is the job's :func:`repro.runtime.jobs.fingerprint`.  Writes are
atomic (tmp file + ``os.replace``) so a run killed mid-sweep never leaves
a truncated entry; corrupt or unreadable entries read as misses and are
recomputed.

The cache is what makes ``--full`` sweeps resumable: every completed
cell is persisted the moment it finishes, so re-running an interrupted
sweep with the same ``--cache-dir`` skips straight to the cells that are
still missing.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Optional, Union

__all__ = ["ResultCache", "NullCache", "open_cache", "DEFAULT_CACHE_DIR"]

#: Default cache directory used by the CLI (relative to the CWD).
DEFAULT_CACHE_DIR = ".fancy-cache"

_FORMAT = 1


class NullCache:
    """Cache stand-in that stores nothing (``--no-cache``)."""

    enabled = False

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def get(self, fingerprint: str) -> Optional[Any]:
        if fingerprint:
            self.misses += 1
        return None

    def put(self, fingerprint: str, payload: Any) -> None:  # pragma: no cover - trivial
        return None


class ResultCache:
    """JSON result cache keyed by content fingerprint."""

    enabled = True

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def _path(self, fingerprint: str) -> Path:
        return self.directory / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[Any]:
        """Return the cached payload for ``fingerprint`` or None (miss).

        Corrupt / truncated / foreign-format entries count as misses.
        """
        if not fingerprint:
            return None
        path = self._path(fingerprint)
        try:
            with path.open(encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(entry, dict) or entry.get("format") != _FORMAT \
                or entry.get("fingerprint") != fingerprint:
            self.misses += 1
            return None
        self.hits += 1
        return entry.get("payload")

    def put(self, fingerprint: str, payload: Any) -> None:
        """Persist ``payload`` (must be JSON-serializable) atomically."""
        if not fingerprint:
            return
        path = self._path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": _FORMAT,
            "fingerprint": fingerprint,
            # Cache-entry metadata, excluded from the job fingerprint;
            # sanctioned as an FCY011 taint barrier.
            "saved_at": time.time(),  # fancylint: disable=FCY011 -- cache metadata
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=str(path.parent))
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))


def open_cache(directory: Optional[Union[str, Path]]) -> Union[ResultCache, NullCache]:
    """Open a :class:`ResultCache` at ``directory`` (None → no caching)."""
    if directory is None:
        return NullCache()
    return ResultCache(directory)
