"""Execution context threaded explicitly from the CLI to every sweep.

:class:`RuntimeContext` replaces the old ``_WORKERS`` mutable-global hack
in ``repro.cli``: one frozen value object carries the parallelism,
caching, seeding, timeout/retry, and telemetry configuration, and flows
through every ``EXPERIMENTS`` callable as an explicit keyword argument.

Library callers (tests, notebooks) that call ``run_heatmap`` & friends
directly get a hermetic default: serial execution, **no** cache
directory, no progress output.  The CLI builds a context with caching
enabled (``.fancy-cache/`` unless ``--no-cache``), a JSONL run log, and
a live progress line.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

__all__ = ["RuntimeContext", "resolve"]


@dataclass(frozen=True)
class RuntimeContext:
    """How sweeps execute: parallelism, caching, seeding, telemetry.

    Attributes:
        workers: parallel worker processes (None/0/1 = serial).
        cache_dir: result-cache directory (None = caching disabled).
        seed: base RNG seed forwarded to the experiments.
        timeout_s: per-cell wall-clock timeout (None = unlimited).
        retries: how many times a crashed/failed/timed-out cell is
            re-submitted before being reported as failed.
        run_log: JSONL run-log path (None = no log file).
        progress: render the live stderr progress line.
        telemetry: collect a metrics/timeline snapshot per sweep cell
            (attached to each ``cell_done`` run-log event).
        profile: additionally record per-callback wall time inside the
            simulator (implies hotter instrumentation; off by default).
    """

    workers: Optional[int] = None
    cache_dir: Optional[Union[str, Path]] = None
    seed: int = 0
    timeout_s: Optional[float] = None
    retries: int = 1
    run_log: Optional[Union[str, Path]] = None
    progress: bool = False
    telemetry: bool = False
    profile: bool = False

    @property
    def parallel(self) -> bool:
        return bool(self.workers and self.workers > 1)

    def with_(self, **changes) -> "RuntimeContext":
        return dataclasses.replace(self, **changes)


#: Hermetic default used when experiments are called as a library.
_DEFAULT = RuntimeContext()


def resolve(runtime: Optional[RuntimeContext] = None, *,
            workers: Optional[int] = None,
            seed: Optional[int] = None) -> RuntimeContext:
    """Merge an optional context with legacy ``workers=``/``seed=`` kwargs.

    Experiments keep their historical ``workers=N`` keyword for
    backwards compatibility; a bare ``workers=`` call gets the hermetic
    default context with just the parallelism set.
    """
    ctx = runtime if runtime is not None else _DEFAULT
    changes = {}
    if workers is not None and ctx.workers is None:
        changes["workers"] = workers
    if seed is not None:
        changes["seed"] = seed
    return ctx.with_(**changes) if changes else ctx
