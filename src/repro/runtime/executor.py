"""Fault-tolerant (optionally parallel) sweep execution.

:func:`run_sweep` is the single execution path for every sweep
experiment in the repo.  It takes a list of :class:`~repro.runtime.jobs.Job`
and a picklable worker function and provides, on top of a plain process
pool:

* **streaming completion** — results are collected (and cached, and
  reported) as each cell finishes, not in submission order;
* **result caching** — jobs whose fingerprint is already in the cache
  are skipped entirely, which is what makes killed sweeps resumable;
* **per-cell timeouts** — enforced *inside* the worker process via
  ``SIGALRM``, so one wedged simulation cannot stall the whole sweep;
* **bounded retry** — crashed / raising / timed-out cells are
  re-submitted up to ``retries`` times before being reported as failed;
* **partial results** — a sweep with one poisoned cell still returns
  the other N−1 results plus a structured error report (and the failure
  is visible in the JSONL run log).

Worker exceptions are converted to data inside the worker, so ordinary
failures never poison the process pool.  If a worker dies *hard*
(segfault, ``os._exit``), the pool is rebuilt and in-flight jobs are
re-submitted with a slightly larger retry allowance, since pool
breakage cannot be attributed to a single job.
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence

from .cache import open_cache
from .context import RuntimeContext, resolve
from .jobs import Job
from .progress import ProgressReporter, RunLog

__all__ = ["CellTimeout", "SweepResult", "run_sweep"]


class CellTimeout(Exception):
    """Raised inside a worker when a cell exceeds its wall-clock budget."""


def _raise_timeout(signum, frame):  # pragma: no cover - exercised in workers
    raise CellTimeout()


def _invoke(worker: Callable[[Any], Any], payload: Any,
            timeout_s: Optional[float]) -> tuple:
    """Run ``worker(payload)``; never raises — errors become data."""
    start = time.monotonic()
    timer_set = False
    old_handler: Any = None
    try:
        if (
            timeout_s
            and timeout_s > 0
            and threading.current_thread() is threading.main_thread()
        ):
            old_handler = signal.signal(signal.SIGALRM, _raise_timeout)
            signal.setitimer(signal.ITIMER_REAL, timeout_s)
            timer_set = True
        value = worker(payload)
        return "ok", value, time.monotonic() - start
    except CellTimeout:
        return (
            "error",
            {
                "kind": "timeout",
                "type": "CellTimeout",
                "message": f"cell exceeded its {timeout_s:g}s timeout",
                "traceback": "",
            },
            time.monotonic() - start,
        )
    except Exception as exc:
        return (
            "error",
            {
                "kind": "crash",
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(limit=20),
            },
            time.monotonic() - start,
        )
    finally:
        if timer_set:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)


def _pool_entry(item: tuple) -> tuple:
    """Top-level (picklable) process-pool entry point."""
    worker, payload, timeout_s = item
    return _invoke(worker, payload, timeout_s)


@dataclass
class SweepResult:
    """Outcome of a sweep: per-key results, per-key errors, telemetry."""

    results: Dict[Any, Any] = field(default_factory=dict)
    errors: Dict[Any, dict] = field(default_factory=dict)
    summary: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def cache_hits(self) -> int:
        return int(self.summary.get("cache_hits") or 0)

    @property
    def cache_misses(self) -> int:
        return int(self.summary.get("cache_misses") or 0)

    def require_ok(self, label: str = "sweep") -> "SweepResult":
        """Raise if any cell failed — for merges that must be complete.

        Sharded fabric runs merge per-shard payloads into one combined
        result; a silently missing shard would produce a *plausible but
        wrong* merge (fewer links, fewer detections), so they insist on
        completeness instead of returning partial data.
        """
        if self.errors:
            failed = ", ".join(
                f"{key}: {info.get('type', 'error')}({info.get('message', '')})"
                for key, info in sorted(self.errors.items(), key=lambda kv: str(kv[0]))
            )
            raise RuntimeError(f"{label} failed for {len(self.errors)} "
                               f"cell(s): {failed}")
        return self


def run_sweep(
    jobs: Sequence[Job],
    worker: Callable[[Any], Any],
    *,
    runtime: Optional[RuntimeContext] = None,
    label: str = "sweep",
) -> SweepResult:
    """Execute ``jobs`` through ``worker`` under ``runtime``'s policy.

    ``worker`` takes ``job.payload`` and returns a JSON-serializable
    result (JSON-serializability is what makes it cacheable).  It must
    be a module-level function when ``runtime.workers > 1``.
    """
    runtime = resolve(runtime)
    cache = open_cache(runtime.cache_dir)
    log = RunLog(runtime.run_log) if runtime.run_log is not None else None
    reporter = ProgressReporter(
        total=len(jobs), label=label, live=runtime.progress, log=log,
        workers=runtime.workers,
    )
    reporter.sweep_started()
    out = SweepResult()

    to_run: list[Job] = []
    for job in jobs:
        cached = cache.get(job.fingerprint)
        if cached is not None:
            out.results[job.key] = cached
            reporter.cell_done(job.key, cached=True, sim_s=job.sim_s)
        else:
            to_run.append(job)

    try:
        if to_run:
            if runtime.parallel:
                _run_parallel(to_run, worker, runtime, cache, reporter, out)
            else:
                _run_serial(to_run, worker, runtime, cache, reporter, out)
    finally:
        out.summary = reporter.sweep_finished()
        if log is not None:
            log.close()
    return out


def _record_ok(job: Job, value: Any, wall_s: float, attempts: int,
               cache, reporter: ProgressReporter, out: SweepResult) -> None:
    out.results[job.key] = value
    try:
        cache.put(job.fingerprint, value)
    except (OSError, TypeError, ValueError):  # cache failure must not kill the sweep
        pass
    metrics = value.get("metrics") if isinstance(value, dict) else None
    reporter.cell_done(job.key, wall_s=wall_s, cached=False,
                       sim_s=job.sim_s, attempts=attempts, metrics=metrics)


def _record_failed(job: Job, errinfo: dict, attempts: int,
                   reporter: ProgressReporter, out: SweepResult) -> None:
    out.errors[job.key] = dict(errinfo, attempts=attempts)
    reporter.cell_failed(job.key, kind=errinfo.get("kind", "crash"),
                         error=errinfo.get("message", ""), attempts=attempts)


def _job_timeout(job: Job, runtime: RuntimeContext) -> Optional[float]:
    return job.timeout_s if job.timeout_s is not None else runtime.timeout_s


def _run_serial(jobs: Sequence[Job], worker, runtime: RuntimeContext,
                cache, reporter: ProgressReporter, out: SweepResult) -> None:
    for job in jobs:
        attempts = 0
        while True:
            attempts += 1
            status, value, wall_s = _invoke(worker, job.payload,
                                            _job_timeout(job, runtime))
            if status == "ok":
                _record_ok(job, value, wall_s, attempts, cache, reporter, out)
                break
            if attempts > runtime.retries:
                _record_failed(job, value, attempts, reporter, out)
                break


def _run_parallel(jobs: Sequence[Job], worker, runtime: RuntimeContext,
                  cache, reporter: ProgressReporter, out: SweepResult) -> None:
    import concurrent.futures as cf
    from concurrent.futures.process import BrokenProcessPool

    queue = deque(jobs)
    attempts: Dict[Any, int] = {job.key: 0 for job in jobs}
    pending: Dict[Any, Job] = {}
    pool = cf.ProcessPoolExecutor(max_workers=runtime.workers)

    def rebuild_pool():
        nonlocal pool
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        pool = cf.ProcessPoolExecutor(max_workers=runtime.workers)

    try:
        while queue or pending:
            # Keep the pool saturated.
            while queue:
                job = queue.popleft()
                attempts[job.key] += 1
                item = (worker, job.payload, _job_timeout(job, runtime))
                try:
                    fut = pool.submit(_pool_entry, item)
                except (BrokenProcessPool, RuntimeError):
                    rebuild_pool()
                    fut = pool.submit(_pool_entry, item)
                pending[fut] = job

            done, _ = cf.wait(list(pending), return_when=cf.FIRST_COMPLETED)
            pool_broke = False
            for fut in done:
                job = pending.pop(fut)
                try:
                    status, value, wall_s = fut.result()
                except BaseException as exc:  # worker died hard / pool broke
                    pool_broke = True
                    status = "error"
                    wall_s = 0.0
                    value = {
                        "kind": "pool-crash",
                        "type": type(exc).__name__,
                        "message": str(exc) or type(exc).__name__,
                        "traceback": "",
                    }
                if status == "ok":
                    _record_ok(job, value, wall_s, attempts[job.key],
                               cache, reporter, out)
                    continue
                # Pool breakage cannot be attributed to one job: innocent
                # in-flight cells get a slightly larger retry allowance so
                # a single poisoned cell cannot take them down with it.
                allowed = runtime.retries + (3 if value.get("kind") == "pool-crash" else 1)
                if attempts[job.key] < allowed:
                    queue.append(job)
                else:
                    _record_failed(job, value, attempts[job.key], reporter, out)
            if pool_broke:
                rebuild_pool()
    finally:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
