"""Canonical, hashable job abstraction for sweep experiments.

Every cell of a paper sweep (a heatmap cell, one fig11 repetition, one
table3 failure replay, …) becomes a :class:`Job`: a hashable grid key, a
picklable payload for the worker function, and a **stable content
fingerprint** used by the on-disk result cache.

The fingerprint is a SHA-256 over a *canonical* rendering of the payload
(dataclass fields — including nested tree geometry — rendered
recursively, dict keys sorted, floats via ``repr``) salted with
:data:`CODE_VERSION`.  Two processes on two machines computing the
fingerprint of the same spec get the same hex string; any change to a
spec field, to the tree geometry, or to the code-version salt yields a
different one, so stale cache entries can never be returned for a
changed experiment.

This module also provides :func:`stable_seed`, the hashlib-based RNG
seed derivation used by the experiment runners.  Unlike
``hash()``-based or ``repr``-of-tuple-based schemes it does not depend
on ``PYTHONHASHSEED``, object identity, or ``repr`` formatting details,
so seeds are reproducible across processes and Python versions.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Hashable, Optional

__all__ = [
    "CODE_VERSION",
    "Job",
    "canonical",
    "fingerprint",
    "spec_job",
    "stable_seed",
]

#: Version salt mixed into every fingerprint.  Bump whenever a change to
#: the simulator or scoring semantics invalidates previously cached
#: results (cache entries from older versions are then simply missed).
CODE_VERSION = "fancy-runtime-1"


def canonical(obj: Any) -> str:
    """Render ``obj`` as a canonical, deterministic string.

    Supports the types that appear in experiment specs: dataclasses
    (rendered as ``ClassName{field=..., ...}`` in field order), dicts
    (keys sorted), lists/tuples, sets (sorted), scalars.  Floats use
    ``repr`` so the rendering round-trips exactly.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__name__}{{{fields}}}"
    if isinstance(obj, dict):
        items = ",".join(
            f"{canonical(k)}:{canonical(v)}" for k, v in sorted(obj.items(), key=lambda kv: canonical(kv[0]))
        )
        return f"{{{items}}}"
    if isinstance(obj, (list, tuple)):
        return f"[{','.join(canonical(v) for v in obj)}]"
    if isinstance(obj, (set, frozenset)):
        return f"set[{','.join(sorted(canonical(v) for v in obj))}]"
    if isinstance(obj, bool) or obj is None:
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, (int, str, bytes)):
        return repr(obj)
    # Fall back to the type name + repr for anything exotic (Paths, enums).
    return f"{type(obj).__name__}:{obj!r}"


def fingerprint(*parts: Any, salt: str = CODE_VERSION) -> str:
    """Stable hex content-address of ``parts`` (SHA-256, 32 hex chars)."""
    h = hashlib.sha256()
    h.update(salt.encode())
    for part in parts:
        h.update(b"\x1f")
        h.update(canonical(part).encode())
    return h.hexdigest()[:32]


def stable_seed(*parts: Any, bits: int = 63) -> int:
    """Derive a reproducible RNG seed from a canonical tuple.

    Replaces the fragile ``random.Random((seed, rep, "x").__repr__())``
    idiom: this derivation is explicit, documented, and identical across
    processes (hashlib is independent of ``PYTHONHASHSEED``).
    """
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(b"\x1f")
        h.update(canonical(part).encode())
    return int.from_bytes(h.digest(), "big") % (1 << bits)


@dataclass(frozen=True)
class Job:
    """One schedulable unit of a sweep.

    Attributes:
        key: hashable grid key (e.g. ``(i, j)`` for a heatmap cell).
            Results and errors are reported under this key.
        payload: picklable arguments for the sweep's worker function.
        fingerprint: content address for the result cache; the empty
            string marks the job uncacheable.
        sim_s: simulated seconds this job covers (telemetry only; feeds
            the "simulated-seconds per wall-second" rate).
        timeout_s: per-job timeout override (None = sweep default).
    """

    key: Hashable
    payload: Any
    fingerprint: str = ""
    sim_s: Optional[float] = None
    timeout_s: Optional[float] = None


def spec_job(key: Hashable, spec: Any, repetitions: int = 1,
             sim_s: Optional[float] = None, extra: Any = None,
             options: Optional[dict] = None) -> Job:
    """Build a cacheable :class:`Job` over an experiment spec.

    The fingerprint covers the spec's dataclass fields (recursively — a
    changed tree geometry changes the fingerprint), the repetition
    count, any ``extra`` discriminator, and the code-version salt.

    ``options`` (e.g. ``{"telemetry": True}``) are appended to the
    payload as a third element *and* folded into the fingerprint, so a
    telemetry-enabled cell — whose cached value carries a metrics
    snapshot — never aliases a plain cell.  ``options=None`` keeps both
    the two-element payload and the historical fingerprint.
    """
    if options:
        payload: Any = (spec, repetitions, dict(options))
        fp = fingerprint(spec, repetitions, extra, dict(options))
    else:
        payload = (spec, repetitions)
        fp = fingerprint(spec, repetitions, extra)
    return Job(key=key, payload=payload, fingerprint=fp, sim_s=sim_s)
