"""Structured sweep telemetry: live stderr progress + JSONL run log.

Two consumers, one event stream:

* a human watching the terminal gets a single live-updating stderr line
  with completed/total cells, cells/s, simulated-seconds per
  wall-second, cache hits, failures, and an ETA;
* tooling gets a machine-readable JSONL run log (one event object per
  line) with the schema documented in ``docs/RUNTIME.md``:

  - ``{"event": "sweep_start", "label", "total", "workers", "ts"}``
  - ``{"event": "cell_done", "key", "cached", "wall_s", "sim_s", "attempts", "ts"}``
    (plus an optional ``"metrics"`` snapshot when the sweep ran with
    telemetry enabled — see ``docs/TELEMETRY.md``)
  - ``{"event": "cell_failed", "key", "kind", "error", "attempts", "ts"}``
  - ``{"event": "sweep_end", "label", "completed", "failed",
     "cache_hits", "cache_misses", "wall_s", "cells_per_s",
     "sim_s_per_wall_s", "ts"}``

Keys are JSON-rendered as lists (tuples don't exist in JSON).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, IO, Optional, Union

__all__ = ["RunLog", "ProgressReporter"]


def _jsonable_key(key: Any) -> Any:
    if isinstance(key, tuple):
        return [_jsonable_key(k) for k in key]
    if isinstance(key, (str, int, float, bool)) or key is None:
        return key
    return str(key)


class RunLog:
    """Append-only JSONL event log; each event is flushed immediately."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[str]] = self.path.open("a", encoding="utf-8")

    def emit(self, event: dict) -> None:
        if self._fh is None:
            return
        json.dump(event, self._fh)
        self._fh.write("\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ProgressReporter:
    """Tracks sweep progress; renders stderr lines and JSONL events.

    All methods are cheap and exception-safe; telemetry must never take
    down a sweep.
    """

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        *,
        live: bool = False,
        log: Optional[RunLog] = None,
        stream: Optional[IO[str]] = None,
        workers: Optional[int] = None,
    ) -> None:
        self.total = total
        self.label = label
        self.live = live
        self.log = log
        self.stream = stream if stream is not None else sys.stderr
        self.workers = workers
        self.completed = 0
        self.failed = 0
        self.cached = 0
        self.sim_s = 0.0
        self.cell_wall_s = 0.0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # ------------------------------------------------------------------ events

    def sweep_started(self) -> None:
        self.started_at = time.monotonic()
        self._emit({
            "event": "sweep_start",
            "label": self.label,
            "total": self.total,
            "workers": self.workers,
            # Operational run-log timestamp, never part of any result
            # fingerprint; sanctioned as an FCY011 taint barrier.
            "ts": time.time(),  # fancylint: disable=FCY011 -- run-log wall time
        })

    def cell_done(self, key: Any, *, wall_s: float = 0.0, cached: bool = False,
                  sim_s: Optional[float] = None, attempts: int = 1,
                  metrics: Optional[dict] = None) -> None:
        self.completed += 1
        if cached:
            self.cached += 1
        else:
            self.cell_wall_s += wall_s
            if sim_s:
                self.sim_s += sim_s
        event = {
            "event": "cell_done",
            "key": _jsonable_key(key),
            "cached": cached,
            "wall_s": round(wall_s, 6),
            "sim_s": sim_s,
            "attempts": attempts,
            # Operational run-log timestamp, never part of any result
            # fingerprint; sanctioned as an FCY011 taint barrier.
            "ts": time.time(),  # fancylint: disable=FCY011 -- run-log wall time
        }
        if metrics is not None:
            event["metrics"] = metrics
        self._emit(event)
        self._render_line()

    def cell_failed(self, key: Any, *, kind: str, error: str, attempts: int) -> None:
        self.failed += 1
        self._emit({
            "event": "cell_failed",
            "key": _jsonable_key(key),
            "kind": kind,
            "error": error,
            "attempts": attempts,
            # Operational run-log timestamp, never part of any result
            # fingerprint; sanctioned as an FCY011 taint barrier.
            "ts": time.time(),  # fancylint: disable=FCY011 -- run-log wall time
        })
        self._render_line()

    def sweep_finished(self) -> dict:
        """Emit the closing event; returns the summary dict."""
        self.finished_at = time.monotonic()
        wall = self.wall_s
        summary = {
            "event": "sweep_end",
            "label": self.label,
            "total": self.total,
            "completed": self.completed,
            "failed": self.failed,
            "cache_hits": self.cached,
            "cache_misses": self.completed - self.cached,
            "wall_s": round(wall, 3),
            "cells_per_s": round(self.completed / wall, 3) if wall > 0 else None,
            "sim_s_per_wall_s": round(self.sim_s / wall, 3) if wall > 0 and self.sim_s else None,
            # Operational run-log timestamp, never part of any result
            # fingerprint; sanctioned as an FCY011 taint barrier.
            "ts": time.time(),  # fancylint: disable=FCY011 -- run-log wall time
        }
        self._emit(summary)
        if self.live:
            self._write("\r" + self.summary_line() + "\n")
        return summary

    # ------------------------------------------------------------------ derived

    @property
    def wall_s(self) -> float:
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None else time.monotonic()
        return end - self.started_at

    def eta_s(self) -> Optional[float]:
        done = self.completed + self.failed
        if done == 0 or self.wall_s <= 0:
            return None
        rate = done / self.wall_s
        return (self.total - done) / rate if rate > 0 else None

    def summary_line(self) -> str:
        done = self.completed + self.failed
        wall = self.wall_s
        parts = [f"[{self.label}] {done}/{self.total} cells"]
        if wall > 0 and done:
            parts.append(f"{done / wall:.2f} cells/s")
        if self.sim_s and wall > 0:
            parts.append(f"{self.sim_s / wall:.1f} sim-s/s")
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.failed:
            parts.append(f"{self.failed} FAILED")
        eta = self.eta_s()
        if eta is not None and done < self.total:
            parts.append(f"ETA {eta:.0f}s")
        elif done >= self.total:
            parts.append(f"done in {wall:.1f}s")
        return "  ".join(parts)

    # ------------------------------------------------------------------ plumbing

    def _emit(self, event: dict) -> None:
        if self.log is not None:
            try:
                self.log.emit(event)
            except Exception:  # pragma: no cover - telemetry must not crash sweeps
                pass

    def _render_line(self) -> None:
        if not self.live:
            return
        self._write("\r" + self.summary_line() + "\x1b[K")

    def _write(self, text: str) -> None:
        try:
            self.stream.write(text)
            self.stream.flush()
        except Exception:  # pragma: no cover - closed stream etc.
            pass
