"""repro.runtime — fault-tolerant, cached, parallel experiment orchestration.

The runtime layer turns every paper sweep (heatmap grids, trace
replays, sensitivity matrices) into a list of content-addressed
:class:`~repro.runtime.jobs.Job` objects executed by
:func:`~repro.runtime.executor.run_sweep`:

* :mod:`repro.runtime.jobs` — hashable job abstraction, stable spec
  fingerprints, hashlib-based seed derivation;
* :mod:`repro.runtime.cache` — content-addressed on-disk result cache
  (atomic JSON files) so interrupted sweeps resume where they stopped;
* :mod:`repro.runtime.executor` — streaming process-pool execution with
  per-cell timeouts, bounded retry, and partial-result return;
* :mod:`repro.runtime.progress` — live stderr progress line + JSONL
  machine-readable run log;
* :mod:`repro.runtime.context` — the :class:`RuntimeContext` value
  object the CLI threads through every experiment (no globals).

See ``docs/RUNTIME.md`` for the architecture and on-disk formats.
"""

from .cache import DEFAULT_CACHE_DIR, NullCache, ResultCache, open_cache
from .context import RuntimeContext, resolve
from .executor import CellTimeout, SweepResult, run_sweep
from .jobs import CODE_VERSION, Job, canonical, fingerprint, spec_job, stable_seed
from .progress import ProgressReporter, RunLog

__all__ = [
    "CODE_VERSION",
    "CellTimeout",
    "DEFAULT_CACHE_DIR",
    "Job",
    "NullCache",
    "ProgressReporter",
    "ResultCache",
    "RunLog",
    "RuntimeContext",
    "SweepResult",
    "canonical",
    "fingerprint",
    "open_cache",
    "resolve",
    "run_sweep",
    "spec_job",
    "stable_seed",
]
