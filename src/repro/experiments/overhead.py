"""Experiment overhead — traffic overhead analysis (§5.3).

FANcY adds two overhead components on a monitored link:

* **control packets** — five minimum-size (64 B) frames per counting
  session (Start, StartACK, Stop, Report, plus one for reliability), with
  the tree's Report additionally carrying the pipelined counter payload
  (5,320 B in the paper's configuration);
* **packet tags** — 2 bytes on every tagged packet (counter ID, or hash
  path byte + counter byte), 0.13 % of a 1,500 B packet, avoidable
  entirely by reusing idle header fields.

Paper anchors: ≈0.014 % of a 100 Gbps link for 500 dedicated counters at
50 ms exchange on a 10 ms link; ≈0.00017 % for the tree at 200 ms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simulator.packet import FANCY_TAG_BYTES, MIN_FRAME_BYTES
from .report import render_table

__all__ = ["OverheadModel", "run", "render", "main"]

#: §5.3: five control packets per counting session.
CONTROL_PACKETS_PER_SESSION = 5

#: §5.3: the pipelined tree Report payload.
TREE_REPORT_BYTES = 5320


@dataclass(frozen=True)
class OverheadModel:
    """Closed-form overhead computation for one monitored link."""

    link_bandwidth_bps: float = 100e9
    link_delay_s: float = 0.010
    packet_size: int = 1500

    def session_cycle_s(self, session_duration_s: float) -> float:
        """A session occupies its duration plus two control RTTs."""
        return session_duration_s + 4 * self.link_delay_s

    def control_overhead_fraction(
        self,
        session_duration_s: float,
        extra_report_bytes: int = 0,
        n_fsms: int = 1,
    ) -> float:
        """Control bytes per second as a fraction of link capacity.

        ``n_fsms`` counts the sub-state machines sharing the link: each
        dedicated entry runs its own FSM pair (Appendix B.2: 512 FSMs per
        port), so 500 dedicated counters send 500 x 5 control packets per
        session cycle -- which is what makes the paper's 0.014% figure.
        """
        bytes_per_session = n_fsms * (
            CONTROL_PACKETS_PER_SESSION * MIN_FRAME_BYTES
        ) + extra_report_bytes
        sessions_per_second = 1.0 / self.session_cycle_s(session_duration_s)
        return bytes_per_session * 8 * sessions_per_second / self.link_bandwidth_bps

    def tag_overhead_fraction(self) -> float:
        """Per-packet tag bytes relative to the packet size (§5.3: 0.13 %)."""
        return FANCY_TAG_BYTES / self.packet_size

    def dedicated_overhead(self, session_duration_s: float = 0.050,
                           n_entries: int = 500) -> float:
        return self.control_overhead_fraction(session_duration_s, n_fsms=n_entries)

    def tree_overhead(self, zooming_speed_s: float = 0.200) -> float:
        return self.control_overhead_fraction(
            zooming_speed_s, extra_report_bytes=TREE_REPORT_BYTES
        )


def run(model: OverheadModel | None = None) -> dict:
    model = model or OverheadModel()
    return {
        "dedicated_control": model.dedicated_overhead(),
        "tree_control": model.tree_overhead(),
        "tag": model.tag_overhead_fraction(),
        "model": model,
    }


def render(result: dict) -> str:
    model: OverheadModel = result["model"]
    rows = [
        ["dedicated counters control (500 entries, 50 ms sessions)",
         f"{result['dedicated_control']:.5%}", "≈0.014%"],
        ["hash-tree control (200 ms zooming, 5320 B report)",
         f"{result['tree_control']:.6%}", "≈0.00017% (per-byte of report amortized)"],
        ["per-packet tag (2 B / 1500 B)", f"{result['tag']:.2%}", "0.13%"],
    ]
    return render_table(
        f"§5.3 — FANcY overhead on a {model.link_bandwidth_bps / 1e9:.0f} Gbps, "
        f"{model.link_delay_s * 1e3:.0f} ms link",
        ["component", "measured", "paper"],
        rows,
    )


def main() -> str:
    text = render(run())
    print(text)
    return text
