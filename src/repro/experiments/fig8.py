"""Experiment fig8 — minimum entry size vs. zooming speed (Figure 8).

For each zooming speed (10/50/100/200 ms) and loss rate, finds the
smallest entry in the size grid for which the tree reaches TPR ≥95 %.
Expected shape (paper): all zooming speeds reach high TPR once entries
drive a reasonable amount of traffic; requirements are similar for speeds
≥50 ms, while very fast zooming (10 ms) needs larger entries at low loss
rates — a too-short counting session rarely observes drops in three
consecutive sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..traffic.synthetic import ENTRY_SIZE_GRID, EntrySize
from .report import render_table
from .runner import ExperimentSpec, run_cell

__all__ = ["Fig8Config", "run", "render", "main"]

#: Zooming speeds swept in Figure 8.
ZOOMING_SPEEDS = (0.010, 0.050, 0.100, 0.200)


@dataclass(frozen=True)
class Fig8Config:
    zooming_speeds: tuple[float, ...] = ZOOMING_SPEEDS
    loss_rates: tuple[float, ...] = (1.0, 0.5, 0.1, 0.001)
    #: Candidate sizes, smallest first (Figure 8's y axis is the size rank).
    sizes: tuple[EntrySize, ...] = tuple(reversed(ENTRY_SIZE_GRID))
    tpr_threshold: float = 0.95
    repetitions: int = 2
    duration_s: float = 10.0
    max_pps_per_entry: Optional[float] = 200
    n_background: int = 5
    seed: int = 0


QUICK_CONFIG = Fig8Config(
    zooming_speeds=(0.010, 0.050, 0.200),
    loss_rates=(1.0, 0.1),
    sizes=tuple(reversed(ENTRY_SIZE_GRID[::3])),
    repetitions=1,
    duration_s=8.0,
    max_pps_per_entry=150,
    n_background=3,
)


def minimum_entry_rank(
    zooming_speed: float,
    loss_rate: float,
    config: Fig8Config,
) -> Optional[int]:
    """Smallest size rank (0 = smallest entry) reaching the TPR threshold.

    Scans sizes from smallest up; once a size passes, returns its rank —
    the paper's monotonicity assumption (bigger entries only get easier).
    """
    for rank, size in enumerate(config.sizes):
        spec = ExperimentSpec(
            entry_size=size,
            loss_rate=loss_rate,
            mode="tree",
            tree_session_s=zooming_speed,
            duration_s=config.duration_s,
            n_background=config.n_background,
            max_pps_per_entry=config.max_pps_per_entry,
            seed=config.seed + rank,
        )
        cell = run_cell(spec, repetitions=config.repetitions)
        if cell.avg_tpr >= config.tpr_threshold:
            return rank
    return None


def run(config: Optional[Fig8Config] = None, quick: bool = True) -> dict:
    config = config or (QUICK_CONFIG if quick else Fig8Config())
    ranks: dict[tuple[float, float], Optional[int]] = {}
    for speed in config.zooming_speeds:
        for loss in config.loss_rates:
            ranks[(speed, loss)] = minimum_entry_rank(speed, loss, config)
    return {
        "ranks": ranks,
        "sizes": [s.label for s in config.sizes],
        "config": config,
    }


def render(result: dict) -> str:
    config: Fig8Config = result["config"]
    headers = ["zooming speed"] + [f"loss {r:g}" for r in config.loss_rates]
    rows = []
    for speed in config.zooming_speeds:
        row = [f"{speed * 1e3:g} ms"]
        for loss in config.loss_rates:
            rank = result["ranks"][(speed, loss)]
            row.append("none" if rank is None else result["sizes"][rank])
        rows.append(row)
    return render_table(
        "Figure 8 — minimum entry size for TPR >= 95% per zooming speed",
        headers,
        rows,
    )


def main(quick: bool = True) -> str:
    text = render(run(quick=quick))
    print(text)
    return text
