"""Experiment fig9 — hash-based tree heatmaps (Figure 9a / 9b).

Figure 9a: single-entry failures monitored by the tree (depth 3, split 2,
width 190, 200 ms zooming).  Expected shape: TPR 1 for loss >10 %
regardless of entry size; degradation for low-traffic entries at ≤1 %
loss (three consecutive mismatching sessions become unlikely); detection
time ≈ 3 × zooming speed (~0.6–0.7 s) for healthy entries.

Figure 9b: 100 entries failing simultaneously.  Expected shape: TPR
consistent with 9a, detection time rising to ≈5–6 s for high-loss cells —
the pipelined zoom explores a bounded number of paths per session
(k^(d-1) = 4), so a hundred-entry burst drains over ~25 sessions.

The default (quick) scale reduces the 9b burst to 30 entries and caps
per-entry packet rates; the CLI exposes the paper-faithful sweep.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..runtime import RuntimeContext, resolve
from ..traffic.synthetic import ENTRY_SIZE_GRID_100
from .heatmaps import PAPER_SCALE, QUICK_SCALE, HeatmapScale, render_heatmap_pair, run_heatmap

__all__ = ["run_single", "run_multi", "render", "main"]

QUICK_SCALE_MULTI = HeatmapScale(
    rows=ENTRY_SIZE_GRID_100[2::5],
    loss_rates=(1.0, 0.1),
    repetitions=1,
    duration_s=12.0,
    max_pps_per_entry=40,
    n_background=5,
    n_failed=30,
)

PAPER_SCALE_MULTI = replace(PAPER_SCALE, rows=ENTRY_SIZE_GRID_100, n_failed=100)


def run_single(scale: Optional[HeatmapScale] = None, quick: bool = True, seed: int = 0,
               workers: Optional[int] = None,
               runtime: Optional[RuntimeContext] = None) -> dict:
    scale = scale or (QUICK_SCALE if quick else PAPER_SCALE)
    return run_heatmap("tree", scale, seed=seed, n_failed=1, workers=workers,
                       runtime=runtime)


def run_multi(scale: Optional[HeatmapScale] = None, quick: bool = True, seed: int = 0,
              workers: Optional[int] = None,
              runtime: Optional[RuntimeContext] = None) -> dict:
    scale = scale or (QUICK_SCALE_MULTI if quick else PAPER_SCALE_MULTI)
    return run_heatmap("tree", scale, seed=seed, workers=workers,
                       runtime=runtime)


def render(result: dict) -> str:
    n = result["n_failed"]
    which = "9a (single-entry failures)" if n == 1 else f"9b ({n}-entry failures)"
    return render_heatmap_pair(f"Figure {which} — hash-based tree", result)


def main(quick: bool = True, multi: bool = False,
         workers: Optional[int] = None,
         runtime: Optional[RuntimeContext] = None) -> str:
    runtime = resolve(runtime, workers=workers)
    result = (run_multi(quick=quick, seed=runtime.seed, runtime=runtime) if multi
              else run_single(quick=quick, seed=runtime.seed, runtime=runtime))
    text = render(result)
    print(text)
    return text
