"""Experiment harness: one module per table/figure of the paper.

| module        | paper artifact                                   |
|---------------|--------------------------------------------------|
| ``table1``    | Table 1 — gray-failure classification + coverage |
| ``table2``    | Table 2 — Loss Radar requirements                |
| ``fig2``      | Figure 2 — NetSeer required memory               |
| ``fig7``      | Figure 7 — dedicated-counter heatmaps            |
| ``fig8``      | Figure 8 — min entry size vs zooming speed       |
| ``fig9``      | Figure 9a/9b — hash-tree heatmaps                |
| ``uniform``   | §5.1.3 — uniform failures                        |
| ``table3``    | Table 3 — CAIDA-trace accuracy/speed             |
| ``baselines52`` | §5.2 — comparison to simple designs            |
| ``overhead``  | §5.3 — overhead analysis                         |
| ``table4``    | Table 4 — Tofino resource usage                  |
| ``fig10``     | Figure 10 — fast-rerouting case study            |
| ``fig11``     | Figure 11 — tree parameter sensitivity           |
| ``table5``    | Table 5 — CAIDA trace characteristics            |
| ``fabric``    | network-wide closed loop (docs/FABRIC.md)        |

Each module exposes ``run(...) -> dict`` and ``render(result) -> str``;
``main()`` prints the rendered artifact.  ``quick=True`` (the default)
runs a reduced but shape-preserving configuration; the paper-faithful
sweeps are available through each module's config dataclass and the CLI.
"""

from . import (  # noqa: F401
    baselines52,
    fabric,
    fig2,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    heatmaps,
    metrics,
    overhead,
    report,
    runner,
    table1,
    table2,
    table3,
    table4,
    table5,
    telemetry_report,
    uniform,
)

__all__ = [
    "table1",
    "table2", "fig2", "fig7", "fig8", "fig9", "uniform", "table3",
    "baselines52", "overhead", "table4", "fig10", "fig11", "table5",
    "fabric", "runner", "metrics", "report", "heatmaps", "telemetry_report",
]
