"""Experiment table5 — CAIDA trace characteristics (Table 5, Appendix C).

Renders the published per-trace statistics alongside the properties of the
synthetic traces regenerated from them (prefix population and the
byte-share anchors used for calibration: top-500 ≈ 60 %, top-10,000 ≥ 95 %).
"""

from __future__ import annotations

from ..traffic.caida import CAIDA_TRACES, SyntheticCaidaTrace
from .report import render_table

__all__ = ["run", "render", "main"]


def run(n_prefixes_cap: int | None = None) -> dict:
    rows = []
    for spec in CAIDA_TRACES:
        n = spec.n_prefixes if n_prefixes_cap is None else min(spec.n_prefixes, n_prefixes_cap)
        trace = SyntheticCaidaTrace(spec, n_prefixes=n)
        rows.append(trace.table5_row())
    return {"rows": rows}


def render(result: dict) -> str:
    headers = ["ID", "Link", "Date", "Bit rate", "Packet rate", "Flow rate",
               "Duration", "Prefixes", "top500 bytes", "top10k bytes"]
    rows = []
    for r in result["rows"]:
        rows.append([
            str(r["trace_id"]),
            r["link"],
            r["date"],
            f"{r['bit_rate_gbps']:.2f} Gbps",
            f"{r['packet_rate_pps'] / 1e3:.1f} Kpps",
            f"{r['flow_rate_fps'] / 1e3:.1f} Kfps",
            f"{r['duration_s']:.0f} s",
            f"{r['n_prefixes'] / 1e3:.0f}K",
            f"{r['top500_byte_share']:.1%}",
            f"{r['top10000_byte_share']:.1%}",
        ])
    return render_table("Table 5 — CAIDA traces (published stats + synthetic calibration)",
                        headers, rows)


def main() -> str:
    text = render(run())
    print(text)
    return text
