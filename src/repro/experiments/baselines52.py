"""Experiment baselines — comparison to simple designs (§5.2).

Replays the Table 3 scenario against the §2.4 alternatives:

* **single link counter** — detects the loss but implicates every other
  prefix (false positives = all monitored prefixes minus the failed one);
* **dedicated-only within budget** — 1,024 exact counters per port
  (1.25 MB translated at 80 bits/entry): perfect for covered prefixes,
  blind for the rest, which carry ≈40 % of the bytes;
* **counting Bloom filter with FANcY's memory** — TPR comparable to the
  single-counter design but ≈100 false positives per detected failure
  versus FANcY's ≈0.03 (paper numbers).

FANcY's own numbers come from the Table 3 machinery, so the comparison
isolates the data-structure choice under identical traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..baselines.simple import (
    CountingBloomReceiver,
    CountingBloomSender,
    SingleLinkCounterReceiver,
    SingleLinkCounterSender,
    StrategyLinkMonitor,
)
from ..core.analysis import max_dedicated_entries
from ..core.detector import FancyConfig, FancyLinkMonitor
from ..core.output import FailureKind
from ..runtime.jobs import stable_seed
from ..simulator.apps import FlowGenerator
from ..simulator.engine import Simulator
from ..simulator.failures import EntryLossFailure
from ..simulator.topology import TwoSwitchTopology
from .report import render_table
from .table3 import QUICK_CONFIG, Table3Config, build_slice

__all__ = ["BaselineComparisonConfig", "run", "render", "main"]

#: FANcY's per-port memory budget in the evaluation (20 KB/port; 1.25 MB
#: switch-wide over 64 ports).
PORT_BUDGET_BYTES = 20 * 1024


@dataclass(frozen=True)
class BaselineComparisonConfig:
    table3: Table3Config = QUICK_CONFIG
    loss_rate: float = 0.5
    n_failures: int = 8
    cbf_cells: Optional[int] = None  # default: port budget / 32-bit cells
    seed: int = 7


def _run_design(design: str, failed_prefix: str, cfg: BaselineComparisonConfig,
                trace, sl) -> dict:
    t3 = cfg.table3
    rng = random.Random(stable_seed(cfg.seed, design, failed_prefix))
    sim = Simulator()
    failure_time = rng.uniform(0.5, 2.0)
    failure = EntryLossFailure({failed_prefix}, cfg.loss_rate,
                               start_time=failure_time, seed=rng.randrange(2 ** 31))
    topo = TwoSwitchTopology(sim, loss_model=failure)

    fancy_monitor = None
    strategy_monitor = None
    sender = None
    dedicated_prefixes: list = []

    if design == "fancy":
        dedicated_prefixes = trace.top_prefixes(t3.n_dedicated)
        fancy_monitor = FancyLinkMonitor(
            sim, topo.upstream, 1, topo.downstream, 1,
            FancyConfig(high_priority=dedicated_prefixes, tree_params=t3.tree,
                        seed=cfg.seed),
        )
        fancy_monitor.start()
    elif design == "single_counter":
        sender = SingleLinkCounterSender()
        strategy_monitor = StrategyLinkMonitor(
            sim, topo.upstream, 1, topo.downstream, 1,
            sender, SingleLinkCounterReceiver(), fsm_id="single",
        )
        strategy_monitor.start()
    elif design == "dedicated_only":
        budget_entries = max_dedicated_entries(PORT_BUDGET_BYTES)
        n = min(budget_entries, len(sl.prefixes))
        dedicated_prefixes = list(sl.prefixes[:n])
        fancy_monitor = FancyLinkMonitor(
            sim, topo.upstream, 1, topo.downstream, 1,
            FancyConfig(high_priority=dedicated_prefixes, tree_params=None,
                        seed=cfg.seed),
        )
        fancy_monitor.start()
    elif design == "counting_bloom":
        cells = cfg.cbf_cells or (PORT_BUDGET_BYTES * 8) // 32
        sender = CountingBloomSender(cells, candidate_entries=sl.prefixes,
                                     seed=cfg.seed)
        strategy_monitor = StrategyLinkMonitor(
            sim, topo.upstream, 1, topo.downstream, 1,
            sender, CountingBloomReceiver(cells, seed=cfg.seed),
            fsm_id="cbf", report_size_bytes=max(64, cells * 4 + 30),
        )
        strategy_monitor.start()
    else:
        raise ValueError(f"unknown design {design!r}")

    for i, prefix in enumerate(sl.prefixes):
        FlowGenerator(
            sim, topo.source, prefix,
            rate_bps=sl.rates_bps[prefix],
            flows_per_second=min(sl.flows_per_second[prefix], t3.max_flows_per_second),
            packet_size=sl.packet_size,
            seed=rng.randrange(2 ** 31),
            flow_id_base=(i + 1) * 1_000_000,
        ).start()
    sim.run(until=t3.duration_s)

    n_prefixes = len(sl.prefixes)
    if design == "single_counter":
        detected = sender.detections > 0
        fps = (n_prefixes - 1) if detected else 0
    elif design == "counting_bloom":
        detected = failed_prefix in sender.flagged
        fps = len(sender.flagged - {failed_prefix})
    else:
        report = fancy_monitor.log.first_report(
            kind=FailureKind.DEDICATED_ENTRY, entry=failed_prefix
        )
        if report is None and fancy_monitor.tree_strategy is not None:
            hp = fancy_monitor.tree_strategy.tree.hash_path(failed_prefix)
            report = fancy_monitor.log.first_report(
                kind=FailureKind.TREE_LEAF, hash_path=hp
            )
        detected = report is not None
        fps = sum(1 for p in sl.prefixes
                  if p != failed_prefix and fancy_monitor.entry_is_flagged(p))
    return {"detected": detected, "false_positives": fps,
            "rate_bps": sl.rates_bps[failed_prefix]}


DESIGNS = ("fancy", "single_counter", "dedicated_only", "counting_bloom")


def run(config: Optional[BaselineComparisonConfig] = None) -> dict:
    cfg = config or BaselineComparisonConfig()
    trace, sl = build_slice(cfg.table3.trace_indices[0], cfg.table3)
    rng = random.Random(cfg.seed)
    pool = list(sl.prefixes[: cfg.table3.failure_pool])
    sample = rng.sample(pool, min(cfg.n_failures, len(pool)))
    results: dict[str, dict] = {}
    for design in DESIGNS:
        outcomes = [_run_design(design, p, cfg, trace, sl) for p in sample]
        detected = [o for o in outcomes if o["detected"]]
        results[design] = {
            "tpr": len(detected) / len(outcomes) if outcomes else None,
            "avg_false_positives": (
                sum(o["false_positives"] for o in outcomes) / len(outcomes)
                if outcomes else None
            ),
            "n": len(outcomes),
        }
    results["_meta"] = {
        "n_prefixes": len(sl.prefixes),
        "loss_rate": cfg.loss_rate,
        "port_budget_bytes": PORT_BUDGET_BYTES,
    }
    return results


def render(result: dict) -> str:
    headers = ["design", "TPR", "avg false positives", "localizes?"]
    label = {
        "fancy": "FANcY (dedicated + tree)",
        "single_counter": "single counter per link",
        "dedicated_only": "dedicated counters within budget",
        "counting_bloom": "counting Bloom filter",
    }
    localizes = {
        "fancy": "yes",
        "single_counter": "no",
        "dedicated_only": "covered prefixes only",
        "counting_bloom": "with collisions",
    }
    rows = []
    for design in DESIGNS:
        data = result[design]
        rows.append([
            label[design],
            "-" if data["tpr"] is None else f"{data['tpr']:.1%}",
            "-" if data["avg_false_positives"] is None else f"{data['avg_false_positives']:.2f}",
            localizes[design],
        ])
    meta = result["_meta"]
    title = (
        f"§5.2 — comparison to simple designs "
        f"({meta['n_prefixes']} prefixes, loss {meta['loss_rate']:g}, "
        f"{meta['port_budget_bytes'] // 1024} KB/port budget)"
    )
    return render_table(title, headers, rows)


def main() -> str:
    text = render(run())
    print(text)
    return text
