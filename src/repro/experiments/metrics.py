"""Accuracy and speed metrics used throughout the evaluation (§5).

The paper's primary metric is the true positive rate (TPR): the fraction
of failed entries correctly identified.  False positives are tracked
separately (they are structural — hash collisions — rather than traffic
dependent).  Detection time is measured from failure injection to the
first matching report, with undetected failures contributing the full
experiment horizon (the paper reports 30 s for those cells).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = ["RunResult", "CellResult", "aggregate"]


@dataclass
class RunResult:
    """Outcome of one experiment repetition."""

    n_failed: int
    n_detected: int
    detection_times: list[float] = field(default_factory=list)
    false_positives: int = 0
    horizon_s: float = 30.0
    extra: dict = field(default_factory=dict)

    @property
    def tpr(self) -> float:
        if self.n_failed == 0:
            return 1.0
        return self.n_detected / self.n_failed

    @property
    def mean_detection_time(self) -> float:
        """Mean over failed entries; undetected ones count the horizon."""
        if self.n_failed == 0:
            return 0.0
        padded = list(self.detection_times)
        padded += [self.horizon_s] * (self.n_failed - len(padded))
        return sum(padded) / self.n_failed

    def to_dict(self) -> dict:
        """JSON-serializable rendering (used by the runtime result cache)."""
        return {
            "n_failed": self.n_failed,
            "n_detected": self.n_detected,
            "detection_times": list(self.detection_times),
            "false_positives": self.false_positives,
            "horizon_s": self.horizon_s,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        return cls(
            n_failed=data["n_failed"],
            n_detected=data["n_detected"],
            detection_times=list(data.get("detection_times", [])),
            false_positives=data.get("false_positives", 0),
            horizon_s=data.get("horizon_s", 30.0),
            extra=dict(data.get("extra", {})),
        )


@dataclass
class CellResult:
    """Aggregate over repetitions of one (entry size, loss rate) cell."""

    runs: list[RunResult] = field(default_factory=list)

    def add(self, run: RunResult) -> None:
        self.runs.append(run)

    @property
    def avg_tpr(self) -> float:
        if not self.runs:
            return 0.0
        return sum(r.tpr for r in self.runs) / len(self.runs)

    @property
    def avg_detection_time(self) -> float:
        if not self.runs:
            return 0.0
        return sum(r.mean_detection_time for r in self.runs) / len(self.runs)

    @property
    def avg_false_positives(self) -> float:
        if not self.runs:
            return 0.0
        return sum(r.false_positives for r in self.runs) / len(self.runs)

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    def to_dict(self) -> dict:
        """JSON-serializable rendering (used by the runtime result cache)."""
        return {"runs": [run.to_dict() for run in self.runs]}

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        return cls(runs=[RunResult.from_dict(r) for r in data.get("runs", [])])


def aggregate(runs: Sequence[RunResult]) -> CellResult:
    cell = CellResult()
    for run in runs:
        cell.add(run)
    return cell


def median(values: Sequence[float]) -> Optional[float]:
    """Median helper (Figure 11 reports median detection time)."""
    if not values:
        return None
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


__all__.append("median")
