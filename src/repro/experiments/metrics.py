"""Accuracy and speed metrics used throughout the evaluation (§5).

The paper's primary metric is the true positive rate (TPR): the fraction
of failed entries correctly identified.  False positives are tracked
separately (they are structural — hash collisions — rather than traffic
dependent).  Detection time is measured from failure injection to the
first matching report, with undetected failures contributing the full
experiment horizon (the paper reports 30 s for those cells).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = ["RunResult", "CellResult", "aggregate"]


@dataclass
class RunResult:
    """Outcome of one experiment repetition."""

    n_failed: int
    n_detected: int
    detection_times: list[float] = field(default_factory=list)
    false_positives: int = 0
    horizon_s: float = 30.0
    extra: dict = field(default_factory=dict)

    @property
    def tpr(self) -> float:
        if self.n_failed == 0:
            return 1.0
        return self.n_detected / self.n_failed

    @property
    def mean_detection_time(self) -> float:
        """Mean over failed entries; undetected ones count the horizon."""
        if self.n_failed == 0:
            return 0.0
        padded = list(self.detection_times)
        padded += [self.horizon_s] * (self.n_failed - len(padded))
        return sum(padded) / self.n_failed

    def to_dict(self) -> dict:
        """JSON-serializable rendering (used by the runtime result cache)."""
        return {
            "n_failed": self.n_failed,
            "n_detected": self.n_detected,
            "detection_times": list(self.detection_times),
            "false_positives": self.false_positives,
            "horizon_s": self.horizon_s,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        return cls(
            n_failed=data["n_failed"],
            n_detected=data["n_detected"],
            detection_times=list(data.get("detection_times", [])),
            false_positives=data.get("false_positives", 0),
            horizon_s=data.get("horizon_s", 30.0),
            extra=dict(data.get("extra", {})),
        )


@dataclass
class CellResult:
    """Aggregate over repetitions of one (entry size, loss rate) cell."""

    runs: list[RunResult] = field(default_factory=list)

    def add(self, run: RunResult) -> None:
        self.runs.append(run)

    @property
    def avg_tpr(self) -> float:
        if not self.runs:
            return 0.0
        return sum(r.tpr for r in self.runs) / len(self.runs)

    @property
    def avg_detection_time(self) -> float:
        if not self.runs:
            return 0.0
        return sum(r.mean_detection_time for r in self.runs) / len(self.runs)

    @property
    def avg_false_positives(self) -> float:
        if not self.runs:
            return 0.0
        return sum(r.false_positives for r in self.runs) / len(self.runs)

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    def to_dict(self) -> dict:
        """JSON-serializable rendering (used by the runtime result cache)."""
        return {"runs": [run.to_dict() for run in self.runs]}

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        return cls(runs=[RunResult.from_dict(r) for r in data.get("runs", [])])


def aggregate(runs: Sequence[RunResult]) -> CellResult:
    cell = CellResult()
    for run in runs:
        cell.add(run)
    return cell


def median(values: Sequence[float]) -> Optional[float]:
    """Median helper (Figure 11 reports median detection time)."""
    if not values:
        return None
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def control_overhead(metrics, duration_s: Optional[float] = None) -> dict:
    """Control-plane overhead of a run, from the telemetry registry.

    This is the **single** accounting path for FANcY control traffic
    (§5.3 / Table 4's bandwidth-overhead claim).  The FSMs used to keep
    private ``control_messages_sent`` integers next to the registry
    counters; that duplicate path is gone — the
    ``fancy_control_messages_total`` / ``fancy_control_bytes_total``
    counter families (labelled by FSM, role, and message kind) are the
    source of truth, and the tests cross-check them against an
    independent :class:`~repro.simulator.tracing.PacketTracer` count of
    control packets on the wire.

    Args:
        metrics: a :class:`~repro.telemetry.MetricsRegistry` (anything
            with ``total``/``value``-style counter access).
        duration_s: when given, adds the average control bandwidth.

    Returns:
        dict with ``messages``, ``bytes``, ``retransmissions``, the
        per-kind message breakdown under ``by_kind``, and — when
        ``duration_s`` is given — ``bytes_per_s`` / ``bits_per_s``.
    """
    messages = metrics.total("fancy_control_messages_total")
    total_bytes = metrics.total("fancy_control_bytes_total")
    by_kind: dict[str, float] = {}
    for inst in metrics.families().get("fancy_control_messages_total", []):
        kind = dict(inst.labels).get("kind", "?")
        by_kind[kind] = by_kind.get(kind, 0) + inst.value
    out = {
        "messages": messages,
        "bytes": total_bytes,
        "retransmissions": metrics.total("fancy_retransmissions_total"),
        "by_kind": dict(sorted(by_kind.items())),
    }
    if duration_s:
        out["bytes_per_s"] = total_bytes / duration_s
        out["bits_per_s"] = total_bytes * 8 / duration_s
    return out


__all__ += ["median", "control_overhead"]
