"""Experiment table1 — the gray-failure classification (Table 1).

Renders the bug catalog and, as the executable counterpart, instantiates
one failure per Table 1 cell against a live FANcY deployment to confirm
the detector covers the full classification.
"""

from __future__ import annotations

from ..catalog import (
    TABLE1_BUGS,
    EntryScope,
    PacketScope,
    bugs_in_class,
    failure_for,
    render_table1,
)
from ..core.detector import FancyConfig, FancyLinkMonitor
from ..core.hashtree import HashTreeParams
from ..core.output import FailureKind
from ..simulator.apps import FlowGenerator
from ..simulator.engine import Simulator
from ..simulator.topology import TwoSwitchTopology
from .report import render_table

__all__ = ["run", "render", "main"]


def _detect_one(bug, seed: int = 0) -> bool:
    """Instantiate ``bug`` live and check FANcY detects it."""
    sim = Simulator()
    entries = [f"e{i}" for i in range(8)]
    victims = entries[:2] if bug.entry_scope is EntryScope.SOME_PREFIXES else entries
    loss = 1.0 if bug.packet_scope is PacketScope.ALL_PACKETS else 0.5
    failure = failure_for(bug, entries=victims, loss_rate=loss,
                          start_time=1.0, seed=seed)
    topo = TwoSwitchTopology(sim, loss_model=failure)
    monitor = FancyLinkMonitor(
        sim, topo.upstream, 1, topo.downstream, 1,
        FancyConfig(high_priority=entries[:2],
                    tree_params=HashTreeParams(width=16, depth=3, split=2),
                    seed=seed),
    )
    # Mixed packet sizes so size-selective bugs (e.g. CSCtc33158) have
    # affected traffic to drop.
    sizes = (96, 160, 256, 600, 1500)
    for i, entry in enumerate(entries):
        FlowGenerator(sim, topo.source, entry, rate_bps=1.5e6,
                      flows_per_second=15, seed=seed + i,
                      packet_size=sizes[i % len(sizes)],
                      flow_id_base=(i + 1) * 1_000_000).start()
    monitor.start()
    sim.run(until=6.0)
    if bug.entry_scope is EntryScope.SOME_PREFIXES:
        return any(monitor.entry_is_flagged(v) for v in victims)
    # All-prefix bugs: either uniform report or broad flagging.  Bugs that
    # select packets by size/field hit only a subset of packets, which
    # FANcY localizes per entry instead.
    if monitor.log.by_kind(FailureKind.UNIFORM):
        return True
    return any(monitor.entry_is_flagged(e) for e in entries)


def run(live: bool = True, seed: int = 0) -> dict:
    coverage = {}
    if live:
        for entry_scope in EntryScope:
            for packet_scope in PacketScope:
                bug = bugs_in_class(entry_scope, packet_scope)[0]
                coverage[(entry_scope.value, packet_scope.value)] = {
                    "bug": bug.bug_id,
                    "detected": _detect_one(bug, seed=seed),
                }
    return {"n_bugs": len(TABLE1_BUGS), "coverage": coverage}


def render(result: dict) -> str:
    text = render_table1()
    if result["coverage"]:
        rows = [
            [entries, packets, data["bug"], "detected" if data["detected"] else "MISSED"]
            for (entries, packets), data in result["coverage"].items()
        ]
        text += "\n\n" + render_table(
            "Live coverage check — one bug per class against FANcY",
            ["affected entries", "dropped traffic", "bug", "outcome"],
            rows,
        )
    return text


def main(quick: bool = True) -> str:
    text = render(run(live=True))
    print(text)
    return text
