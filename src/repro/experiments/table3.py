"""Experiment table3 — FANcY on CAIDA-like traces (Table 3, §5.2).

Methodology mirrors the paper: for each trace, dedicated counters go to
the 500 prefixes with the most bytes *trace-wide*; a 30-second slice is
replayed; prefixes drawn from the top of the slice fail one at a time at
a random instant, for each loss rate.  We score the TPR over prefixes
(total, and split by dedicated / hash-tree coverage), the TPR over bytes
(rate-weighted), and the average detection time.

Expected shape (paper): ≥91 % of affected bytes detected in 2–5 s for
loss ≥10 %; dedicated counters stay ≈100 % down to 0.1 % loss while the
tree's TPR collapses at ≤1 % loss (no drops in three consecutive
sessions), pulling the byte coverage down to ≈56–77 %; detection is
*better* at 50 % loss than at 100 % because blackholed TCP collapses to
sparse RTO retransmissions.

The quick configuration scales the slice down (fewer prefixes, scaled
rates, fewer sampled failures) while keeping the distributional shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.detector import FancyConfig, FancyLinkMonitor
from ..core.hashtree import HashTreeParams
from ..core.output import FailureKind
from ..runtime import Job, RuntimeContext, fingerprint, resolve, run_sweep, stable_seed
from ..simulator.apps import FlowGenerator
from ..simulator.engine import Simulator
from ..simulator.failures import EntryLossFailure
from ..simulator.topology import TwoSwitchTopology
from ..traffic.caida import CAIDA_TRACES, SyntheticCaidaTrace, TraceSlice
from .report import render_table

__all__ = ["Table3Config", "run", "render", "main", "run_one_failure", "build_slice"]

EVAL_TREE = HashTreeParams(width=190, depth=3, split=2, pipelined=True)


@dataclass(frozen=True)
class Table3Config:
    trace_indices: tuple[int, ...] = (0, 1, 2, 3)
    loss_rates: tuple[float, ...] = (1.0, 0.75, 0.5, 0.1, 0.01, 0.001)
    n_dedicated: int = 500
    slice_prefixes: int = 250_000
    rate_scale: float = 1.0
    n_failures: int = 60            # paper: top-10,000 one by one
    failure_pool: int = 10_000      # sample failures from the top-N of the slice
    repetitions: int = 1            # paper: 3 per prefix
    duration_s: float = 30.0
    max_flows_per_second: float = 50.0
    tree: HashTreeParams = EVAL_TREE
    seed: int = 0


# The paper samples failures from the top 10 K of ≈250 K prefixes (the
# top ~4 % by traffic); the scaled-down pool keeps the same bias toward
# entries that actually drive traffic.
QUICK_CONFIG = Table3Config(
    trace_indices=(0,),
    loss_rates=(1.0, 0.5, 0.1),
    n_dedicated=40,
    slice_prefixes=250,
    rate_scale=0.004,
    n_failures=9,
    failure_pool=60,
    duration_s=10.0,
)


def build_slice(trace_index: int, config: Table3Config) -> tuple[SyntheticCaidaTrace, TraceSlice]:
    trace = SyntheticCaidaTrace(
        CAIDA_TRACES[trace_index],
        seed=config.seed,
        n_prefixes=min(config.slice_prefixes * 4, CAIDA_TRACES[trace_index].n_prefixes),
    )
    sl = trace.slice(
        duration_s=config.duration_s,
        max_prefixes=config.slice_prefixes,
        rate_scale=config.rate_scale,
        min_rate_bps=500,
    )
    return trace, sl


def run_one_failure(
    failed_prefix: str,
    loss_rate: float,
    trace: SyntheticCaidaTrace,
    sl: TraceSlice,
    config: Table3Config,
    rep: int = 0,
) -> dict:
    """Replay the slice with one prefix failing; score the detection."""
    rng = random.Random(stable_seed(config.seed, failed_prefix, loss_rate, rep))
    sim = Simulator()
    failure_time = rng.uniform(0.5, 2.0)
    failure = EntryLossFailure(
        {failed_prefix}, loss_rate, start_time=failure_time, seed=rng.randrange(2 ** 31)
    )
    topo = TwoSwitchTopology(sim, loss_model=failure)
    dedicated = trace.top_prefixes(config.n_dedicated)
    monitor = FancyLinkMonitor(
        sim, topo.upstream, 1, topo.downstream, 1,
        FancyConfig(high_priority=dedicated, tree_params=config.tree,
                    seed=config.seed + rep),
    )
    for i, prefix in enumerate(sl.prefixes):
        FlowGenerator(
            sim, topo.source, prefix,
            rate_bps=sl.rates_bps[prefix],
            flows_per_second=min(sl.flows_per_second[prefix], config.max_flows_per_second),
            packet_size=sl.packet_size,
            seed=rng.randrange(2 ** 31),
            flow_id_base=(i + 1) * 1_000_000,
        ).start()
    monitor.start()
    sim.run(until=config.duration_s)

    is_dedicated = failed_prefix in set(dedicated)
    when = None
    report = monitor.log.first_report(kind=FailureKind.DEDICATED_ENTRY, entry=failed_prefix)
    if report is not None:
        when = report.time
    elif monitor.tree_strategy is not None:
        hp = monitor.tree_strategy.tree.hash_path(failed_prefix)
        report = monitor.log.first_report(kind=FailureKind.TREE_LEAF, hash_path=hp)
        if report is not None:
            when = report.time
    detected = when is not None and when >= failure_time
    false_positives = sum(
        1 for p in sl.prefixes if p != failed_prefix and monitor.entry_is_flagged(p)
    )
    return {
        "prefix": failed_prefix,
        "rate_bps": sl.rates_bps[failed_prefix],
        "dedicated": is_dedicated,
        "detected": detected,
        "detection_time": (when - failure_time) if detected else None,
        "false_positives": false_positives,
    }


#: Per-process memo of rebuilt trace slices (worker processes rebuild the
#: deterministic slice once per (trace, config) instead of pickling it).
_SLICE_MEMO: dict = {}


def _rebuild_slice(trace_index: int, config: Table3Config):
    key = (trace_index, fingerprint(config))
    if key not in _SLICE_MEMO:
        _SLICE_MEMO[key] = build_slice(trace_index, config)
    return _SLICE_MEMO[key]


def _failure_worker(payload: tuple) -> dict:
    """Top-level (picklable, cache-friendly) wrapper around run_one_failure."""
    trace_index, prefix, loss_rate, config, rep = payload
    trace, sl = _rebuild_slice(trace_index, config)
    return run_one_failure(prefix, loss_rate, trace, sl, config, rep)


def run(config: Optional[Table3Config] = None, quick: bool = True,
        runtime: Optional[RuntimeContext] = None) -> dict:
    config = config or (QUICK_CONFIG if quick else Table3Config())
    jobs: list[Job] = []
    for loss_rate in config.loss_rates:
        for trace_index in config.trace_indices:
            trace, sl = _rebuild_slice(trace_index, config)
            rng = random.Random(stable_seed(config.seed, trace_index, loss_rate))
            pool = list(sl.prefixes[: config.failure_pool])
            dedicated = set(trace.top_prefixes(config.n_dedicated))
            # Stratified sample so both columns (dedicated / tree) have
            # data even with a small quick-mode sample.
            ded_pool = [p for p in pool if p in dedicated]
            tree_pool = [p for p in pool if p not in dedicated]
            n_ded = min(len(ded_pool), max(1, config.n_failures // 3))
            n_tree = min(len(tree_pool), config.n_failures - n_ded)
            sample = rng.sample(ded_pool, n_ded) + rng.sample(tree_pool, n_tree)
            for prefix in sample:
                for rep in range(config.repetitions):
                    jobs.append(Job(
                        key=(loss_rate, trace_index, prefix, rep),
                        payload=(trace_index, prefix, loss_rate, config, rep),
                        fingerprint=fingerprint(
                            "table3", config, trace_index, prefix, loss_rate, rep
                        ),
                        sim_s=config.duration_s,
                    ))
    sweep = run_sweep(jobs, _failure_worker, runtime=resolve(runtime),
                      label="table3")
    rows: dict[float, dict] = {}
    for loss_rate in config.loss_rates:
        outcomes = [sweep.results[job.key] for job in jobs
                    if job.key[0] == loss_rate and job.key in sweep.results]
        rows[loss_rate] = _aggregate(outcomes)
    return {"rows": rows, "config": config, "errors": sweep.errors}


def _aggregate(outcomes: list[dict]) -> dict:
    def tpr(subset: list[dict]) -> Optional[float]:
        if not subset:
            return None
        return sum(1 for o in subset if o["detected"]) / len(subset)

    total_bytes = sum(o["rate_bps"] for o in outcomes)
    detected_bytes = sum(o["rate_bps"] for o in outcomes if o["detected"])
    times = [o["detection_time"] for o in outcomes if o["detection_time"] is not None]
    return {
        "tpr_bytes": detected_bytes / total_bytes if total_bytes else None,
        "tpr_total": tpr(outcomes),
        "tpr_dedicated": tpr([o for o in outcomes if o["dedicated"]]),
        "tpr_tree": tpr([o for o in outcomes if not o["dedicated"]]),
        "avg_detection_time": sum(times) / len(times) if times else None,
        "avg_false_positives": (
            sum(o["false_positives"] for o in outcomes) / len(outcomes) if outcomes else None
        ),
        "n": len(outcomes),
    }


def render(result: dict) -> str:
    headers = [
        "loss rate", "TPR bytes", "TPR total", "TPR dedicated", "TPR hash-tree",
        "detection time (s)", "avg FPs", "runs",
    ]
    rows = []
    for loss, agg in result["rows"].items():
        rows.append([
            f"{loss:g}",
            _pct(agg["tpr_bytes"]),
            _pct(agg["tpr_total"]),
            _pct(agg["tpr_dedicated"]),
            _pct(agg["tpr_tree"]),
            "-" if agg["avg_detection_time"] is None else f"{agg['avg_detection_time']:.2f}",
            "-" if agg["avg_false_positives"] is None else f"{agg['avg_false_positives']:.2f}",
            str(agg["n"]),
        ])
    return render_table(
        "Table 3 — FANcY accuracy and detection speed on CAIDA-like traces",
        headers,
        rows,
    )


def _pct(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.1%}"


def main(quick: bool = True, runtime: Optional[RuntimeContext] = None) -> str:
    runtime = resolve(runtime)
    config = QUICK_CONFIG if quick else Table3Config()
    if runtime.seed:
        from dataclasses import replace
        config = replace(config, seed=runtime.seed)
    text = render(run(config=config, quick=quick, runtime=runtime))
    print(text)
    return text
