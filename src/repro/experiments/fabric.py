"""Experiment fabric — network-wide FANcY with detection→reroute loop.

Scales the paper's Figure 10 case study from one monitored link to a
fabric (docs/FABRIC.md):

* **ring** — a six-switch ring with FANcY on every directed link.  A
  gray failure hits one link on a victim entry's path; the fabric
  controller installs a loop-free repair path and the victim's goodput
  recovers, while an innocent entry sharing the path is never touched —
  the single-link Figure 10 contract, reproduced through the generic
  fabric machinery.
* **fat_tree** — a k=4 fat tree with FANcY on all 64 directed links
  (≥ 32 concurrent counting sessions).  A failure on one link of a
  flow's ECMP path must be flagged by *exactly* that link's monitor
  (per-link attribution), rerouted around, and the whole run must be
  deterministic: the per-link detection records are a pure function of
  the seed.

Both cases report detection latency (failure → first flag), reroute
latency (failure → repair path installed) and the recovered goodput
fraction, the fabric analogue of Figure 10's recovery plot.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from ..core.detector import FancyConfig
from ..core.output import FailureKind
from ..fabric.builders import fat_tree, ring
from ..fabric.deployment import FabricDeployment
from ..fabric.graph import FabricNetwork
from ..fabric.reroute import FabricRerouteController
from ..runtime import Job, RuntimeContext, fingerprint, resolve, run_sweep, stable_seed
from ..simulator.apps import ThroughputMeter
from ..simulator.engine import Simulator
from ..simulator.failures import EntryLossFailure
from ..simulator.udp import UdpSource

__all__ = ["FabricExpConfig", "run_ring_case", "run_fat_tree_case", "run",
           "render", "main"]


@dataclass(frozen=True)
class FabricExpConfig:
    ring_size: int = 6
    fat_tree_k: int = 4
    n_entries: int = 4               #: fat-tree entries (one per pod pair)
    rate_bps: float = 640_000.0
    packet_size: int = 400
    failure_time_s: float = 1.0
    loss_rate: float = 1.0
    duration_s: float = 4.0
    fat_tree_duration_s: float = 2.5
    poll_interval_s: float = 0.050
    dedicated_session_s: float = 0.050
    link_delay_s: float = 0.010
    bin_s: float = 0.1
    seed: int = 0
    #: Record causal detection traces (repro.obs).  Part of the frozen
    #: config on purpose: it changes the result payload, so it must
    #: change the content-addressed cache fingerprint too.
    trace: bool = False


def _mean_bps(series: list[tuple[float, float]], lo: float, hi: float) -> float:
    window = [bps for t, bps in series if lo <= t < hi]
    return sum(window) / len(window) if window else 0.0


def _first_flag_time(deployment: FabricDeployment, link_id: str,
                     entry: Any) -> Optional[float]:
    report = deployment.monitors[link_id].log.first_report(
        FailureKind.DEDICATED_ENTRY, entry)
    return report.time if report is not None else None


def _close_the_loop(
    config: FabricExpConfig,
    net: FabricNetwork,
    entries: dict[Any, tuple[str, str]],
    victim: Any,
    failed_link: str,
    duration_s: float,
    telemetry: Any = None,
) -> dict[str, Any]:
    """Shared closed-loop body: monitors everywhere, one failure, reroute."""
    sim = net.sim
    for entry, (src, dst) in entries.items():
        net.add_entry(entry, src, dst)

    fancy = FancyConfig(
        high_priority=list(entries),
        tree_params=None,  # dedicated counters only: 64 cheap sessions
        dedicated_session_s=config.dedicated_session_s,
        seed=stable_seed(config.seed, "fabric-exp", bits=31),
    )
    deployment = FabricDeployment(net, config=fancy, telemetry=telemetry)
    controller = FabricRerouteController(
        net, deployment, poll_interval_s=config.poll_interval_s)

    a, b = net.endpoints(failed_link)
    net.link(a, b).loss_model = EntryLossFailure(
        {victim}, config.loss_rate, start_time=config.failure_time_s,
        seed=stable_seed(config.seed, "failure", failed_link, bits=31),
    )
    if telemetry is not None:
        # The experiment harness is the root cause here: open the failed
        # link's detection episode exactly when the loss model activates,
        # and log the injection on that fork's timeline.
        fork = deployment.monitors[failed_link].telemetry

        def _mark_failure() -> None:
            fork.timeline.record(sim.now, failed_link, "failure_injected",
                                 entry=victim)
            fork.traces.begin_episode(
                sim.now, cause="fault", name="entry_loss", link=failed_link,
                entry=victim, rate=config.loss_rate)

        sim.schedule_at(config.failure_time_s, _mark_failure)

    meters: dict[str, ThroughputMeter] = {}
    for entry, (src, dst) in entries.items():
        if dst not in meters:
            meters[dst] = ThroughputMeter(sim, bin_s=config.bin_s,
                                          per_entry=True)
            net.host(dst).rx_tap = meters[dst]
    for i, entry in enumerate(entries):
        src, _dst = entries[entry]
        UdpSource(
            sim, net.host(src).send, entry, flow_id=i,
            rate_bps=config.rate_bps, packet_size=config.packet_size,
            jitter=0.1, seed=stable_seed(config.seed, "src", i),
        ).start(delay=0.001 * i)

    deployment.start(stagger_s=0.001)
    controller.start()
    sim.run(until=duration_s)

    victim_dst = entries[victim][1]
    series = meters[victim_dst].entry_series_bps(victim)
    detect_at = _first_flag_time(deployment, failed_link, victim)
    reroute_at = controller.reroute_times.get((failed_link, victim))
    pre = _mean_bps(series, 0.3, config.failure_time_s)
    post = (0.0 if reroute_at is None else
            _mean_bps(series, reroute_at + 0.3, duration_s))
    flagged = deployment.flagged()
    obs: dict[str, Any] | None = None
    if telemetry is not None:
        from ..obs.health import FabricHealthReport

        spans: list[dict[str, Any]] = []
        for monitor in deployment.monitors.values():
            traces = monitor.telemetry.traces
            traces.finalize(sim.now)
            spans.extend(traces.span_dicts())
        health = FabricHealthReport.from_deployment(
            deployment, controller=controller, sim_time=sim.now)
        obs = {"health": health.to_dict(), "spans": spans}
    return {
        "n_sessions": deployment.n_sessions,
        "failed_link": failed_link,
        "victim": victim,
        "detection_delay": (None if detect_at is None
                            else detect_at - config.failure_time_s),
        "reroute_delay": (None if reroute_at is None
                          else reroute_at - config.failure_time_s),
        "recovery_fraction": (post / pre) if pre > 0 else None,
        "rerouted_packets": controller.rerouted_packets,
        "flagged_links": {lid: [repr(e) for e in ents]
                          for lid, ents in flagged.items()},
        "attribution_correct": list(flagged) == [failed_link]
        and all(list(ents) == [victim] for ents in flagged.values()),
        "sessions_completed_min": min(
            deployment.sessions_completed().values()),
        "detections": deployment.detection_records(),
        "obs": obs,
    }


def run_ring_case(config: Optional[FabricExpConfig] = None,
                  telemetry: Any = None) -> dict[str, Any]:
    """Ring closed loop: failure on the victim path, Figure 10 contract."""
    config = config or FabricExpConfig()
    sim = Simulator()
    net = FabricNetwork(sim, ring(config.ring_size),
                        link_delay_s=config.link_delay_s)
    # s0 → s2 has a unique two-hop shortest path, so the failed link
    # s1->s2 is guaranteed on it; the innocent entry shares the path.
    entries = {"victim": ("s0", "s2"), "innocent": ("s0", "s2")}
    return _close_the_loop(config, net, entries, "victim", "s1->s2",
                           config.duration_s, telemetry=telemetry)


def run_fat_tree_case(config: Optional[FabricExpConfig] = None,
                      telemetry: Any = None) -> dict[str, Any]:
    """Fat-tree closed loop: ≥32 concurrent sessions, per-link attribution."""
    config = config or FabricExpConfig()
    k = config.fat_tree_k
    sim = Simulator()
    net = FabricNetwork(sim, fat_tree(k), link_delay_s=config.link_delay_s)
    entries: dict[Any, tuple[str, str]] = {}
    for i in range(config.n_entries):
        src = f"edge{i % k}-0"
        dst = f"edge{(i + 1) % k}-1"
        entries[f"hp/{i}"] = (src, dst)
    for entry, (src, dst) in entries.items():
        net.add_entry(entry, src, dst)
    # Fail the second hop (aggregation → core) of the victim flow's
    # actual ECMP path, so exactly one core-facing monitor must flag it.
    victim = "hp/0"
    path = net.flow_path(victim, flow_id=0)
    failed_link = net.link_id(path[1], path[2])
    # _close_the_loop re-registers entries; hand it a fresh network.
    sim = Simulator()
    net = FabricNetwork(sim, fat_tree(k), link_delay_s=config.link_delay_s)
    return _close_the_loop(config, net, entries, victim, failed_link,
                           config.fat_tree_duration_s, telemetry=telemetry)


def _case_worker(payload: tuple) -> dict[str, Any]:
    """Top-level (picklable, cache-friendly) case dispatcher."""
    case, config = payload
    telemetry = None
    if config.trace:
        from ..telemetry import Telemetry

        telemetry = Telemetry(scope=case)
    runner = run_ring_case if case == "ring" else run_fat_tree_case
    return runner(config, telemetry=telemetry)


def run(config: Optional[FabricExpConfig] = None, quick: bool = True,
        runtime: Optional[RuntimeContext] = None,
        cases: tuple[str, ...] = ("ring", "fat_tree")) -> dict:
    config = config or FabricExpConfig()
    if quick:
        config = replace(config, duration_s=3.0, fat_tree_duration_s=2.0)
    jobs = [
        Job(
            key=case,
            payload=(case, config),
            fingerprint=fingerprint("fabric", config, case),
            sim_s=(config.duration_s if case == "ring"
                   else config.fat_tree_duration_s),
        )
        for case in cases
    ]
    sweep = run_sweep(jobs, _case_worker, runtime=resolve(runtime),
                      label="fabric")
    cases = {job.key: sweep.results[job.key] for job in jobs
             if job.key in sweep.results}
    return {"cases": cases, "config": config, "errors": sweep.errors}


def _fmt_delay(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value * 1e3:.0f} ms"


def render(result: dict) -> str:
    lines = [
        "Fabric closed loop — gray failure -> FANcY flag -> selective reroute",
        "",
        f"{'case':<10} {'sessions':>8} {'detect':>8} {'reroute':>8} "
        f"{'recovered':>10}  failed link",
    ]
    for case, data in result["cases"].items():
        frac = data["recovery_fraction"]
        lines.append(
            f"{case:<10} {data['n_sessions']:>8} "
            f"{_fmt_delay(data['detection_delay']):>8} "
            f"{_fmt_delay(data['reroute_delay']):>8} "
            f"{'n/a' if frac is None else f'{frac * 100:.0f} %':>10}  "
            f"{data['failed_link']}"
            f"{'' if data['attribution_correct'] else '  [MISATTRIBUTED]'}"
        )
    lines.append("")
    lines.append("(recovered = victim goodput after reroute / before failure; "
                 "paper Fig. 10: sub-second recovery)")
    for case, data in result["cases"].items():
        obs = data.get("obs")
        if obs:
            counts = obs["health"]["summary"]["status"]
            status = ", ".join(f"{k}={v}" for k, v in sorted(counts.items())
                               if v)
            lines.append(f"{case}: {len(obs['spans'])} trace spans; "
                         f"link health: {status}")
    return "\n".join(lines)


def main(quick: bool = True, runtime: Optional[RuntimeContext] = None,
         trace: bool = False, out_dir: Any = None) -> str:
    runtime = resolve(runtime)
    config = FabricExpConfig(trace=trace)
    if runtime.seed:
        config = replace(config, seed=runtime.seed)
    result = run(config=config, quick=quick, runtime=runtime)
    text = render(result)
    if trace and out_dir is not None:
        _write_trace_artifacts(result, out_dir)
    print(text)
    return text


def _write_trace_artifacts(result: dict, out_dir: Any) -> None:
    """Write per-case trace JSONL + Chrome trace and the HTML report."""
    import json
    from pathlib import Path

    from ..obs.report import render_html
    from ..obs.trace import chrome_trace_from_dicts, spans_to_jsonl

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    sections = []
    for case, data in result["cases"].items():
        obs = data.get("obs")
        if not obs:
            continue
        (out / f"fabric-traces-{case}.jsonl").write_text(
            spans_to_jsonl(obs["spans"]))
        (out / f"fabric-chrome-{case}.json").write_text(
            json.dumps(chrome_trace_from_dicts(obs["spans"]),
                       sort_keys=True))
        sections.append({"name": case, "health": obs["health"],
                         "spans": obs["spans"]})
    if sections:
        (out / "fabric-report.html").write_text(render_html(sections))
