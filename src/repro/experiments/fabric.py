"""Experiment fabric — network-wide FANcY with detection→reroute loop.

Scales the paper's Figure 10 case study from one monitored link to a
fabric (docs/FABRIC.md):

* **ring** — a six-switch ring with FANcY on every directed link.  A
  gray failure hits one link on a victim entry's path; the fabric
  controller installs a loop-free repair path and the victim's goodput
  recovers, while an innocent entry sharing the path is never touched —
  the single-link Figure 10 contract, reproduced through the generic
  fabric machinery.
* **fat_tree** — a k=4 fat tree with FANcY on all 64 directed links
  (≥ 32 concurrent counting sessions).  A failure on one link of a
  flow's ECMP path must be flagged by *exactly* that link's monitor
  (per-link attribution), rerouted around, and the whole run must be
  deterministic: the per-link detection records are a pure function of
  the seed.

Both cases report detection latency (failure → first flag), reroute
latency (failure → repair path installed) and the recovered goodput
fraction, the fabric analogue of Figure 10's recovery plot.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from ..core.detector import FancyConfig
from ..core.output import FailureKind
from ..fabric.builders import fat_tree, ring
from ..fabric.deployment import FabricDeployment
from ..fabric.graph import FabricNetwork
from ..fabric.reroute import FabricRerouteController
from ..runtime import Job, RuntimeContext, fingerprint, resolve, run_sweep, stable_seed
from ..simulator import fastpath
from ..simulator.apps import ThroughputMeter
from ..simulator.engine import Simulator
from ..simulator.failures import EntryLossFailure
from ..simulator.udp import UdpSource

__all__ = ["FabricExpConfig", "run_ring_case", "run_fat_tree_case", "run",
           "run_sharded", "render", "main"]

#: Background flows get ids far above the high-priority range so the two
#: namespaces can never collide in flowlet hashing or fluid bindings.
_BG_FLOW_BASE = 1000


@dataclass(frozen=True)
class FabricExpConfig:
    ring_size: int = 6
    fat_tree_k: int = 4
    n_entries: int = 4               #: fat-tree entries (one per pod pair)
    rate_bps: float = 640_000.0
    packet_size: int = 400
    failure_time_s: float = 1.0
    loss_rate: float = 1.0
    duration_s: float = 4.0
    fat_tree_duration_s: float = 2.5
    poll_interval_s: float = 0.050
    dedicated_session_s: float = 0.050
    link_delay_s: float = 0.010
    bin_s: float = 0.1
    seed: int = 0
    #: Record causal detection traces (repro.obs).  Part of the frozen
    #: config on purpose: it changes the result payload, so it must
    #: change the content-addressed cache fingerprint too.
    trace: bool = False
    #: Hybrid fluid/packet mode (docs/PERFORMANCE.md): background
    #: entries become piecewise-constant rate segments absorbed into the
    #: counters at counting-window boundaries instead of per-packet
    #: events.  High-priority entries always stay discrete — they drive
    #: detection, reroute and goodput metering.  ``fastpath.scoped
    #: (fluid=True)`` enables the same tier without touching the config.
    fluid: bool = False
    #: Best-effort entries sharing the high-priority endpoints — the
    #: traffic the fluid model absorbs (and the discrete engine pays
    #: for, one event per packet per hop).
    background_entries: int = 0
    background_rate_bps: float = 4_000_000.0
    background_packet_size: int = 400
    #: Deploy the default hash tree on every monitor so background
    #: entries are actually counted (zoomed over) rather than merely
    #: forwarded.
    tree: bool = False


def _mean_bps(series: list[tuple[float, float]], lo: float, hi: float) -> float:
    window = [bps for t, bps in series if lo <= t < hi]
    return sum(window) / len(window) if window else 0.0


def _first_flag_time(deployment: FabricDeployment, link_id: str,
                     entry: Any) -> Optional[float]:
    report = deployment.monitors[link_id].log.first_report(
        FailureKind.DEDICATED_ENTRY, entry)
    return report.time if report is not None else None


def _bg_entries(config: FabricExpConfig,
                entries: dict[Any, tuple[str, str]]) -> dict[Any, tuple[str, str]]:
    """Best-effort entries cycling the high-priority endpoint pairs."""
    pairs = list(entries.values())
    return {f"bg/{j}": pairs[j % len(pairs)]
            for j in range(config.background_entries)}


def _fluid_legs(net: FabricNetwork, path: list[str], a: str, b: str,
                packet_size: int) -> Optional[tuple[float, ...]]:
    """Delay chain host → ``a``'s egress, or None if ``a->b`` is off-path.

    Mirrors the discrete pipeline's per-hop additions in order: the
    instant access link delivers at ``now + access_delay``, each
    switch-switch hop serializes then propagates, and the monitor's
    egress tap fires inline at the arrival instant — so folding these
    legs left-to-right reproduces the exact float the packet model
    compares against the counting-window boundary.
    """
    try:
        idx = path.index(a)
    except ValueError:
        return None
    if idx + 1 >= len(path) or path[idx + 1] != b:
        return None
    legs: list[float] = [net.access_delay_s]
    for i in range(idx):
        link = net.link(path[i], path[i + 1])
        if link.bandwidth_bps:
            legs.append(packet_size * 8 / link.bandwidth_bps)
        legs.append(link.delay_s)
    return tuple(legs)


def _bind_fluid_background(
    config: FabricExpConfig,
    net: FabricNetwork,
    deployment: FabricDeployment,
    bg: dict[Any, tuple[str, str]],
    flow_base: int = _BG_FLOW_BASE,
    loss_seed_override: Optional[int] = None,
) -> Any:
    """Register background flows as fluid and bind them per monitor.

    Each monitor gets the subset of flows whose ECMP path crosses its
    link, grouped by delay chain; per-window loss draws seed from
    ``stable_seed(config.seed, "fluid-loss", link_id)`` (or the sharded
    runner's per-link seed) — either way a pure function of the base
    seed and the link id, never of worker or shard count.
    """
    from ..simulator.fluid import FluidFlow, FluidTraffic

    engine = FluidTraffic(net.sim)
    for j, (entry, _pair) in enumerate(bg.items()):
        engine.add_flow(FluidFlow(
            entry=entry, flow_id=flow_base + j,
            rate_bps=config.background_rate_bps,
            packet_size=config.background_packet_size,
            jitter=0.1, seed=stable_seed(config.seed, "bg", j),
            start_s=0.0005 * (j + 1),
        ))
    for link_id, monitor in deployment.monitors.items():
        a, b = net.endpoints(link_id)
        by_legs: dict[tuple[float, ...], list[Any]] = {}
        for flow in engine.flows:
            path = net.flow_path(flow.entry, flow.flow_id)
            legs = _fluid_legs(net, path, a, b, flow.packet_size)
            if legs is not None:
                by_legs.setdefault(legs, []).append(flow)
        loss_seed = (loss_seed_override if loss_seed_override is not None
                     else stable_seed(config.seed, "fluid-loss", link_id,
                                      bits=31))
        for legs, flows in by_legs.items():
            engine.bind_monitor(
                monitor, flows, legs,
                loss_model=net.link(a, b).loss_model,
                loss_seed=loss_seed,
            )
    return engine


def _start_background_sources(
    config: FabricExpConfig,
    net: FabricNetwork,
    bg: dict[Any, tuple[str, str]],
    only_flow_ids: Optional[set] = None,
) -> None:
    """Discrete background: one UdpSource per entry, fluid-matched params."""
    for j, (entry, (src, dst)) in enumerate(bg.items()):
        flow_id = _BG_FLOW_BASE + j
        if only_flow_ids is not None and flow_id not in only_flow_ids:
            continue
        net.host(dst)  # materialize the sink before traffic arrives
        UdpSource(
            net.sim, net.host(src).send, entry, flow_id=flow_id,
            rate_bps=config.background_rate_bps,
            packet_size=config.background_packet_size,
            jitter=0.1, seed=stable_seed(config.seed, "bg", j),
        ).start(delay=0.0005 * (j + 1))


def _close_the_loop(
    config: FabricExpConfig,
    net: FabricNetwork,
    entries: dict[Any, tuple[str, str]],
    victim: Any,
    failed_link: str,
    duration_s: float,
    telemetry: Any = None,
) -> dict[str, Any]:
    """Shared closed-loop body: monitors everywhere, one failure, reroute."""
    sim = net.sim
    for entry, (src, dst) in entries.items():
        net.add_entry(entry, src, dst)
    bg = _bg_entries(config, entries)
    for entry, (src, dst) in bg.items():
        net.add_entry(entry, src, dst)
    use_fluid = bool(bg) and (config.fluid or fastpath.CONFIG.fluid)

    fancy = FancyConfig(
        high_priority=list(entries),
        dedicated_session_s=config.dedicated_session_s,
        seed=stable_seed(config.seed, "fabric-exp", bits=31),
    )
    if not config.tree:
        # Dedicated counters only: 64 cheap sessions.
        fancy = replace(fancy, tree_params=None)
    deployment = FabricDeployment(net, config=fancy, telemetry=telemetry)
    controller = FabricRerouteController(
        net, deployment, poll_interval_s=config.poll_interval_s)

    a, b = net.endpoints(failed_link)
    net.link(a, b).loss_model = EntryLossFailure(
        {victim}, config.loss_rate, start_time=config.failure_time_s,
        seed=stable_seed(config.seed, "failure", failed_link, bits=31),
    )
    if telemetry is not None:
        # The experiment harness is the root cause here: open the failed
        # link's detection episode exactly when the loss model activates,
        # and log the injection on that fork's timeline.
        fork = deployment.monitors[failed_link].telemetry

        def _mark_failure() -> None:
            fork.timeline.record(sim.now, failed_link, "failure_injected",
                                 entry=victim)
            fork.traces.begin_episode(
                sim.now, cause="fault", name="entry_loss", link=failed_link,
                entry=victim, rate=config.loss_rate)

        sim.schedule_at(config.failure_time_s, _mark_failure)

    meters: dict[str, ThroughputMeter] = {}
    for entry, (src, dst) in entries.items():
        if dst not in meters:
            meters[dst] = ThroughputMeter(sim, bin_s=config.bin_s,
                                          per_entry=True)
            net.host(dst).rx_tap = meters[dst]
    for i, entry in enumerate(entries):
        src, _dst = entries[entry]
        UdpSource(
            sim, net.host(src).send, entry, flow_id=i,
            rate_bps=config.rate_bps, packet_size=config.packet_size,
            jitter=0.1, seed=stable_seed(config.seed, "src", i),
        ).start(delay=0.001 * i)
    fluid_engine = None
    if use_fluid:
        fluid_engine = _bind_fluid_background(config, net, deployment, bg)
    elif bg:
        _start_background_sources(config, net, bg)

    deployment.start(stagger_s=0.001)
    controller.start()
    sim.run(until=duration_s)

    victim_dst = entries[victim][1]
    series = meters[victim_dst].entry_series_bps(victim)
    detect_at = _first_flag_time(deployment, failed_link, victim)
    reroute_at = controller.reroute_times.get((failed_link, victim))
    pre = _mean_bps(series, 0.3, config.failure_time_s)
    post = (0.0 if reroute_at is None else
            _mean_bps(series, reroute_at + 0.3, duration_s))
    flagged = deployment.flagged()
    obs: dict[str, Any] | None = None
    if telemetry is not None:
        from ..obs.health import FabricHealthReport

        spans: list[dict[str, Any]] = []
        for monitor in deployment.monitors.values():
            traces = monitor.telemetry.traces
            traces.finalize(sim.now)
            spans.extend(traces.span_dicts())
        health = FabricHealthReport.from_deployment(
            deployment, controller=controller, sim_time=sim.now)
        obs = {"health": health.to_dict(), "spans": spans}
    return {
        "n_sessions": deployment.n_sessions,
        "failed_link": failed_link,
        "victim": victim,
        "detection_delay": (None if detect_at is None
                            else detect_at - config.failure_time_s),
        "reroute_delay": (None if reroute_at is None
                          else reroute_at - config.failure_time_s),
        "recovery_fraction": (post / pre) if pre > 0 else None,
        "rerouted_packets": controller.rerouted_packets,
        "flagged_links": {lid: [repr(e) for e in ents]
                          for lid, ents in flagged.items()},
        "attribution_correct": list(flagged) == [failed_link]
        and all(list(ents) == [victim] for ents in flagged.values()),
        "sessions_completed_min": min(
            deployment.sessions_completed().values()),
        "detections": deployment.detection_records(),
        "events_processed": sim.events_processed,
        "fluid_absorbed": fluid_engine.absorbed if fluid_engine else 0,
        "fluid_lost": fluid_engine.lost if fluid_engine else 0,
        "obs": obs,
    }


def _build_net(case: str, config: FabricExpConfig) -> FabricNetwork:
    """A fresh case network on a fresh simulator."""
    topo = (ring(config.ring_size) if case == "ring"
            else fat_tree(config.fat_tree_k))
    return FabricNetwork(Simulator(), topo, link_delay_s=config.link_delay_s)


def _case_plan(case: str, config: FabricExpConfig) -> dict[str, Any]:
    """Entries / victim / failed link for a case — the pure-data half.

    Shared by the closed-loop runners and the sharded per-link probes so
    both observe the *same* fabric scenario for a given config.
    """
    if case == "ring":
        # s0 → s2 has a unique two-hop shortest path, so the failed link
        # s1->s2 is guaranteed on it; the innocent entry shares the path.
        return {
            "entries": {"victim": ("s0", "s2"), "innocent": ("s0", "s2")},
            "victim": "victim",
            "failed_link": "s1->s2",
            "duration_s": config.duration_s,
        }
    k = config.fat_tree_k
    entries: dict[Any, tuple[str, str]] = {}
    for i in range(config.n_entries):
        src = f"edge{i % k}-0"
        dst = f"edge{(i + 1) % k}-1"
        entries[f"hp/{i}"] = (src, dst)
    # Fail the second hop (aggregation → core) of the victim flow's
    # actual ECMP path, so exactly one core-facing monitor must flag it.
    victim = "hp/0"
    scout = _build_net(case, config)
    for entry, (src, dst) in entries.items():
        scout.add_entry(entry, src, dst)
    path = scout.flow_path(victim, flow_id=0)
    return {
        "entries": entries,
        "victim": victim,
        "failed_link": scout.link_id(path[1], path[2]),
        "duration_s": config.fat_tree_duration_s,
    }


def run_ring_case(config: Optional[FabricExpConfig] = None,
                  telemetry: Any = None) -> dict[str, Any]:
    """Ring closed loop: failure on the victim path, Figure 10 contract."""
    config = config or FabricExpConfig()
    plan = _case_plan("ring", config)
    return _close_the_loop(config, _build_net("ring", config),
                           plan["entries"], plan["victim"],
                           plan["failed_link"], plan["duration_s"],
                           telemetry=telemetry)


def run_fat_tree_case(config: Optional[FabricExpConfig] = None,
                      telemetry: Any = None) -> dict[str, Any]:
    """Fat-tree closed loop: ≥32 concurrent sessions, per-link attribution."""
    config = config or FabricExpConfig()
    plan = _case_plan("fat_tree", config)
    return _close_the_loop(config, _build_net("fat_tree", config),
                           plan["entries"], plan["victim"],
                           plan["failed_link"], plan["duration_s"],
                           telemetry=telemetry)


def _case_worker(payload: tuple) -> dict[str, Any]:
    """Top-level (picklable, cache-friendly) case dispatcher."""
    case, config = payload
    telemetry = None
    if config.trace:
        from ..telemetry import Telemetry

        telemetry = Telemetry(scope=case)
    runner = run_ring_case if case == "ring" else run_fat_tree_case
    return runner(config, telemetry=telemetry)


def run(config: Optional[FabricExpConfig] = None, quick: bool = True,
        runtime: Optional[RuntimeContext] = None,
        cases: tuple[str, ...] = ("ring", "fat_tree")) -> dict:
    config = config or FabricExpConfig()
    if quick:
        config = replace(config, duration_s=3.0, fat_tree_duration_s=2.0)
    jobs = [
        Job(
            key=case,
            payload=(case, config),
            fingerprint=fingerprint("fabric", config, case),
            sim_s=(config.duration_s if case == "ring"
                   else config.fat_tree_duration_s),
        )
        for case in cases
    ]
    sweep = run_sweep(jobs, _case_worker, runtime=resolve(runtime),
                      label="fabric")
    cases = {job.key: sweep.results[job.key] for job in jobs
             if job.key in sweep.results}
    return {"cases": cases, "config": config, "errors": sweep.errors}


# --------------------------------------------------------------------------
# sharded execution: per-link probes across worker processes
# --------------------------------------------------------------------------


def _link_probe(case: str, config: FabricExpConfig, link_id: str,
                link_seed: int) -> dict[str, Any]:
    """One link's detection probe — a pure function of (config, case, link).

    The sharding unit (docs/FABRIC.md): the probe rebuilds the case
    scenario on a fresh simulator, monitors exactly one link, installs
    the planned failure, and simulates only the flows whose ECMP path
    crosses the monitored link.  Detection-focused by design — no
    reroute controller, no goodput meters.  Nothing in here depends on
    which shard (or how many shards) the probe runs under: that is the
    ``--shards 1/2/4`` byte-equality contract.
    """
    from ..telemetry import Telemetry

    plan = _case_plan(case, config)
    net = _build_net(case, config)
    sim = net.sim
    entries = plan["entries"]
    for entry, (src, dst) in entries.items():
        net.add_entry(entry, src, dst)
    bg = _bg_entries(config, entries)
    for entry, (src, dst) in bg.items():
        net.add_entry(entry, src, dst)

    fancy = FancyConfig(
        high_priority=list(entries),
        dedicated_session_s=config.dedicated_session_s,
        seed=stable_seed(config.seed, "fabric-exp", bits=31),
    )
    if not config.tree:
        fancy = replace(fancy, tree_params=None)
    telemetry = Telemetry(scope=link_id)
    deployment = FabricDeployment(net, config=fancy, links=[link_id],
                                  telemetry=telemetry)

    # The planned failure is installed in *every* probe (whether or not
    # it hits the monitored link): all probes observe the same fabric.
    fa, fb = net.endpoints(plan["failed_link"])
    net.link(fa, fb).loss_model = EntryLossFailure(
        {plan["victim"]}, config.loss_rate,
        start_time=config.failure_time_s,
        seed=stable_seed(config.seed, "failure", plan["failed_link"],
                         bits=31),
    )
    if link_id == plan["failed_link"]:
        fork = deployment.monitors[link_id].telemetry
        victim = plan["victim"]

        def _mark_failure() -> None:
            fork.timeline.record(sim.now, link_id, "failure_injected",
                                 entry=victim)
            fork.traces.begin_episode(
                sim.now, cause="fault", name="entry_loss", link=link_id,
                entry=victim, rate=config.loss_rate)

        sim.schedule_at(config.failure_time_s, _mark_failure)

    # Sources: identical parameters and seeds to the full run, but only
    # the flows that actually cross the monitored link.
    ma, mb = net.endpoints(link_id)
    for i, entry in enumerate(entries):
        src, dst = entries[entry]
        if _fluid_legs(net, net.flow_path(entry, i), ma, mb,
                       config.packet_size) is None:
            continue
        net.host(dst)
        UdpSource(
            sim, net.host(src).send, entry, flow_id=i,
            rate_bps=config.rate_bps, packet_size=config.packet_size,
            jitter=0.1, seed=stable_seed(config.seed, "src", i),
        ).start(delay=0.001 * i)
    fluid_engine = None
    if bg and (config.fluid or fastpath.CONFIG.fluid):
        fluid_engine = _bind_fluid_background(
            config, net, deployment, bg, loss_seed_override=link_seed)
    elif bg:
        crossing = {
            _BG_FLOW_BASE + j
            for j, entry in enumerate(bg)
            if _fluid_legs(net, net.flow_path(entry, _BG_FLOW_BASE + j),
                           ma, mb, config.background_packet_size) is not None
        }
        _start_background_sources(config, net, bg, only_flow_ids=crossing)

    # Stagger by the link's position in the full deployment order, so a
    # probe's session boundaries match the link's in an unsharded run.
    pos = net.directed_link_ids().index(link_id)
    deployment.monitors[link_id].start(delay=pos * 0.001)
    sim.run(until=plan["duration_s"])

    monitor = deployment.monitors[link_id]
    monitor.telemetry.traces.finalize(sim.now)
    return {
        "link": link_id,
        "detections": deployment.detection_records(),
        "metrics": telemetry.metrics.snapshot(),
        "spans": monitor.telemetry.traces.span_dicts(),
        "sessions_completed": deployment.sessions_completed()[link_id],
        "events_processed": sim.events_processed,
        "fluid_absorbed": fluid_engine.absorbed if fluid_engine else 0,
    }


def _shard_worker(payload: tuple) -> dict[str, Any]:
    """Top-level (picklable) shard executor: one probe per assigned link."""
    case, config, links, link_seeds = payload
    return {
        link_id: _link_probe(case, config, link_id, link_seed)
        for link_id, link_seed in zip(links, link_seeds)
    }


def run_sharded(config: Optional[FabricExpConfig] = None,
                case: str = "ring", shards: int = 1,
                runtime: Optional[RuntimeContext] = None,
                quick: bool = True) -> dict[str, Any]:
    """Detection-focused fabric run, sharded across worker processes.

    Partitions the case's directed links into ``shards`` batches
    (:func:`repro.fabric.sharding.plan_shards`), runs one per-link probe
    simulation per monitored link under :func:`~repro.runtime.run_sweep`
    workers, and merges the per-link payloads deterministically — the
    merged detection records, Prometheus text and trace JSONL are
    byte-identical for any shard/worker count.
    """
    from ..fabric.sharding import merge_link_results, plan_shards

    config = config or FabricExpConfig()
    if quick:
        config = replace(config, duration_s=3.0, fat_tree_duration_s=2.0)
    link_ids = _build_net(case, config).directed_link_ids()
    specs = plan_shards(link_ids, shards, seed=config.seed)
    duration = (config.duration_s if case == "ring"
                else config.fat_tree_duration_s)
    jobs = [
        Job(
            key=f"shard-{spec.index}",
            payload=(case, config, spec.links, spec.link_seeds),
            fingerprint=fingerprint("fabric-shard", config, case, spec.links),
            sim_s=duration * len(spec.links),
        )
        for spec in specs
    ]
    sweep = run_sweep(jobs, _shard_worker, runtime=resolve(runtime),
                      label=f"fabric-shard[{case}]")
    # A silently missing shard would merge into a plausible-but-wrong
    # result (fewer links, fewer detections) — insist on completeness.
    sweep.require_ok(f"fabric-shard[{case}]")
    per_link: dict[str, dict[str, Any]] = {}
    for spec in specs:
        per_link.update(sweep.results[f"shard-{spec.index}"])
    merged = merge_link_results(per_link)
    merged["case"] = case
    merged["shards"] = len(specs)
    return merged


def _fmt_delay(value: Optional[float]) -> str:
    return "n/a" if value is None else f"{value * 1e3:.0f} ms"


def render(result: dict) -> str:
    lines = [
        "Fabric closed loop — gray failure -> FANcY flag -> selective reroute",
        "",
        f"{'case':<10} {'sessions':>8} {'detect':>8} {'reroute':>8} "
        f"{'recovered':>10}  failed link",
    ]
    for case, data in result["cases"].items():
        frac = data["recovery_fraction"]
        lines.append(
            f"{case:<10} {data['n_sessions']:>8} "
            f"{_fmt_delay(data['detection_delay']):>8} "
            f"{_fmt_delay(data['reroute_delay']):>8} "
            f"{'n/a' if frac is None else f'{frac * 100:.0f} %':>10}  "
            f"{data['failed_link']}"
            f"{'' if data['attribution_correct'] else '  [MISATTRIBUTED]'}"
        )
    lines.append("")
    lines.append("(recovered = victim goodput after reroute / before failure; "
                 "paper Fig. 10: sub-second recovery)")
    for case, data in result["cases"].items():
        if data.get("fluid_absorbed"):
            lines.append(
                f"{case}: fluid model absorbed {data['fluid_absorbed']} "
                f"packet emissions (engine processed "
                f"{data['events_processed']} events)")
    for case, data in result["cases"].items():
        obs = data.get("obs")
        if obs:
            counts = obs["health"]["summary"]["status"]
            status = ", ".join(f"{k}={v}" for k, v in sorted(counts.items())
                               if v)
            lines.append(f"{case}: {len(obs['spans'])} trace spans; "
                         f"link health: {status}")
    return "\n".join(lines)


def main(quick: bool = True, runtime: Optional[RuntimeContext] = None,
         trace: bool = False, out_dir: Any = None, fluid: bool = False,
         shards: int = 0) -> str:
    runtime = resolve(runtime)
    config = FabricExpConfig(trace=trace)
    if fluid:
        # The fluid tier is only observable with background traffic to
        # absorb: give the demo a slab of it, plus the hash tree so the
        # absorbed counts are actually zoomed over.
        config = replace(config, fluid=True, tree=True,
                         background_entries=16)
    if runtime.seed:
        config = replace(config, seed=runtime.seed)
    if shards:
        return _main_sharded(config, shards, quick, runtime, trace, out_dir)
    result = run(config=config, quick=quick, runtime=runtime)
    text = render(result)
    if trace and out_dir is not None:
        _write_trace_artifacts(result, out_dir)
    print(text)
    return text


def _main_sharded(config: FabricExpConfig, shards: int, quick: bool,
                  runtime: RuntimeContext, trace: bool,
                  out_dir: Any) -> str:
    lines = [f"Fabric sharded detection runs — {shards} shard(s) "
             "(per-link probes, no reroute loop)", ""]
    for case in ("ring", "fat_tree"):
        merged = run_sharded(config=config, case=case, shards=shards,
                             runtime=runtime, quick=quick)
        line = (f"{case:<10} links={len(merged['links'])} "
                f"shards={merged['shards']} "
                f"detections={len(merged['detections'])} "
                f"events={merged['events_processed']}")
        if merged["fluid_absorbed"]:
            line += f" fluid_absorbed={merged['fluid_absorbed']}"
        lines.append(line)
        if trace and out_dir is not None:
            from pathlib import Path

            out = Path(out_dir)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"fabric-shard-traces-{case}.jsonl").write_text(
                merged["trace_jsonl"])
            (out / f"fabric-shard-metrics-{case}.prom").write_text(
                merged["prometheus"])
    text = "\n".join(lines)
    print(text)
    return text


def _write_trace_artifacts(result: dict, out_dir: Any) -> None:
    """Write per-case trace JSONL + Chrome trace and the HTML report."""
    import json
    from pathlib import Path

    from ..obs.report import render_html
    from ..obs.trace import chrome_trace_from_dicts, spans_to_jsonl

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    sections = []
    for case, data in result["cases"].items():
        obs = data.get("obs")
        if not obs:
            continue
        (out / f"fabric-traces-{case}.jsonl").write_text(
            spans_to_jsonl(obs["spans"]))
        (out / f"fabric-chrome-{case}.json").write_text(
            json.dumps(chrome_trace_from_dicts(obs["spans"]),
                       sort_keys=True))
        sections.append({"name": case, "health": obs["health"],
                         "spans": obs["spans"]})
    if sections:
        (out / "fabric-report.html").write_text(render_html(sections))
