"""Experiment table4 — Tofino hardware resource usage (Table 4).

Renders the resource-share model for the three FANcY configurations
against the switch.p4 reference, plus the Appendix B.2 memory accounting
that backs the SRAM column (192 KB of FSM state, 128 KB of dedicated
counters, 47.6 KB of tree, ≈28 KB of rerouting structures — 367.6 KB
total, 394 KB with rerouting).
"""

from __future__ import annotations

from ..hardware.resources import (
    RESOURCE_CLASSES,
    SWITCH_P4,
    TABLE4_CONFIGS,
    dedicated_counter_memory_bits,
    fsm_memory_bits,
    hashtree_memory_bits,
    rerouting_memory_bits,
    resource_usage,
    total_fancy_memory_bits,
)
from .report import render_table

__all__ = ["run", "render", "main"]


def run() -> dict:
    usage = {name: resource_usage(name) for name in TABLE4_CONFIGS}
    usage["switch.p4"] = SWITCH_P4
    memory = {
        "state machines (KB)": fsm_memory_bits() / 8 / 1024,
        "dedicated counters (KB)": dedicated_counter_memory_bits() / 8 / 1024,
        "hash-based tree (KB)": hashtree_memory_bits() / 8 / 1024,
        "rerouting (KB)": rerouting_memory_bits() / 8 / 1024,
        "total (KB)": total_fancy_memory_bits() / 8 / 1024,
        "total with rerouting (KB)": total_fancy_memory_bits(with_rerouting=True) / 8 / 1024,
    }
    return {"usage": usage, "memory": memory}


def render(result: dict) -> str:
    configs = list(TABLE4_CONFIGS) + ["switch.p4"]
    headers = ["Resource"] + configs
    rows = []
    for resource in RESOURCE_CLASSES:
        row = [resource]
        for config in configs:
            value = result["usage"][config].as_dict()[resource]
            row.append(f"{value:.2f}%")
        rows.append(row)
    table = render_table("Table 4 — hardware resource usage on a 32-port Tofino",
                         headers, rows)
    mem_rows = [[k, f"{v:.1f}"] for k, v in result["memory"].items()]
    memory = render_table("Appendix B.2 — memory accounting",
                          ["component", "KB"], mem_rows)
    return table + "\n\n" + memory


def main() -> str:
    text = render(run())
    print(text)
    return text
