"""Experiment fig7 — dedicated counters heatmaps (Figure 7).

Single-entry gray failures tracked by a dedicated counter, swept over the
18-row entry-size grid and the loss-rate axis.  Expected shape (paper):

* TPR ≈ 1 everywhere the failed entry drives ≥500 Kbps or drops ≥1 % of
  packets; accuracy degrades only in the bottom-right corner (tiny
  entries × 0.1 % loss) where whole repetitions see no drop at all;
* detection time ≈ the counter-exchange frequency plus session
  opening/closing (~70–150 ms) for healthy-size entries, growing to
  seconds in the bottom rows where the first affected packet itself takes
  that long to appear.
"""

from __future__ import annotations

from typing import Optional

from ..runtime import RuntimeContext, resolve
from .heatmaps import PAPER_SCALE, QUICK_SCALE, HeatmapScale, render_heatmap_pair, run_heatmap

__all__ = ["run", "render", "main"]


def run(scale: Optional[HeatmapScale] = None, quick: bool = True, seed: int = 0,
        workers: Optional[int] = None,
        runtime: Optional[RuntimeContext] = None) -> dict:
    scale = scale or (QUICK_SCALE if quick else PAPER_SCALE)
    return run_heatmap("dedicated", scale, seed=seed, workers=workers,
                       runtime=runtime)


def render(result: dict) -> str:
    return render_heatmap_pair("Figure 7 — dedicated counters", result)


def main(quick: bool = True, workers: Optional[int] = None,
         runtime: Optional[RuntimeContext] = None) -> str:
    runtime = resolve(runtime, workers=workers)
    text = render(run(quick=quick, seed=runtime.seed, runtime=runtime))
    print(text)
    return text
