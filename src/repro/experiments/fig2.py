"""Experiment fig2 — NetSeer required memory (Figure 2).

Regenerates the three curves (64 ports × 100/200/400 Gbps) of required
per-switch buffer memory as a function of inter-switch link latency, from
the analytical model, and *confirms by simulation* (as the paper does in
ns-3) with the executable ring-buffer model: at ISP-like latency and rate
the buffer wraps before acknowledgements return and NetSeer loses
per-entry visibility.
"""

from __future__ import annotations

from ..baselines.netseer import NetSeerBuffer, NetSeerModel
from .report import render_series

__all__ = ["run", "render", "simulate_operational", "LATENCIES", "BANDWIDTHS"]

LATENCIES = (100e-6, 300e-6, 1e-3, 3e-3, 10e-3, 30e-3, 100e-3)
BANDWIDTHS = (100e9, 200e9, 400e9)

#: In-switch application memory available (§2.3: "order of few MBs").
AVAILABLE_BYTES = 15e6


def run(model: NetSeerModel | None = None) -> dict:
    model = model or NetSeerModel()
    curves = model.figure2(LATENCIES, BANDWIDTHS, n_ports=64)
    operational = {
        bw: {
            lat: model.operational(64, bw, lat, AVAILABLE_BYTES)
            for lat in LATENCIES
        }
        for bw in BANDWIDTHS
    }
    return {"curves": curves, "operational": operational, "available_mb": AVAILABLE_BYTES / 1e6}


def simulate_operational(
    port_bandwidth_bps: float,
    link_latency_s: float,
    available_bytes: float = AVAILABLE_BYTES,
    n_ports: int = 64,
    horizon_s: float = 0.2,
    time_scale: float = 1e-3,
    model: NetSeerModel | None = None,
) -> dict:
    """Simulated confirmation for one (bandwidth, latency) point.

    Drives the ring buffer with a deterministic packet arrival process at
    the port's line rate, scaled down by ``time_scale`` in both rate and
    buffer capacity so the Python loop stays tractable — the
    wrap-before-ack behaviour depends only on the rate × RTT / capacity
    ratio, which scaling preserves.
    """
    model = model or NetSeerModel()
    pps = port_bandwidth_bps / (model.packet_size * 8) * time_scale
    per_port_bytes = available_bytes / n_ports
    capacity = max(1, int(per_port_bytes / model.record_bytes * time_scale))
    rtt = link_latency_s * model.rtt_factor
    buffer = NetSeerBuffer(capacity, rtt)
    interval = 1.0 / pps
    now, pid = 0.0, 0
    while now < horizon_s:
        buffer.on_send(pid, now)
        pid += 1
        now += interval
    return {
        "operational": buffer.operational,
        "visibility_loss": buffer.visibility_loss_fraction,
        "sent": buffer.sent,
    }


def render(result: dict) -> str:
    series = {
        f"64x{int(bw / 1e9)}G (MB)": [(lat * 1e3, mb) for lat, mb in curve.items()]
        for bw, curve in result["curves"].items()
    }
    text = render_series(
        "Figure 2 — NetSeer required memory per switch vs. link latency",
        series,
        x_label="latency (ms)",
    )
    ops = result["operational"]
    lines = [text, "", f"operational with {result['available_mb']:.0f} MB available:"]
    for bw, points in ops.items():
        ok = [f"{lat * 1e3:g}ms:{'yes' if v else 'NO'}" for lat, v in points.items()]
        lines.append(f"  64x{int(bw / 1e9)}G  " + "  ".join(ok))
    return "\n".join(lines)


def main() -> str:
    text = render(run())
    print(text)
    return text
