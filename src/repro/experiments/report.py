"""Plain-text rendering of heatmaps and tables.

Every experiment module prints its results in the same row/series layout
as the paper's tables and figures, so the reproduction can be compared to
the original at a glance.  No plotting dependencies: output is terminal
text, which is also what the benchmark harness captures.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

__all__ = ["render_heatmap", "render_table", "format_value", "render_series"]


def format_value(value: Optional[float], decimals: int = 2) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.{decimals}g}"


def render_heatmap(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Mapping[tuple[int, int], float],
    col_header: str = "loss rate",
    decimals: int = 2,
) -> str:
    """Render a (rows × cols) grid like the Figure 7/9 heatmaps."""
    label_w = max((len(label) for label in row_labels), default=4) + 1
    col_w = max(7, max((len(c) for c in col_labels), default=5) + 1)
    lines = [title, f"{'':{label_w}}  {col_header} →"]
    header = " " * label_w + "".join(f"{c:>{col_w}}" for c in col_labels)
    lines.append(header)
    for i, row in enumerate(row_labels):
        cells = "".join(
            f"{format_value(values.get((i, j)), decimals):>{col_w}}"
            for j in range(len(col_labels))
        )
        lines.append(f"{row:<{label_w}}{cells}")
    return "\n".join(lines)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
) -> str:
    """Render a simple aligned table (Table 2/3/4 style)."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in str_rows), default=0))
        for i in range(len(headers))
    ]
    lines = [title]
    lines.append("  ".join(f"{h:<{w}}" for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(f"{c:<{w}}" for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    title: str,
    series: Mapping[str, Sequence[tuple[float, float]]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render line-series data (Figure 2/10 style) as aligned columns."""
    lines = [title, f"{x_label:>12}  " + "  ".join(f"{name:>14}" for name in series)]
    xs = sorted({x for points in series.values() for x, _ in points})
    tables = {name: dict(points) for name, points in series.items()}
    for x in xs:
        row = f"{format_value(x, 4):>12}  "
        row += "  ".join(
            f"{format_value(tables[name].get(x), 4):>14}" for name in series
        )
        lines.append(row)
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return format_value(value, 3)
    return str(value)
