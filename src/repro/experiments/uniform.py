"""Experiment uniform — failures affecting all entries (§5.1.3).

Injects uniform random loss across every entry (the "link-level" gray
failure class: CRC errors, dirty fiber, interface flaps) with traffic
assigned to entries by a Zipf distribution.  Expected result (paper): in
all experiments FANcY detects the failure and classifies it as uniform —
a majority of root-level counters mismatch — with average detection time
of about one zooming interval (200 ms).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.detector import FancyConfig, FancyLinkMonitor
from ..core.hashtree import HashTreeParams
from ..core.output import FailureKind
from ..runtime import Job, RuntimeContext, fingerprint, resolve, run_sweep, stable_seed
from ..simulator.apps import FlowGenerator
from ..simulator.engine import Simulator
from ..simulator.failures import UniformLossFailure
from ..simulator.topology import TwoSwitchTopology
from ..traffic.zipf import assign_rates
from .report import render_table

__all__ = ["UniformConfig", "run", "render", "main"]


@dataclass(frozen=True)
class UniformConfig:
    """Classifying a loss rate ``q`` as uniform requires more than
    ``width / 2`` root counters to mismatch within one zooming interval,
    i.e. roughly ``rate_pps × zoom × q > width`` — on the paper's 100 Gbps
    links that holds down to 0.1 % loss.  The Python-scale configurations
    keep that inequality by shrinking the tree width together with the
    traffic rate."""

    loss_rates: tuple[float, ...] = (1.0, 0.5, 0.1, 0.01)
    n_entries: int = 500
    total_rate_bps: float = 600e6
    zipf_alpha: float = 1.0
    tree: HashTreeParams = HashTreeParams(width=190, depth=3, split=2, pipelined=True)
    tree_session_s: float = 0.200
    duration_s: float = 5.0
    failure_time_s: float = 1.5
    repetitions: int = 2
    seed: int = 0


QUICK_CONFIG = UniformConfig(
    loss_rates=(0.5, 0.1),
    n_entries=300,
    total_rate_bps=24e6,
    tree=HashTreeParams(width=48, depth=3, split=2, pipelined=True),
    duration_s=4.0,
    repetitions=1,
)


def run_once(loss_rate: float, config: UniformConfig, rep: int) -> dict:
    rng = random.Random(stable_seed(config.seed, rep, loss_rate))
    sim = Simulator()
    failure = UniformLossFailure(
        loss_rate, start_time=config.failure_time_s, seed=rng.randrange(2 ** 31)
    )
    topo = TwoSwitchTopology(sim, loss_model=failure)
    monitor = FancyLinkMonitor(
        sim, topo.upstream, 1, topo.downstream, 1,
        FancyConfig(high_priority=[], tree_params=config.tree,
                    tree_session_s=config.tree_session_s, seed=config.seed + rep),
    )
    entries = [f"p{i}" for i in range(config.n_entries)]
    rates = assign_rates(entries, config.total_rate_bps, config.zipf_alpha)
    for i, entry in enumerate(entries):
        rate = rates[entry]
        fps = max(0.5, rate / 200e3)  # modest flows/s per entry
        FlowGenerator(
            sim, topo.source, entry, rate_bps=rate, flows_per_second=fps,
            seed=rng.randrange(2 ** 31), flow_id_base=(i + 1) * 1_000_000,
        ).start()
    monitor.start()
    sim.run(until=config.duration_s)

    report = monitor.log.first_report(kind=FailureKind.UNIFORM)
    detected = report is not None and report.time >= config.failure_time_s
    return {
        "detected": detected,
        "detection_time": (report.time - config.failure_time_s) if detected else None,
        "uniform_reports": monitor.tree_strategy.uniform_reports,
        "leaf_reports": len(monitor.log.by_kind(FailureKind.TREE_LEAF)),
    }


def _uniform_worker(payload: tuple) -> dict:
    """Top-level (picklable, cache-friendly) wrapper around run_once."""
    loss_rate, config, rep = payload
    return run_once(loss_rate, config, rep)


def run(config: Optional[UniformConfig] = None, quick: bool = True,
        runtime: Optional[RuntimeContext] = None) -> dict:
    config = config or (QUICK_CONFIG if quick else UniformConfig())
    jobs = [
        Job(
            key=(loss, rep),
            payload=(loss, config, rep),
            fingerprint=fingerprint("uniform", config, loss, rep),
            sim_s=config.duration_s,
        )
        for loss in config.loss_rates
        for rep in range(config.repetitions)
    ]
    sweep = run_sweep(jobs, _uniform_worker, runtime=resolve(runtime),
                      label="uniform")
    rows = {}
    for loss in config.loss_rates:
        runs = [sweep.results[(loss, rep)] for rep in range(config.repetitions)
                if (loss, rep) in sweep.results]
        if not runs:
            continue
        detected = [r for r in runs if r["detected"]]
        times = [r["detection_time"] for r in detected]
        rows[loss] = {
            "detection_rate": len(detected) / len(runs),
            "avg_detection_time": sum(times) / len(times) if times else None,
            "runs": runs,
        }
    return {"rows": rows, "config": config, "errors": sweep.errors}


def render(result: dict) -> str:
    headers = ["loss rate", "detected", "avg detection time (s)"]
    rows = []
    for loss, data in result["rows"].items():
        t = data["avg_detection_time"]
        rows.append([
            f"{loss:g}",
            f"{data['detection_rate']:.0%}",
            "-" if t is None else f"{t:.3f}",
        ])
    return render_table(
        "§5.1.3 — uniform failures: detection as uniform random drops "
        "(expected ≈ one zooming interval)",
        headers,
        rows,
    )


def main(quick: bool = True, runtime: Optional[RuntimeContext] = None) -> str:
    runtime = resolve(runtime)
    config = QUICK_CONFIG if quick else UniformConfig()
    if runtime.seed:
        from dataclasses import replace
        config = replace(config, seed=runtime.seed)
    text = render(run(config=config, quick=quick, runtime=runtime))
    print(text)
    return text
