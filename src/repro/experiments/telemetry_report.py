"""``fancy-repro telemetry`` — the observability summary command.

Runs one canonical detection scenario (the §5.1 two-switch setup in
``full`` mode: a dedicated counter *and* the hash tree watching a failed
entry plus background traffic) under a live
:class:`~repro.telemetry.Telemetry` session with profiling enabled, then
prints:

* the per-entry **detection records** (failure injected → flagged
  latency, counting sessions used, cumulative control bytes);
* the **timeline summary** (event counts: FSM transitions, session
  open/close, zooming descent, detections);
* the **metric catalogue** — every instrument family the run produced,
  with kind, label-set count, and aggregate value;
* the **hotspot profile** — event-engine callbacks ranked by total wall
  time (``sim_callback_seconds``).

With ``--out DIR`` the command also writes the machine-readable
artifacts: ``telemetry-timeline.jsonl`` (the full state timeline, one
event per line) and ``telemetry-metrics.prom`` (Prometheus text
exposition format), plus ``telemetry.txt`` with the rendered summary.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from ..runtime import RuntimeContext, resolve
from ..telemetry import Telemetry, hotspots, to_prometheus
from ..telemetry.registry import Counter, Gauge, Histogram
from ..traffic.synthetic import EntrySize
from .runner import ExperimentSpec, run_entry_failure

__all__ = ["main"]


def _build_spec(quick: bool, seed: int) -> ExperimentSpec:
    if quick:
        return ExperimentSpec(
            entry_size=EntrySize(1e6, 50),
            loss_rate=1.0,
            mode="full",
            duration_s=8.0,
            max_pps_per_entry=300,
            n_background=5,
            seed=seed,
        )
    return ExperimentSpec(
        entry_size=EntrySize(1e6, 50),
        loss_rate=1.0,
        mode="full",
        duration_s=30.0,
        n_background=10,
        seed=seed,
    )


def _family_line(name: str, instruments: list) -> str:
    first = instruments[0]
    if isinstance(first, Counter):
        total = sum(i.value for i in instruments)
        agg = f"total={total:g}"
    elif isinstance(first, Gauge):
        peak = max(i.max_value for i in instruments)
        agg = f"peak={peak:g}"
    elif isinstance(first, Histogram):
        count = sum(i.count for i in instruments)
        total = sum(i.total for i in instruments)
        agg = f"count={count:g} sum={total:.6g}"
    else:  # pragma: no cover - no other kinds exist
        agg = ""
    return f"  {name:<34} {first.kind:<9} series={len(instruments):<4} {agg}"


def render(session: Telemetry, result) -> str:
    lines: list[str] = []
    lines.append("Telemetry summary — canonical detection scenario (mode=full)")
    lines.append("=" * 62)

    lines.append("")
    lines.append("Detection records (failure injected -> entry flagged):")
    records = session.detection_records()
    if not records:
        lines.append("  (none)")
    for rec in records:
        latency = (f"{rec.latency * 1000:.1f} ms" if rec.detected
                   else "not detected")
        lines.append(
            f"  entry={rec.entry or '<uniform>'}  kind={rec.kind}  "
            f"latency={latency}  "
            f"sessions={rec.sessions_used}  control_bytes={rec.control_bytes}"
        )
    lines.append(
        f"  scored by experiments.metrics: tpr={result.tpr:.2f}  "
        f"detection_times={[round(t, 4) for t in result.detection_times]}"
    )

    lines.append("")
    lines.append("Timeline events:")
    for event, count in sorted(session.timeline.counts().items()):
        lines.append(f"  {event:<22} {count}")
    if session.timeline.suppressed:
        lines.append(f"  (truncated: {session.timeline.suppressed} suppressed)")

    lines.append("")
    lines.append("Metric catalogue:")
    for name, instruments in session.metrics.families().items():
        lines.append(_family_line(name, instruments))

    lines.append("")
    lines.append("Hotspots (event-engine callbacks by total wall time):")
    ranked = hotspots(session.metrics)
    if not ranked:
        lines.append("  (profiling disabled)")
    for spot in ranked:
        lines.append(
            f"  {spot['callback']:<44} calls={spot['calls']:<8g} "
            f"total={spot['total_s'] * 1000:.1f} ms  "
            f"mean={spot['mean_s'] * 1e6:.1f} us"
        )
    return "\n".join(lines)


def main(quick: bool = True, runtime: Optional[RuntimeContext] = None,
         out_dir=None) -> str:
    runtime = resolve(runtime)
    session = Telemetry(profile=True)
    spec = _build_spec(quick, runtime.seed)
    result = run_entry_failure(spec, rep=0, telemetry=session)
    text = render(session, result)

    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        timeline_path = out / "telemetry-timeline.jsonl"
        timeline_path.write_text(session.timeline.to_jsonl())
        prom_path = out / "telemetry-metrics.prom"
        prom_path.write_text(to_prometheus(session.metrics))
        text += (
            "\n\nArtifacts:\n"
            f"  timeline : {timeline_path}\n"
            f"  metrics  : {prom_path}"
        )

    print(text)
    return text
