"""Shared experiment runner for the §5.1 benchmarking experiments.

``run_entry_failure`` builds the canonical evaluation setup — the
two-switch topology, FANcY on the monitored link, one TCP flow generator
per entry — injects a gray failure on a chosen subset of entries at a
random time, runs the simulation, and scores TPR / detection time /
false positives.

Scaling knobs (`max_pps_per_entry`, `duration_s`, `repetitions`) let the
same code run both the paper-faithful configuration and the reduced
configuration the default benchmark harness uses.  Packet-rate capping
preserves the heatmap *shape*: detection depends on packets observed per
counting session, which saturates far below the fattest grid entries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.detector import FancyConfig, FancyLinkMonitor
from ..core.hashtree import HashTreeParams
from ..core.output import FailureKind
from ..runtime.jobs import stable_seed
from ..simulator.apps import FlowGenerator
from ..simulator.engine import Simulator
from ..simulator.failures import EntryLossFailure, UniformLossFailure
from ..simulator.topology import TwoSwitchTopology
from ..telemetry import Telemetry
from ..traffic.synthetic import EntrySize
from .metrics import CellResult, RunResult

__all__ = ["ExperimentSpec", "run_entry_failure", "run_cell"]

#: Default tree geometry of the evaluation (§5: depth 3, split 2, width 190).
EVAL_TREE = HashTreeParams(width=190, depth=3, split=2, pipelined=True)


@dataclass
class ExperimentSpec:
    """Configuration of one entry-failure experiment.

    Attributes:
        entry_size: traffic profile of each failed entry.
        loss_rate: per-packet drop probability of the gray failure
            (1.0 = blackhole).
        n_failed: number of entries failing simultaneously.
        n_background: healthy entries sharing the link and tree.
        background_size: traffic profile of background entries (defaults
            to the failed-entry profile).
        mode: ``"dedicated"`` — failed entries get dedicated counters,
            tree disabled (§5.1.1); ``"tree"`` — no dedicated counters,
            everything on the tree (§5.1.2); ``"full"`` — both.
        tree_params: tree geometry (``mode != "dedicated"``).
        dedicated_session_s / tree_session_s: exchange frequency and
            zooming speed.
        link_delay_s: monitored-link one-way delay (paper: 10 ms).
        duration_s: experiment horizon after which TPR/latency are scored.
        failure_window_s: failure starts uniformly in [0.5, window].
        max_pps_per_entry: packet-rate cap per entry (None = uncapped).
        uniform: inject a uniform (all-entry) failure instead of
            per-entry failures.
        seed: base RNG seed.
    """

    entry_size: EntrySize = field(default_factory=lambda: EntrySize(1e6, 50))
    loss_rate: float = 0.1
    n_failed: int = 1
    n_background: int = 10
    background_size: Optional[EntrySize] = None
    mode: str = "dedicated"
    tree_params: HashTreeParams = EVAL_TREE
    dedicated_session_s: float = 0.050
    tree_session_s: float = 0.200
    link_delay_s: float = 0.010
    duration_s: float = 30.0
    failure_window_s: float = 2.0
    max_pps_per_entry: Optional[float] = None
    uniform: bool = False
    seed: int = 0
    suppress_known: bool = True

    def effective_entry_size(self) -> EntrySize:
        if self.max_pps_per_entry is None:
            return self.entry_size
        return self.entry_size.scaled(self.max_pps_per_entry)

    def effective_background_size(self) -> EntrySize:
        base = self.background_size or self.entry_size
        if self.max_pps_per_entry is None:
            return base
        return base.scaled(self.max_pps_per_entry)


def run_entry_failure(spec: ExperimentSpec, rep: int = 0,
                      telemetry: Optional[Telemetry] = None) -> RunResult:
    """One repetition of an entry-failure experiment.

    The setup RNG is seeded with an explicit hashlib derivation over
    ``(seed, rep, "setup")`` (see :func:`repro.runtime.jobs.stable_seed`)
    so repetitions are reproducible across processes and Python versions
    — a requirement for the parallel runtime's cache correctness.

    When a :class:`~repro.telemetry.Telemetry` session is given, the
    engine, topology, and monitor are instrumented, a
    ``failure_injected`` timeline event is recorded per failed entry at
    the injection instant, and the scored :class:`RunResult` carries the
    per-entry detection records under ``extra["detections"]`` (the
    timeline's injection→flag pairing; see
    :meth:`repro.telemetry.StateTimeline.detection_records`).
    """
    rng = random.Random(stable_seed(spec.seed, rep, "setup"))
    sim = Simulator(telemetry=telemetry)

    failed = [f"failed/{i}" for i in range(spec.n_failed)]
    background = [f"bg/{i}" for i in range(spec.n_background)]
    failure_time = rng.uniform(0.5, max(0.6, spec.failure_window_s))

    if spec.uniform:
        failure = UniformLossFailure(
            spec.loss_rate, start_time=failure_time, seed=rng.randrange(2 ** 31)
        )
    else:
        failure = EntryLossFailure(
            failed, spec.loss_rate, start_time=failure_time, seed=rng.randrange(2 ** 31)
        )
    topo = TwoSwitchTopology(sim, link_delay_s=spec.link_delay_s, loss_model=failure,
                             telemetry=telemetry)

    if spec.mode == "dedicated":
        config = FancyConfig(
            high_priority=list(failed),
            tree_params=None,
            dedicated_session_s=spec.dedicated_session_s,
            seed=spec.seed + rep,
        )
    elif spec.mode == "tree":
        config = FancyConfig(
            high_priority=[],
            tree_params=spec.tree_params,
            tree_session_s=spec.tree_session_s,
            seed=spec.seed + rep,
            suppress_known=spec.suppress_known,
        )
    elif spec.mode == "full":
        config = FancyConfig(
            high_priority=list(failed),
            tree_params=spec.tree_params,
            dedicated_session_s=spec.dedicated_session_s,
            tree_session_s=spec.tree_session_s,
            seed=spec.seed + rep,
            suppress_known=spec.suppress_known,
        )
    else:
        raise ValueError(f"unknown mode {spec.mode!r}")

    monitor = FancyLinkMonitor(sim, topo.upstream, 1, topo.downstream, 1, config,
                               telemetry=telemetry)

    if telemetry is not None:
        timeline = telemetry.timeline

        def _mark_injection() -> None:
            if spec.uniform:
                timeline.record(sim.now, "failure", "failure_injected",
                                kind="uniform", loss_rate=spec.loss_rate)
                return
            for entry in failed:
                hp = (monitor.tree_strategy.tree.hash_path(entry)
                      if monitor.tree_strategy is not None else None)
                timeline.record(sim.now, "failure", "failure_injected",
                                entry=entry, hash_path=hp,
                                loss_rate=spec.loss_rate)

        sim.schedule_at(failure_time, _mark_injection)

    entry_profile = spec.effective_entry_size()
    bg_profile = spec.effective_background_size()
    generators = []
    for i, entry in enumerate(failed):
        generators.append(FlowGenerator(
            sim, topo.source, entry,
            rate_bps=entry_profile.rate_bps,
            flows_per_second=entry_profile.flows_per_second,
            seed=rng.randrange(2 ** 31),
            flow_id_base=(i + 1) * 10_000_000,
        ))
    for j, entry in enumerate(background):
        generators.append(FlowGenerator(
            sim, topo.source, entry,
            rate_bps=bg_profile.rate_bps,
            flows_per_second=bg_profile.flows_per_second,
            seed=rng.randrange(2 ** 31),
            flow_id_base=(spec.n_failed + j + 1) * 10_000_000,
        ))
    for gen in generators:
        gen.start()
    monitor.start()
    sim.run(until=spec.duration_s)

    result = _score(spec, monitor, failed, background, failure_time)
    if telemetry is not None:
        result.extra["detections"] = [
            record.to_dict() for record in telemetry.detection_records()
        ]
    return result


def _score(
    spec: ExperimentSpec,
    monitor: FancyLinkMonitor,
    failed: Sequence[str],
    background: Sequence[str],
    failure_time: float,
) -> RunResult:
    horizon = spec.duration_s - failure_time
    detection_times: list[float] = []
    detected = 0

    if spec.uniform:
        # Uniform failures are detected as a single "all entries" report.
        report = monitor.log.first_report(kind=FailureKind.UNIFORM)
        n_detected = 1 if report is not None else 0
        times = [report.time - failure_time] if report is not None else []
        return RunResult(
            n_failed=1, n_detected=n_detected, detection_times=times,
            false_positives=0, horizon_s=horizon,
            extra={"failure_time": failure_time},
        )

    for entry in failed:
        when = _first_detection_time(monitor, entry)
        if when is not None and when >= failure_time:
            detected += 1
            detection_times.append(when - failure_time)
    false_positives = sum(1 for entry in background if monitor.entry_is_flagged(entry))
    return RunResult(
        n_failed=len(failed),
        n_detected=detected,
        detection_times=detection_times,
        false_positives=false_positives,
        horizon_s=horizon,
        extra={"failure_time": failure_time},
    )


def _first_detection_time(monitor: FancyLinkMonitor, entry: str) -> Optional[float]:
    """Earliest report that flags ``entry`` (dedicated or tree path)."""
    report = monitor.log.first_report(kind=FailureKind.DEDICATED_ENTRY, entry=entry)
    if report is not None:
        return report.time
    if monitor.tree_strategy is not None:
        hp = monitor.tree_strategy.tree.hash_path(entry)
        report = monitor.log.first_report(kind=FailureKind.TREE_LEAF, hash_path=hp)
        if report is not None:
            return report.time
    return None


def run_cell(spec: ExperimentSpec, repetitions: int = 3,
             telemetry: Optional[Telemetry] = None) -> CellResult:
    """Run one heatmap cell: ``repetitions`` randomized repetitions.

    With telemetry, each repetition runs under a forked session — shared
    :class:`~repro.telemetry.MetricsRegistry` accumulating across reps,
    fresh :class:`~repro.telemetry.StateTimeline` per repetition (the
    simulated clock restarts at zero each rep).
    """
    cell = CellResult()
    for rep in range(repetitions):
        session = telemetry.fork() if telemetry is not None else None
        cell.add(run_entry_failure(spec, rep=rep, telemetry=session))
    return cell
