"""Experiment fig10 — fine-grained fast rerouting case study (Figure 10).

Reproduces the §6.1 Tofino experiment in simulation: a FANcY switch with a
primary and a backup path to the downstream switch, TCP plus UDP traffic,
and a "link switch" dropping 1 %, 10 % or 100 % of packets on the primary
path from t = 2 s.  The rerouting app steers an entry to the backup port
as soon as FANcY flags it.

Expected shape (paper, Figure 10): goodput dips at t = 2 s and recovers in
under one second — after ≈ one counting-session duration (250 ms there)
for an entry on a dedicated counter, and ≈ 3 × the zooming speed
(3 × 200 ms) for an entry covered by the hash-based tree.  Rates are
scaled down from the testbed's 50 Gbps; recovery timing does not depend
on absolute rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apps.rerouting import FastRerouteApp
from ..core.detector import FancyConfig, FancyLinkMonitor
from ..core.hashtree import HashTreeParams
from ..runtime import Job, RuntimeContext, fingerprint, resolve, run_sweep
from ..simulator.apps import FlowGenerator, Host, ThroughputMeter
from ..simulator.engine import Simulator
from ..simulator.failures import EntryLossFailure
from ..simulator.link import connect_duplex
from ..simulator.packet import Packet
from ..simulator.switch import Switch
from ..simulator.udp import UdpSource
from .report import render_series

__all__ = ["Fig10Config", "run_case", "run", "render", "main"]

PORT_HOST = 0
PORT_PRIMARY = 1
PORT_BACKUP = 2

#: §6.1 parameters: 500 dedicated counters exchanged every 200 ms; tree of
#: depth 3, split 1, width 190 (the Tofino runs it non-pipelined).
CASE_TREE = HashTreeParams(width=190, depth=3, split=1, pipelined=False)


@dataclass(frozen=True)
class Fig10Config:
    loss_rates: tuple[float, ...] = (0.01, 0.10, 1.00)
    tcp_rate_bps: float = 20e6
    udp_rate_bps: float = 1e6
    flows_per_second: float = 20
    failure_time_s: float = 2.0
    duration_s: float = 5.0
    dedicated_session_s: float = 0.200   # §6.1 uses 200 ms (not the eval's 50 ms)
    tree_session_s: float = 0.200
    bin_s: float = 0.1
    link_delay_s: float = 0.001          # testbed links, not WAN
    seed: int = 0


def _build(config: Fig10Config, loss_rate: float, entry_kind: str) -> dict:
    """One case-study run for an entry on dedicated counters or the tree."""
    sim = Simulator()
    entry = "victim"
    failure = EntryLossFailure(
        {entry}, loss_rate, start_time=config.failure_time_s, seed=config.seed + 1,
        affect_control=False,
    )

    source = Host(sim, "sender")
    sink = Host(sim, "receiver", auto_sink=True)
    fancy_switch = Switch(sim, "fancy")
    link_switch = Switch(sim, "link")

    connect_duplex(sim, source, 0, fancy_switch, PORT_HOST,
                   bandwidth_bps=None, delay_s=0.0001)
    connect_duplex(sim, fancy_switch, PORT_PRIMARY, link_switch, PORT_PRIMARY,
                   bandwidth_bps=100e9, delay_s=config.link_delay_s,
                   loss_model_ab=failure)
    connect_duplex(sim, fancy_switch, PORT_BACKUP, link_switch, PORT_BACKUP,
                   bandwidth_bps=100e9, delay_s=config.link_delay_s)
    connect_duplex(sim, link_switch, PORT_HOST, sink, 0,
                   bandwidth_bps=None, delay_s=0.0001)

    fancy_switch.set_default_route(PORT_PRIMARY)
    link_switch.set_default_route(PORT_HOST)

    def reverse_hook_link(packet: Packet, _in_port: int) -> bool:
        if packet.reverse:
            link_switch._egress(packet, PORT_PRIMARY)
            return False
        return True

    def reverse_hook_fancy(packet: Packet, _in_port: int) -> bool:
        if packet.reverse:
            fancy_switch._egress(packet, PORT_HOST)
            return False
        return True

    link_switch.add_ingress_hook(PORT_HOST, reverse_hook_link)
    fancy_switch.add_ingress_hook(PORT_PRIMARY, reverse_hook_fancy)
    fancy_switch.add_ingress_hook(PORT_BACKUP, reverse_hook_fancy)

    high_priority = [entry] if entry_kind == "dedicated" else []
    monitor = FancyLinkMonitor(
        sim, fancy_switch, PORT_PRIMARY, link_switch, PORT_PRIMARY,
        FancyConfig(
            high_priority=high_priority,
            tree_params=CASE_TREE if entry_kind == "tree" else None,
            dedicated_session_s=config.dedicated_session_s,
            tree_session_s=config.tree_session_s,
            seed=config.seed,
        ),
    )
    app = FastRerouteApp(monitor, backup_port=PORT_BACKUP)

    meter = ThroughputMeter(sim, bin_s=config.bin_s, per_entry=True)
    sink.rx_tap = meter

    FlowGenerator(
        sim, source, entry,
        rate_bps=config.tcp_rate_bps,
        flows_per_second=config.flows_per_second,
        seed=config.seed + 11,
        flow_id_base=1_000_000,
    ).start()
    UdpSource(sim, source.send, entry, flow_id=99,
              rate_bps=config.udp_rate_bps).start()
    monitor.start()
    sim.run(until=config.duration_s)

    series = meter.entry_series_bps(entry)
    reroute_at = app.reroute_time(entry)
    return {
        "series": series,
        "reroute_time": reroute_at,
        "recovery_delay": (
            None if reroute_at is None else reroute_at - config.failure_time_s
        ),
        "rerouted_packets": app.rerouted_packets,
    }


def run_case(loss_rate: float, entry_kind: str,
             config: Optional[Fig10Config] = None) -> dict:
    return _build(config or Fig10Config(), loss_rate, entry_kind)


def _case_worker(payload: tuple) -> dict:
    """Top-level (picklable, cache-friendly) wrapper around run_case."""
    loss_rate, entry_kind, config = payload
    return _build(config, loss_rate, entry_kind)


def run(config: Optional[Fig10Config] = None, quick: bool = True,
        runtime: Optional[RuntimeContext] = None) -> dict:
    config = config or Fig10Config()
    loss_rates = config.loss_rates if not quick else config.loss_rates[-2:]
    jobs = [
        Job(
            key=f"{entry_kind}@{loss:g}",
            payload=(loss, entry_kind, config),
            fingerprint=fingerprint("fig10", config, loss, entry_kind),
            sim_s=config.duration_s,
        )
        for entry_kind in ("dedicated", "tree")
        for loss in loss_rates
    ]
    sweep = run_sweep(jobs, _case_worker, runtime=resolve(runtime),
                      label="fig10")
    out: dict[str, dict] = {
        job.key: sweep.results[job.key] for job in jobs if job.key in sweep.results
    }
    return {"cases": out, "config": config, "errors": sweep.errors}


def render(result: dict) -> str:
    config: Fig10Config = result["config"]
    series = {
        name: [(t, bps / 1e6) for t, bps in case["series"]]
        for name, case in result["cases"].items()
    }
    text = render_series(
        "Figure 10 — goodput (Mbps) around the failure at "
        f"t={config.failure_time_s:g}s, with FANcY-driven rerouting",
        series,
        x_label="time (s)",
    )
    lines = [text, "", "recovery delay (failure -> first rerouted packet):"]
    for name, case in result["cases"].items():
        delay = case["recovery_delay"]
        lines.append(
            f"  {name:<18} {'not rerouted' if delay is None else f'{delay * 1e3:.0f} ms'}"
        )
    return "\n".join(lines)


def main(quick: bool = True, runtime: Optional[RuntimeContext] = None) -> str:
    runtime = resolve(runtime)
    config = Fig10Config()
    if runtime.seed:
        from dataclasses import replace
        config = replace(config, seed=runtime.seed)
    text = render(run(config=config, quick=quick, runtime=runtime))
    print(text)
    return text
