"""Experiment fig11 — sensitivity analysis of tree parameters (Appendix D).

Compares eight hash-based-tree geometries (depth/split/width, 125 KB–1 MB
of memory) under bursts of simultaneous prefix failures on the trace with
the most prefixes (trace 4).  Reported per design: TPR, median detection
time, false positives, and the fraction of failed bytes detected.

Expected shape (paper, Figure 11): bigger split → higher TPR and faster
detection for failure bursts (split-3 designs win; the split-1 design is
slowest with the worst TPR); bigger depth → slower detection with a mild
TPR cost; memory can be traded for speed without losing much TPR (e.g.
4/2/44 has decent TPR among the cheapest designs but among the worst
median detection times).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..core.detector import FancyConfig, FancyLinkMonitor
from ..core.hashtree import HashTreeParams
from ..core.analysis import tree_total_memory_bits
from ..runtime import Job, RuntimeContext, fingerprint, resolve, run_sweep, stable_seed
from ..simulator.apps import FlowGenerator
from ..simulator.engine import Simulator
from ..simulator.failures import EntryLossFailure
from ..simulator.topology import TwoSwitchTopology
from ..traffic.zipf import assign_rates
from .metrics import median
from .report import render_table

__all__ = ["Fig11Config", "TREE_DESIGNS", "run", "render", "main"]

#: The eight designs of Figure 11: (depth, split, width) and the paper's
#: memory label.
TREE_DESIGNS: tuple[tuple[HashTreeParams, str], ...] = (
    (HashTreeParams(width=205, depth=3, split=3, pipelined=True), "3/3/205 (1MB)"),
    (HashTreeParams(width=190, depth=3, split=2, pipelined=True), "3/2/190 (500KB)"),
    (HashTreeParams(width=100, depth=3, split=3, pipelined=True), "3/3/100 (500KB)"),
    (HashTreeParams(width=32, depth=4, split=3, pipelined=True), "4/3/32 (500KB)"),
    (HashTreeParams(width=100, depth=3, split=2, pipelined=True), "3/2/100 (250KB)"),
    (HashTreeParams(width=44, depth=4, split=2, pipelined=True), "4/2/44 (250KB)"),
    (HashTreeParams(width=110, depth=3, split=1, pipelined=True), "3/1/110 (125KB)"),
    (HashTreeParams(width=28, depth=4, split=2, pipelined=True), "4/2/28 (125KB)"),
)


@dataclass(frozen=True)
class Fig11Config:
    designs: tuple[tuple[HashTreeParams, str], ...] = TREE_DESIGNS
    burst_sizes: tuple[int, ...] = (10, 50)
    n_prefixes: int = 400
    total_rate_bps: float = 12e6
    loss_rate: float = 1.0        # paper: 100 % loss bursts
    zooming_speed_s: float = 0.200
    duration_s: float = 20.0
    failure_time_s: float = 1.5
    repetitions: int = 2          # paper: 10
    max_flows_per_second: float = 20.0
    seed: int = 0


QUICK_CONFIG = Fig11Config(
    designs=TREE_DESIGNS[:2] + TREE_DESIGNS[5:7],
    burst_sizes=(10,),
    n_prefixes=120,
    total_rate_bps=10e6,
    duration_s=14.0,
    repetitions=2,
)


def run_once(params: HashTreeParams, burst: int, config: Fig11Config, rep: int) -> dict:
    rng = random.Random(stable_seed(config.seed, params.width, params.depth,
                                    params.split, burst, rep))
    sim = Simulator()
    entries = [f"p{i}" for i in range(config.n_prefixes)]
    rates = assign_rates(entries, config.total_rate_bps, alpha=1.0)
    # Fail prefixes with observable traffic (paper: only prefixes detectable
    # at the tested zooming speed/depth), sampled from the top third.
    pool = entries[: config.n_prefixes // 3]
    failed = rng.sample(pool, min(burst, len(pool)))

    failure = EntryLossFailure(failed, config.loss_rate,
                               start_time=config.failure_time_s,
                               seed=rng.randrange(2 ** 31))
    topo = TwoSwitchTopology(sim, loss_model=failure)
    monitor = FancyLinkMonitor(
        sim, topo.upstream, 1, topo.downstream, 1,
        FancyConfig(high_priority=[], tree_params=params,
                    tree_session_s=config.zooming_speed_s, seed=config.seed + rep),
    )
    for i, entry in enumerate(entries):
        FlowGenerator(
            sim, topo.source, entry, rate_bps=rates[entry],
            flows_per_second=min(max(0.5, rates[entry] / 100e3),
                                 config.max_flows_per_second),
            seed=rng.randrange(2 ** 31), flow_id_base=(i + 1) * 1_000_000,
        ).start()
    monitor.start()
    sim.run(until=config.duration_s)

    tree = monitor.tree_strategy.tree
    detection_times = []
    detected_rate = 0.0
    detected = 0
    for entry in failed:
        hp = tree.hash_path(entry)
        report = monitor.log.first_report(hash_path=hp)
        if report is not None and report.time >= config.failure_time_s:
            detected += 1
            detected_rate += rates[entry]
            detection_times.append(report.time - config.failure_time_s)
    failed_set = set(failed)
    fps = sum(1 for e in entries if e not in failed_set and monitor.entry_is_flagged(e))
    total_failed_rate = sum(rates[e] for e in failed)
    return {
        "tpr": detected / len(failed),
        "detected_bytes": detected_rate / total_failed_rate if total_failed_rate else 0.0,
        "median_detection": median(detection_times),
        "false_positives": fps,
    }


def _design_worker(payload: tuple) -> dict:
    """Top-level (picklable, cache-friendly) wrapper around run_once."""
    params, burst, config, rep = payload
    return run_once(params, burst, config, rep)


def run(config: Optional[Fig11Config] = None, quick: bool = True,
        runtime: Optional[RuntimeContext] = None) -> dict:
    config = config or (QUICK_CONFIG if quick else Fig11Config())
    jobs = [
        Job(
            key=(label, burst, rep),
            payload=(params, burst, config, rep),
            fingerprint=fingerprint("fig11", config, params, burst, rep),
            sim_s=config.duration_s,
        )
        for params, label in config.designs
        for burst in config.burst_sizes
        for rep in range(config.repetitions)
    ]
    sweep = run_sweep(jobs, _design_worker, runtime=resolve(runtime),
                      label="fig11")
    results: dict[tuple[str, int], dict] = {}
    for params, label in config.designs:
        for burst in config.burst_sizes:
            runs = [sweep.results[(label, burst, rep)]
                    for rep in range(config.repetitions)
                    if (label, burst, rep) in sweep.results]
            if not runs:
                continue
            medians = [r["median_detection"] for r in runs
                       if r["median_detection"] is not None]
            results[(label, burst)] = {
                "tpr": sum(r["tpr"] for r in runs) / len(runs),
                "detected_bytes": sum(r["detected_bytes"] for r in runs) / len(runs),
                "median_detection": median(medians),
                "false_positives": sum(r["false_positives"] for r in runs) / len(runs),
                "memory_kb": tree_total_memory_bits(params) / 8 / 1024,
            }
    return {"results": results, "config": config, "errors": sweep.errors}


def render(result: dict) -> str:
    headers = ["design", "burst", "TPR", "detected bytes", "median detection (s)",
               "FPs", "memory (KB)"]
    rows = []
    for (label, burst), data in result["results"].items():
        md = data["median_detection"]
        rows.append([
            label, str(burst),
            f"{data['tpr']:.2f}",
            f"{data['detected_bytes']:.2f}",
            "-" if md is None else f"{md:.2f}",
            f"{data['false_positives']:.1f}",
            f"{data['memory_kb']:.0f}",
        ])
    return render_table(
        "Figure 11 (Appendix D) — hash-based tree sensitivity under failure bursts",
        headers, rows,
    )


def main(quick: bool = True, runtime: Optional[RuntimeContext] = None) -> str:
    runtime = resolve(runtime)
    config = QUICK_CONFIG if quick else Fig11Config()
    if runtime.seed:
        from dataclasses import replace
        config = replace(config, seed=runtime.seed)
    text = render(run(config=config, quick=quick, runtime=runtime))
    print(text)
    return text
