"""Shared machinery for the Figure 7 / 9 heatmap experiments.

A heatmap sweeps (entry size × loss rate) cells; each cell runs several
randomized repetitions of an entry-failure experiment and aggregates TPR
and average detection time.  ``HeatmapScale`` holds the cost knobs: the
paper-faithful configuration (30 s horizon, 10 repetitions, uncapped
rates) versus the reduced default that preserves shape at tractable cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..runtime import RuntimeContext, resolve, run_sweep, spec_job
from ..traffic.synthetic import ENTRY_SIZE_GRID, LOSS_RATES, EntrySize
from .metrics import CellResult
from .report import render_heatmap
from .runner import ExperimentSpec, run_cell

__all__ = ["HeatmapScale", "QUICK_SCALE", "PAPER_SCALE", "run_heatmap", "render_heatmap_pair"]


@dataclass(frozen=True)
class HeatmapScale:
    """Cost/fidelity knobs for a heatmap sweep."""

    rows: tuple[EntrySize, ...]
    loss_rates: tuple[float, ...]
    repetitions: int
    duration_s: float
    max_pps_per_entry: Optional[float]
    n_background: int
    n_failed: int = 1

    def subset(self, every_nth_row: int) -> "HeatmapScale":
        return replace(self, rows=self.rows[::every_nth_row])


#: Reduced configuration used by the default benchmark harness.
QUICK_SCALE = HeatmapScale(
    rows=ENTRY_SIZE_GRID[::3],
    loss_rates=(1.0, 0.5, 0.1, 0.01),
    repetitions=2,
    duration_s=8.0,
    max_pps_per_entry=300,
    n_background=5,
)

#: Paper-faithful configuration (expensive; run via the CLI with --full).
PAPER_SCALE = HeatmapScale(
    rows=ENTRY_SIZE_GRID,
    loss_rates=LOSS_RATES,
    repetitions=10,
    duration_s=30.0,
    max_pps_per_entry=None,
    n_background=10,
)


def _cell_worker(payload: tuple) -> dict:
    """Top-level cell runner (picklable for the process pool).

    Takes ``(spec, repetitions)`` or ``(spec, repetitions, options)``
    and returns a JSON-serializable dict so the runtime can cache it.
    With ``options={"telemetry": True}`` the cell runs under a fresh
    :class:`~repro.telemetry.Telemetry` session and the returned dict
    carries the cell's metrics snapshot under ``"metrics"`` (which the
    executor forwards into the ``cell_done`` run-log event).
    """
    spec, repetitions, *rest = payload
    options = rest[0] if rest else {}
    if options.get("telemetry"):
        from ..telemetry import Telemetry

        session = Telemetry(profile=bool(options.get("profile")))
        out = run_cell(spec, repetitions=repetitions, telemetry=session).to_dict()
        out["metrics"] = session.snapshot()
        return out
    return run_cell(spec, repetitions=repetitions).to_dict()


def run_heatmap(mode: str, scale: HeatmapScale, seed: int = 0,
                n_failed: Optional[int] = None,
                workers: Optional[int] = None,
                runtime: Optional[RuntimeContext] = None) -> dict:
    """Sweep the grid; returns row/col labels plus TPR and latency maps.

    Execution goes through :func:`repro.runtime.run_sweep`: cells stream
    in as they complete, finished cells are cached (when the runtime has
    a cache dir), crashed cells are retried and — if they keep failing —
    reported under ``result["errors"]`` without losing the rest of the
    grid.  ``workers`` > 1 runs cells in parallel processes — the
    intended way to run the paper-faithful ``PAPER_SCALE`` sweeps, whose
    cells are independent simulations.
    """
    runtime = resolve(runtime, workers=workers)
    failed = n_failed if n_failed is not None else scale.n_failed
    options = None
    if runtime.telemetry:
        options = {"telemetry": True, "profile": runtime.profile}
    jobs = []
    for i, entry_size in enumerate(scale.rows):
        for j, loss_rate in enumerate(scale.loss_rates):
            spec = ExperimentSpec(
                entry_size=entry_size,
                loss_rate=loss_rate,
                n_failed=failed,
                n_background=scale.n_background,
                mode=mode,
                duration_s=scale.duration_s,
                max_pps_per_entry=scale.max_pps_per_entry,
                seed=seed + i * 101 + j,
            )
            jobs.append(spec_job(
                (i, j), spec, scale.repetitions,
                sim_s=scale.duration_s * scale.repetitions,
                options=options,
            ))

    sweep = run_sweep(jobs, _cell_worker, runtime=runtime,
                      label=f"heatmap:{mode}")
    cells: dict[tuple[int, int], CellResult] = {
        key: CellResult.from_dict(value) for key, value in sweep.results.items()
    }

    tpr = {key: cell.avg_tpr for key, cell in cells.items()}
    latency = {key: cell.avg_detection_time for key, cell in cells.items()}
    return {
        "row_labels": [e.label for e in scale.rows],
        "col_labels": [f"{r:.3%}".rstrip("0").rstrip(".") for r in scale.loss_rates],
        "tpr": tpr,
        "latency": latency,
        "cells": cells,
        "mode": mode,
        "n_failed": failed,
        "errors": sweep.errors,
        "sweep": sweep.summary,
    }


def render_heatmap_pair(title: str, result: dict) -> str:
    left = render_heatmap(
        f"{title} — Avg TPR",
        result["row_labels"],
        result["col_labels"],
        result["tpr"],
    )
    right = render_heatmap(
        f"{title} — Avg detection time (s)",
        result["row_labels"],
        result["col_labels"],
        result["latency"],
    )
    return left + "\n\n" + right
