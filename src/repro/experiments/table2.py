"""Experiment table2 — Loss Radar requirements (Table 2).

Regenerates both metrics (memory-size ratio and read-speed ratio) for the
two switch profiles of Table 2, across average loss rates, from the
analytical :class:`~repro.baselines.lossradar.LossRadarModel`.

The paper's headline reproduces: requirements grow linearly with loss
rate and line rate, crossing what a hardware stage offers well below 1 %
average loss — Loss Radar "fundamentally cannot detect gray failures
efficiently within current and future ISPs" (§2.3).
"""

from __future__ import annotations

from ..baselines.lossradar import TABLE2_SWITCHES, LossRadarModel
from .report import render_table

__all__ = ["run", "render", "LOSS_RATES_TABLE2"]

#: Loss-rate columns of Table 2 (0.1 %, 0.2 %, 0.3 %, 1 %).
LOSS_RATES_TABLE2 = (0.001, 0.002, 0.003, 0.01)


def run(model: LossRadarModel | None = None) -> dict:
    model = model or LossRadarModel()
    result = model.table2(LOSS_RATES_TABLE2)
    result["_params"] = {
        "epoch_ms": model.epoch_s * 1e3,
        "cell_bits": model.cell_bits,
        "packet_size": model.packet_size,
        "stage_memory_kb": model.stage_memory_bytes / 1e3,
        "stage_read_MBps": model.stage_read_bps / 8e6,
    }
    return result


def render(result: dict) -> str:
    headers = ["Switch", "Metric"] + [f"{r:.1%}" for r in LOSS_RATES_TABLE2] + [
        "max supported loss"
    ]
    rows = []
    for switch in TABLE2_SWITCHES:
        data = result[switch.name]
        rows.append(
            [switch.name, "memory size ×"]
            + [f"× {data['memory_ratio'][r]:.2f}" for r in LOSS_RATES_TABLE2]
            + [f"{data['max_supported_loss_rate']:.2%}"]
        )
        rows.append(
            [switch.name, "read speedup ×"]
            + [f"× {data['read_ratio'][r]:.2f}" for r in LOSS_RATES_TABLE2]
            + [""]
        )
    return render_table(
        "Table 2 — Loss Radar requirements vs. state-of-the-art switch capabilities",
        headers,
        rows,
    )


def main() -> str:
    text = render(run())
    print(text)
    return text
