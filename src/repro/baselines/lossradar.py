"""Loss Radar requirements model (§2.3, Table 2).

Loss Radar (Li et al., CoNEXT'16) tracks XOR signatures of packets in
Invertible Bloom Filters; a controller decodes per-packet losses by
diffing the IBFs of consecutive switches.  For detection to stay fast the
IBFs must be extracted every ``epoch`` (10 ms), and their size must scale
with the packets lost per epoch.

Table 2 of the FANcY paper compares Loss Radar's memory footprint and
memory-read-bandwidth needs against what a hardware stage can offer.  The
model here computes both requirements from first principles with the
parameters the table caption fixes (64-bit registers, 1500 B packets —
the combination *minimizing* Loss Radar's needs), and compares against a
configurable per-stage budget.  The paper's headline — Loss Radar exceeds
switch capabilities for average loss rates in the 0.1–1 % range, and
linearly worse with line rate — reproduces for any credible budget.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LossRadarModel", "SwitchProfile", "TABLE2_SWITCHES"]


@dataclass(frozen=True)
class SwitchProfile:
    """A switch configuration evaluated in Table 2."""

    name: str
    n_ports: int
    port_bandwidth_bps: float

    @property
    def aggregate_bps(self) -> float:
        return self.n_ports * self.port_bandwidth_bps


TABLE2_SWITCHES: tuple[SwitchProfile, ...] = (
    SwitchProfile("100 Gbps / 32 ports", 32, 100e9),
    SwitchProfile("400 Gbps / 64 ports", 64, 400e9),
)


@dataclass
class LossRadarModel:
    """Analytical Loss Radar requirements.

    Args:
        epoch_s: IBF extraction period (10 ms per the Loss Radar paper).
        cell_bits: IBF register width (64 bits per the Table 2 caption).
        packet_size: packet size assumed (1500 B minimizes requirements).
        cells_per_loss: IBF cells per expected lost packet; invertible
            decoding needs ≈1.36× with 3 hash functions.
        double_buffered: IBFs must be double-buffered so one can be read
            while the other fills.
        stage_memory_bytes: SRAM an application can realistically claim in
            one hardware stage.  Stages hold ~1.4 MB shared across all
            in-switch applications (§2.3); the default claims 20 %.
        stage_read_bps: sustained register read bandwidth from the data
            plane to the control plane, per pipeline.  Telemetry-retrieval
            studies measure single-digit MB/s; default 8 MB/s.
    """

    epoch_s: float = 0.010
    cell_bits: int = 64
    packet_size: int = 1500
    cells_per_loss: float = 1.36
    double_buffered: bool = True
    stage_memory_bytes: float = 280e3
    stage_read_bps: float = 8e6 * 8

    def lost_packets_per_epoch(self, switch: SwitchProfile, loss_rate: float) -> float:
        pps = switch.aggregate_bps / (self.packet_size * 8)
        return pps * loss_rate * self.epoch_s

    def required_memory_bits(self, switch: SwitchProfile, loss_rate: float) -> float:
        """IBF memory needed to cover one epoch's losses switch-wide."""
        cells = self.lost_packets_per_epoch(switch, loss_rate) * self.cells_per_loss
        bits = cells * self.cell_bits
        if self.double_buffered:
            bits *= 2
        return bits

    def memory_ratio(self, switch: SwitchProfile, loss_rate: float) -> float:
        """Table 2 "memory size": required / per-stage memory available."""
        return self.required_memory_bits(switch, loss_rate) / (self.stage_memory_bytes * 8)

    def required_read_bps(self, switch: SwitchProfile, loss_rate: float) -> float:
        """The IBF must be fully read out every epoch."""
        # Reading happens continuously; double buffering does not double
        # the read volume (only one buffer is extracted per epoch).
        bits = self.required_memory_bits(switch, loss_rate)
        if self.double_buffered:
            bits /= 2
        return bits / self.epoch_s

    def read_ratio(self, switch: SwitchProfile, loss_rate: float) -> float:
        """Table 2 "read speedup": required / available read bandwidth."""
        return self.required_read_bps(switch, loss_rate) / self.stage_read_bps

    def max_supported_loss_rate(self, switch: SwitchProfile) -> float:
        """Largest average loss rate Loss Radar can support on this switch
        (the binding constraint between memory and read speed).

        §2.3 reports ≈0.15 % for 100 Gbps × 32 ports.
        """
        # Both ratios are linear in loss rate; find where max(ratios) = 1.
        probe = 0.01
        mem = self.memory_ratio(switch, probe)
        read = self.read_ratio(switch, probe)
        return probe / max(mem, read)

    def table2(self, loss_rates: tuple[float, ...] = (0.001, 0.002, 0.003, 0.01)) -> dict:
        """Regenerate Table 2: both switches × both metrics × loss rates."""
        rows = {}
        for switch in TABLE2_SWITCHES:
            rows[switch.name] = {
                "memory_ratio": {r: self.memory_ratio(switch, r) for r in loss_rates},
                "read_ratio": {r: self.read_ratio(switch, r) for r in loss_rates},
                "max_supported_loss_rate": self.max_supported_loss_rate(switch),
            }
        return rows
