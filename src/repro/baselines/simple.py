"""Simple counter designs (§2.4) and the §5.2 baseline comparison.

Three designs that fit the "in-switch, no sampling, no per-packet state"
constraints but trade away accuracy or memory:

* :class:`SingleLinkCounter*` — one counter per link.  Detects that *some*
  loss happened but cannot localize it: every monitored entry becomes a
  false positive on detection.
* per-entry dedicated counters for **all** entries — exact and
  zero-false-positive, but needs ≈512 MB for an Internet routing table
  (§2.4); within FANcY's 1.25 MB budget only ≈1,024 entries per port fit.
  Reuses :class:`~repro.core.counters.DedicatedSenderCounters`.
* :class:`CountingBloomSender/Receiver` — all memory in one counting Bloom
  filter.  Matching TPR, but every detection implicates all entries
  sharing the mismatching cells (≈100 false positives per detection in
  the paper's CAIDA experiments).

All three plug into the same counting-protocol FSMs as FANcY proper, so
the comparison isolates the data-structure choice.
:class:`StrategyLinkMonitor` wires any sender/receiver strategy pair onto
a link the same way :class:`~repro.core.detector.FancyLinkMonitor` does.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from ..core.bloom import CountingBloomFilter
from ..core.output import FailureKind, FailureLog, FailureReport
from ..core.protocol import FancyReceiver, FancySender
from ..simulator.engine import Simulator
from ..simulator.packet import MIN_FRAME_BYTES, Packet, PacketKind
from ..simulator.switch import Switch

__all__ = [
    "SingleLinkCounterSender",
    "SingleLinkCounterReceiver",
    "CountingBloomSender",
    "CountingBloomReceiver",
    "StrategyLinkMonitor",
]


class SingleLinkCounterSender:
    """Upstream side of the one-counter-per-link design."""

    def __init__(self, on_detection: Optional[Callable[[int, int], None]] = None):
        self.count = 0
        self.on_detection = on_detection
        self.detections = 0

    def begin_session(self, session_id: int) -> None:
        self.count = 0

    def process_packet(self, packet: Packet, session_id: int) -> bool:
        packet.tag = (0,)
        packet.tag_session = session_id
        packet.tag_dedicated = True
        self.count += 1
        return True

    def end_session(self, remote: int, session_id: int) -> int:
        lost = self.count - (remote or 0)
        if lost > 0:
            self.detections += 1
            if self.on_detection is not None:
                self.on_detection(lost, session_id)
        return lost


class SingleLinkCounterReceiver:
    """Downstream side of the one-counter-per-link design."""

    def __init__(self) -> None:
        self.count = 0

    def begin_session(self, session_id: int) -> None:
        self.count = 0

    def process_packet(self, packet: Packet, session_id: int) -> bool:
        if packet.tag is None or packet.tag_session != session_id:
            return False
        self.count += 1
        return True

    def snapshot(self) -> int:
        return self.count


class CountingBloomSender:
    """Upstream side of the counting-Bloom-filter design.

    On mismatch, every entry whose cells are all mismatching is flagged —
    including colliding innocent entries (the design's false positives).
    ``candidate_entries`` is the entry universe used to materialize flags;
    the data plane equivalent would test membership per packet.
    """

    def __init__(
        self,
        n_cells: int,
        candidate_entries: Iterable[Any] = (),
        n_hashes: int = 2,
        seed: int = 0,
        on_detection: Optional[Callable[[list, int], None]] = None,
    ):
        self.filter = CountingBloomFilter(n_cells, n_hashes=n_hashes, seed=seed)
        self.candidates = list(candidate_entries)
        self.on_detection = on_detection
        self.flagged: set[Any] = set()
        self.detect_sessions = 0

    def begin_session(self, session_id: int) -> None:
        self.filter.clear()

    def process_packet(self, packet: Packet, session_id: int) -> bool:
        packet.tag = (0,)
        packet.tag_session = session_id
        packet.tag_dedicated = False
        self.filter.add(packet.entry)
        return True

    def end_session(self, remote: Optional[list[int]], session_id: int) -> list:
        remote_filter = CountingBloomFilter(
            self.filter.n_cells, n_hashes=self.filter.n_hashes, seed=self.filter.seed
        )
        if remote:
            remote_filter.counters = list(remote)
        cells = set(self.filter.mismatching_cells(remote_filter))
        newly: list[Any] = []
        if cells:
            self.detect_sessions += 1
            for entry in self.candidates:
                if entry not in self.flagged and self.filter.matches_cells(entry, cells):
                    self.flagged.add(entry)
                    newly.append(entry)
            if self.on_detection is not None and newly:
                self.on_detection(newly, session_id)
        return newly


class CountingBloomReceiver:
    """Downstream side: hashes entries itself (both sides share seeds)."""

    def __init__(self, n_cells: int, n_hashes: int = 2, seed: int = 0):
        self.filter = CountingBloomFilter(n_cells, n_hashes=n_hashes, seed=seed)

    def begin_session(self, session_id: int) -> None:
        self.filter.clear()

    def process_packet(self, packet: Packet, session_id: int) -> bool:
        if packet.tag is None or packet.tag_session != session_id:
            return False
        self.filter.add(packet.entry)
        return True

    def snapshot(self) -> list[int]:
        return list(self.filter.counters)


class StrategyLinkMonitor:
    """Wire an arbitrary sender/receiver strategy pair onto a link.

    The baseline analogue of
    :class:`~repro.core.detector.FancyLinkMonitor`: same FSMs, same hook
    placement, pluggable counter logic.
    """

    def __init__(
        self,
        sim: Simulator,
        upstream: Switch,
        up_port: int,
        downstream: Switch,
        down_port: int,
        sender_strategy,
        receiver_strategy,
        session_duration_s: float = 0.050,
        fsm_id: str = "baseline",
        log: Optional[FailureLog] = None,
        report_size_bytes: int = MIN_FRAME_BYTES,
    ):
        self.sim = sim
        self.upstream = upstream
        self.up_port = up_port
        self.downstream = downstream
        self.down_port = down_port
        self.log = log if log is not None else FailureLog()
        self.sender_strategy = sender_strategy
        self.receiver_strategy = receiver_strategy

        self.sender = FancySender(
            sim, fsm_id, self._send_downstream, sender_strategy,
            session_duration=session_duration_s,
            on_link_failure=self._on_link_failure,
            report_size_bytes=report_size_bytes,
        )
        self.receiver = FancyReceiver(
            sim, fsm_id, self._send_upstream, receiver_strategy,
            report_size_bytes=report_size_bytes,
        )
        from ..core.detector import claim_monitored_port

        claim_monitored_port(upstream, up_port)
        upstream.add_egress_hook(up_port, self._upstream_egress)
        upstream.add_ingress_hook(up_port, self._upstream_ingress, front=True)
        downstream.add_ingress_hook(down_port, self._downstream_ingress, front=True)

    def _send_downstream(self, kind: PacketKind, payload: dict, size: int) -> None:
        self.upstream.inject(Packet(kind, entry=None, size=size, payload=payload), self.up_port)

    def _send_upstream(self, kind: PacketKind, payload: dict, size: int) -> None:
        self.downstream.inject(
            Packet(kind, entry=None, size=size, payload=payload, reverse=True), self.down_port
        )

    def _upstream_egress(self, packet: Packet, _out_port: int) -> bool:
        if packet.kind is PacketKind.DATA and not packet.reverse:
            packet.clear_tag()
            self.sender.process_packet(packet)
        return True

    def _upstream_ingress(self, packet: Packet, _in_port: int) -> bool:
        if (packet.kind.is_control and packet.payload is not None
                and packet.payload.get("fsm") == self.sender.fsm_id):
            self.sender.on_control(packet.kind, packet.payload)
            return False
        return True

    def _downstream_ingress(self, packet: Packet, _in_port: int) -> bool:
        if packet.kind.is_control and packet.payload is not None:
            if packet.payload.get("fsm") == self.receiver.fsm_id:
                self.receiver.on_control(packet.kind, packet.payload)
                return False
            return True
        if packet.kind is PacketKind.DATA and packet.is_tagged:
            self.receiver.process_packet(packet)
        return True

    def _on_link_failure(self, fsm_id: str, now: float) -> None:
        self.log.record(FailureReport(FailureKind.LINK_DOWN, now, entry=fsm_id,
                                      port=self.up_port))

    def start(self, delay: float = 0.0) -> None:
        self.sim.schedule(delay, self.sender.start)

    def stop(self) -> None:
        self.sender.stop()
        self.receiver.stop()
