"""Baselines: Loss Radar and NetSeer requirement models, the Blink
inference model, and the simple counter designs of §2.4 / §5.2."""

from .blink import BlinkModel
from .lossradar import TABLE2_SWITCHES, LossRadarModel, SwitchProfile
from .netseer import NetSeerBuffer, NetSeerModel
from .simple import (
    CountingBloomReceiver,
    CountingBloomSender,
    SingleLinkCounterReceiver,
    SingleLinkCounterSender,
    StrategyLinkMonitor,
)

__all__ = [
    "BlinkModel",
    "LossRadarModel",
    "SwitchProfile",
    "TABLE2_SWITCHES",
    "NetSeerModel",
    "NetSeerBuffer",
    "SingleLinkCounterSender",
    "SingleLinkCounterReceiver",
    "CountingBloomSender",
    "CountingBloomReceiver",
    "StrategyLinkMonitor",
]
