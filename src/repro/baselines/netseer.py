"""NetSeer inter-switch protocol model (§2.3, Figure 2).

NetSeer (Zhou et al., SIGCOMM'20) detects inter-switch drops by having
each upstream switch buffer a signature of every sent packet until the
downstream acknowledges it; NACKs identify lost packets.  The buffer must
therefore hold at least a link-RTT worth of packet records.  In ISPs —
hundreds of Gbps per link, millisecond link delays — the required buffer
exceeds switch memory by orders of magnitude, and once the buffer wraps
before acknowledgements return, NetSeer loses per-entry visibility and is
*not operational* (the paper's term).

Two models are provided:

* :class:`NetSeerModel` — the analytical memory requirement behind
  Figure 2.
* :class:`NetSeerBuffer` — an executable ring-buffer model used by the
  simulation-based confirmation: packets append records, acknowledgements
  retire them after an RTT, overwrites of unacknowledged records are
  counted as visibility loss.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["NetSeerModel", "NetSeerBuffer"]


@dataclass
class NetSeerModel:
    """Analytical buffer requirement for NetSeer on one switch.

    Args:
        record_bytes: per-packet signature record size (flow key + seq
            metadata; 8 B is generous to NetSeer).
        packet_size: average packet size on the link (1500 B minimizes
            the packet rate and hence favours NetSeer).
        rtt_factor: buffer residency as a multiple of the one-way link
            latency (records wait a full RTT for the NACK window: 2×).
    """

    record_bytes: int = 8
    packet_size: int = 1500
    rtt_factor: float = 2.0

    def required_memory_bytes(
        self, n_ports: int, port_bandwidth_bps: float, link_latency_s: float
    ) -> float:
        """Figure 2: total per-switch buffer for all ports."""
        pps = port_bandwidth_bps / (self.packet_size * 8)
        in_flight = pps * link_latency_s * self.rtt_factor
        return n_ports * in_flight * self.record_bytes

    def operational(
        self,
        n_ports: int,
        port_bandwidth_bps: float,
        link_latency_s: float,
        available_bytes: float,
    ) -> bool:
        """Whether NetSeer keeps per-entry visibility with this memory."""
        return (
            self.required_memory_bytes(n_ports, port_bandwidth_bps, link_latency_s)
            <= available_bytes
        )

    def figure2(
        self,
        latencies_s: tuple[float, ...] = (100e-6, 1e-3, 10e-3, 100e-3),
        bandwidths_bps: tuple[float, ...] = (100e9, 200e9, 400e9),
        n_ports: int = 64,
    ) -> dict:
        """Regenerate the Figure 2 curves (required MB vs latency)."""
        return {
            bw: {
                lat: self.required_memory_bytes(n_ports, bw, lat) / 1e6
                for lat in latencies_s
            }
            for bw in bandwidths_bps
        }


class NetSeerBuffer:
    """Executable ring buffer for the simulated confirmation of Figure 2.

    Drive it with ``on_send(pid, now)`` for every transmitted packet and
    ``on_ack(now)`` periodically (acknowledgements retire every record
    older than the RTT).  ``overwrites`` counts records evicted before
    acknowledgement — each one is a packet NetSeer can no longer attribute
    if it turns out lost.
    """

    def __init__(self, capacity_records: int, rtt_s: float):
        if capacity_records <= 0:
            raise ValueError("buffer needs capacity")
        self.capacity = capacity_records
        self.rtt_s = rtt_s
        self._records: deque[tuple[int, float]] = deque()
        self.sent = 0
        self.overwrites = 0

    def on_send(self, pid: int, now: float) -> None:
        self.retire(now)
        self.sent += 1
        if len(self._records) >= self.capacity:
            self._records.popleft()
            self.overwrites += 1
        self._records.append((pid, now))

    def retire(self, now: float) -> None:
        """Acknowledgements retire records older than one RTT."""
        horizon = now - self.rtt_s
        while self._records and self._records[0][1] <= horizon:
            self._records.popleft()

    @property
    def visibility_loss_fraction(self) -> float:
        """Fraction of sent packets whose record was evicted unacked."""
        if self.sent == 0:
            return 0.0
        return self.overwrites / self.sent

    @property
    def operational(self) -> bool:
        return self.overwrites == 0
