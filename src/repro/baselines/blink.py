"""Blink failure-inference model (§2.3).

Blink (Holterbach et al., NSDI'19) monitors a small sample of flows per
prefix (64) and infers a failure when a majority of them retransmit within
an 800 ms window.  The FANcY paper argues Blink fundamentally cannot see
gray failures that affect a minority of flows: with only a fraction ``f``
of flows crossing the failure, the probability that a majority of the 64
sampled flows are affected collapses once ``f < 0.5``.

This module computes that detection probability exactly (binomial tail)
and the window-dispersion effect: under partial per-packet loss only a
fraction of affected flows retransmit inside one window, diluting the
majority further.
"""

from __future__ import annotations

import math

__all__ = ["BlinkModel"]


def _binom_tail(n: int, p: float, k_min: int) -> float:
    """P[X >= k_min] for X ~ Binomial(n, p)."""
    if p <= 0.0:
        return 0.0 if k_min > 0 else 1.0
    if p >= 1.0:
        return 1.0 if k_min <= n else 0.0
    total = 0.0
    for k in range(k_min, n + 1):
        total += math.comb(n, k) * (p ** k) * ((1 - p) ** (n - k))
    return min(1.0, total)


class BlinkModel:
    """Analytical Blink detector.

    Args:
        monitored_flows: flows sampled per prefix (64 in Blink).
        majority_fraction: fraction that must retransmit to fire (>50 %).
        window_s: retransmission observation window (800 ms).
        rto_s: TCP retransmission timeout driving the first retransmit.
    """

    def __init__(
        self,
        monitored_flows: int = 64,
        majority_fraction: float = 0.5,
        window_s: float = 0.800,
        rto_s: float = 0.200,
    ):
        if monitored_flows <= 0:
            raise ValueError("must monitor at least one flow")
        if not 0 < majority_fraction <= 1:
            raise ValueError("majority fraction must be in (0, 1]")
        self.monitored_flows = monitored_flows
        self.majority_fraction = majority_fraction
        self.window_s = window_s
        self.rto_s = rto_s

    @property
    def majority_count(self) -> int:
        return int(self.monitored_flows * self.majority_fraction) + 1

    def retransmit_in_window_probability(self, packet_loss_rate: float) -> float:
        """Probability an *affected* flow shows a retransmission inside one
        window.

        A flow retransmits after losing a packet; with per-packet loss rate
        ``q`` and a flow sending ≈ window/rto packet rounds per window, the
        chance of at least one loss (hence a retransmission event Blink can
        see in-window) is ``1 - (1-q)^rounds``.  For a blackhole this is 1.
        """
        if not 0 <= packet_loss_rate <= 1:
            raise ValueError("loss rate must be in [0, 1]")
        rounds = max(1, int(self.window_s / self.rto_s))
        return 1.0 - (1.0 - packet_loss_rate) ** rounds

    def detection_probability(
        self, affected_flow_fraction: float, packet_loss_rate: float = 1.0
    ) -> float:
        """Probability Blink fires for a gray failure.

        Args:
            affected_flow_fraction: fraction of the link's flows (hence of
                Blink's sample) crossing the failure.
            packet_loss_rate: per-packet drop rate for affected flows.
        """
        if not 0 <= affected_flow_fraction <= 1:
            raise ValueError("flow fraction must be in [0, 1]")
        p_affected_and_visible = (
            affected_flow_fraction
            * self.retransmit_in_window_probability(packet_loss_rate)
        )
        return _binom_tail(self.monitored_flows, p_affected_and_visible, self.majority_count)

    def gray_failure_blind_spot(self, packet_loss_rate: float = 1.0,
                                threshold: float = 0.01) -> float:
        """Largest affected-flow fraction for which Blink's detection
        probability stays below ``threshold`` — the gray-failure region
        Blink is blind to (§2.3's core argument)."""
        lo, hi = 0.0, 1.0
        for _ in range(40):
            mid = (lo + hi) / 2
            if self.detection_probability(mid, packet_loss_rate) < threshold:
                lo = mid
            else:
                hi = mid
        return lo
