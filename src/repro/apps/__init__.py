"""Data-plane applications built on FANcY's interface."""

from .rerouting import FastRerouteApp

__all__ = ["FastRerouteApp"]
