"""Fine-grained fast rerouting on top of FANcY (§6.1, Figure 10).

The case-study application: as soon as FANcY flags an entry (1-bit flag
for dedicated entries, output Bloom filter hit for tree entries), packets
of that entry are steered to a backup next hop — and only those packets,
which is the "selective" part that BFD-style link-down rerouting cannot
do.

The app installs itself as the upstream switch's forwarding override, so
the redirect happens in the TM lookup — flagged traffic leaves through the
backup port and stops crossing the failed link (and hence stops being
counted there, mirroring the hardware behaviour)."""

from __future__ import annotations

from typing import Any, Optional

from ..core.detector import FancyLinkMonitor
from ..simulator.packet import Packet, PacketKind

__all__ = ["FastRerouteApp"]


class FastRerouteApp:
    """Selective fast rerouting driven by FANcY flags.

    Args:
        monitor: the FANcY instance watching the primary link.
        backup_port: upstream switch port of the backup next hop.
        protected_port: the primary port; only packets that would leave
            through it are candidates for rerouting.
    """

    def __init__(
        self,
        monitor: FancyLinkMonitor,
        backup_port: int,
        protected_port: Optional[int] = None,
    ):
        self.monitor = monitor
        self.backup_port = backup_port
        self.protected_port = (
            protected_port if protected_port is not None else monitor.up_port
        )
        self.switch = monitor.upstream
        self.rerouted_packets = 0
        self.reroute_times: dict[Any, float] = {}
        self._installed = self._decide  # bound once, for identity checks
        # Appended to the switch's override chain: several apps can
        # protect different links of one switch (multi-link protection),
        # with the earliest-installed app winning per packet.
        self.switch.add_forwarding_override(self._installed)

    def _decide(self, packet: Packet) -> Optional[int]:
        if packet.kind is not PacketKind.DATA or packet.reverse:
            return None
        normal = self.switch.routes.get(packet.entry, self.switch.default_port)
        if normal != self.protected_port:
            return None
        if self.monitor.entry_is_flagged(packet.entry):
            self.rerouted_packets += 1
            if packet.entry not in self.reroute_times:
                self.reroute_times[packet.entry] = self.monitor.sim.now
            return self.backup_port
        return None

    def reroute_time(self, entry: Any) -> Optional[float]:
        """When the first packet of ``entry`` was steered to the backup."""
        return self.reroute_times.get(entry)

    def uninstall(self) -> None:
        self.switch.remove_forwarding_override(self._installed)
