"""Command-line interface: ``fancy-repro <experiment> [--full]``.

Runs one experiment (or ``all``) and prints the rendered table/figure.
``--full`` switches from the reduced default configuration to the
paper-faithful sweep — expect long runtimes for the heatmaps.

Sweep execution is governed by an explicit
:class:`repro.runtime.RuntimeContext` built from the CLI flags and
threaded through every experiment callable (no mutable globals):

* ``--workers N`` runs independent sweep cells in N processes;
* ``--cache-dir`` / ``--no-cache`` control the content-addressed result
  cache (default ``.fancy-cache/``) that makes interrupted sweeps
  resumable;
* ``--seed`` reseeds the whole run;
* ``--timeout`` / ``--retries`` bound each cell's wall time and how
  often crashed cells are retried;
* ``--run-log`` records machine-readable JSONL telemetry;
* ``--telemetry`` attaches a per-cell metrics snapshot to each
  ``cell_done`` run-log event; ``--profile`` additionally records
  per-callback wall time (see ``docs/TELEMETRY.md``).

``fancy-repro telemetry`` runs a canonical detection scenario under a
live telemetry session and prints the metric catalogue, detection
records, and event-loop hotspots (``--out DIR`` adds the timeline JSONL
and a Prometheus text file).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Optional, Sequence

from .experiments import (
    baselines52,
    fabric,
    table1,
    fig2,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    overhead,
    table2,
    table3,
    table4,
    table5,
    telemetry_report,
    uniform,
)
from .runtime import DEFAULT_CACHE_DIR, RuntimeContext

__all__ = ["main", "EXPERIMENTS", "build_runtime"]


#: experiment name -> callable(quick, runtime) -> rendered text.  Every
#: callable takes the runtime context explicitly; experiments that do not
#: run sweeps simply ignore it.
EXPERIMENTS: dict[str, Callable[[bool, RuntimeContext], str]] = {
    "table1": lambda quick, runtime: table1.main(quick=quick),
    "table2": lambda quick, runtime: table2.main(),
    "fig2": lambda quick, runtime: fig2.main(),
    "fig7": lambda quick, runtime: fig7.main(quick=quick, runtime=runtime),
    "fig8": lambda quick, runtime: fig8.main(quick=quick),
    "fig9a": lambda quick, runtime: fig9.main(quick=quick, multi=False, runtime=runtime),
    "fig9b": lambda quick, runtime: fig9.main(quick=quick, multi=True, runtime=runtime),
    "uniform": lambda quick, runtime: uniform.main(quick=quick, runtime=runtime),
    "table3": lambda quick, runtime: table3.main(quick=quick, runtime=runtime),
    "baselines": lambda quick, runtime: baselines52.main(),
    "overhead": lambda quick, runtime: overhead.main(),
    "table4": lambda quick, runtime: table4.main(),
    "fabric": lambda quick, runtime: fabric.main(quick=quick, runtime=runtime),
    "fig10": lambda quick, runtime: fig10.main(quick=quick, runtime=runtime),
    "fig11": lambda quick, runtime: fig11.main(quick=quick, runtime=runtime),
    "table5": lambda quick, runtime: table5.main(),
    "telemetry": lambda quick, runtime: telemetry_report.main(quick=quick, runtime=runtime),
}


def build_runtime(args: argparse.Namespace) -> RuntimeContext:
    """Build the explicit execution context from parsed CLI flags."""
    cache_dir = None if args.no_cache else args.cache_dir
    return RuntimeContext(
        workers=args.workers,
        cache_dir=cache_dir,
        seed=args.seed,
        timeout_s=args.timeout,
        retries=args.retries,
        run_log=args.run_log,
        progress=not args.quiet,
        telemetry=args.telemetry or args.profile,
        profile=args.profile,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args_list = list(sys.argv[1:] if argv is None else argv)
    if args_list and args_list[0] == "lint":
        # `fancy-repro lint [...]` delegates to the fancylint CLI, which
        # owns its own flags (see docs/STATIC_ANALYSIS.md).
        from .lint.cli import main as lint_main

        return lint_main(args_list[1:])
    if args_list and args_list[0] == "chaos":
        # `fancy-repro chaos [...]` delegates to the chaos-soak CLI,
        # which owns its own flags (see docs/ROBUSTNESS.md).
        from .chaos.cli import main as chaos_main

        return chaos_main(args_list[1:])
    if args_list and args_list[0] == "serve":
        # `fancy-repro serve [...]` delegates to the degraded-mode soak
        # service CLI (see docs/ROBUSTNESS.md).
        from .service.cli import main as serve_main

        return serve_main(args_list[1:])
    if args_list and args_list[0] == "report":
        # `fancy-repro report [...]` delegates to the observability CLI:
        # the fabric health dashboard and trace-schema validation
        # (see docs/TELEMETRY.md).
        from .obs.cli import main as report_main

        return report_main(args_list[1:])

    parser = argparse.ArgumentParser(
        prog="fancy-repro",
        description="Regenerate the FANcY paper's tables and figures "
                    "(run `fancy-repro lint` for the static-analysis gate, "
                    "`fancy-repro chaos` for the fault-injection soak, "
                    "`fancy-repro serve` for the degraded-mode soak "
                    "service, `fancy-repro report` for the fabric health "
                    "dashboard).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper-faithful configuration instead of the quick one",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run independent sweep cells in N parallel processes",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_CACHE_DIR,
        help="content-addressed result cache; completed cells are skipped "
             f"on re-runs (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache (every cell recomputes)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="base RNG seed for the sweeps (default: 0)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock timeout; wedged cells are killed and retried",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="re-submissions of a crashed/failed/timed-out cell (default: 1)",
    )
    parser.add_argument(
        "--run-log",
        metavar="FILE",
        default=None,
        help="append machine-readable JSONL sweep telemetry to FILE",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="collect per-cell metrics snapshots; with --run-log each "
             "cell_done JSONL event carries its snapshot",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="additionally record per-callback wall time in the event "
             "engine (implies --telemetry)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record causal detection traces (fabric experiment only); "
             "with --out also writes trace JSONL, Chrome-trace JSON and "
             "the HTML health report",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the live stderr progress line",
    )
    parser.add_argument(
        "--fluid",
        action="store_true",
        help="fabric experiment only: model background traffic as fluid "
             "rate segments absorbed at counting-window boundaries "
             "instead of per-packet events (docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="fabric experiment only: shard the per-link monitor probes "
             "into N batches run under the sweep executor; merged output "
             "is byte-identical for any N (docs/FABRIC.md)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="also write each rendered artifact to DIR/<experiment>.txt",
    )
    args = parser.parse_args(args_list)
    runtime = build_runtime(args)

    out_dir = None
    if args.out is not None:
        import pathlib

        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        # Durations use the monotonic clock (FCY002): time.time() can jump
        # backwards under NTP adjustment and print negative runtimes.
        started = time.monotonic()
        print(f"=== {name} ===")
        if name == "telemetry":
            # The telemetry summary writes extra machine-readable
            # artifacts (timeline JSONL, Prometheus text) under --out.
            text = telemetry_report.main(quick=not args.full, runtime=runtime,
                                         out_dir=out_dir)
        elif name == "fabric":
            # The fabric experiment owns the --trace/--fluid/--shards
            # flags: detection traces, the hybrid fluid tier, and
            # process-sharded per-link probes.
            text = fabric.main(quick=not args.full, runtime=runtime,
                               trace=args.trace, out_dir=out_dir,
                               fluid=args.fluid, shards=args.shards)
        else:
            text = EXPERIMENTS[name](not args.full, runtime)
        if out_dir is not None and text:
            (out_dir / f"{name}.txt").write_text(text + "\n")
        print(f"--- {name} done in {time.monotonic() - started:.1f}s ---\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
