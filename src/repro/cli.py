"""Command-line interface: ``fancy-repro <experiment> [--full]``.

Runs one experiment (or ``all``) and prints the rendered table/figure.
``--full`` switches from the reduced default configuration to the
paper-faithful sweep — expect long runtimes for the heatmaps.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Optional, Sequence

from .experiments import (
    baselines52,
    table1,
    fig2,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    overhead,
    table2,
    table3,
    table4,
    table5,
    uniform,
)

__all__ = ["main", "EXPERIMENTS"]


_WORKERS: list = [None]


def _fig9a(quick: bool) -> str:
    return fig9.main(quick=quick, multi=False, workers=_WORKERS[0])


def _fig9b(quick: bool) -> str:
    return fig9.main(quick=quick, multi=True, workers=_WORKERS[0])


#: experiment name -> callable(quick) -> rendered text.
EXPERIMENTS: dict[str, Callable[[bool], str]] = {
    "table1": lambda quick: table1.main(quick=quick),
    "table2": lambda quick: table2.main(),
    "fig2": lambda quick: fig2.main(),
    "fig7": lambda quick: fig7.main(quick=quick, workers=_WORKERS[0]),
    "fig8": lambda quick: fig8.main(quick=quick),
    "fig9a": _fig9a,
    "fig9b": _fig9b,
    "uniform": lambda quick: uniform.main(quick=quick),
    "table3": lambda quick: table3.main(quick=quick),
    "baselines": lambda quick: baselines52.main(),
    "overhead": lambda quick: overhead.main(),
    "table4": lambda quick: table4.main(),
    "fig10": lambda quick: fig10.main(quick=quick),
    "fig11": lambda quick: fig11.main(quick=quick),
    "table5": lambda quick: table5.main(),
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fancy-repro",
        description="Regenerate the FANcY paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper-faithful configuration instead of the quick one",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run heatmap cells in N parallel processes (fig7/fig9)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="also write each rendered artifact to DIR/<experiment>.txt",
    )
    args = parser.parse_args(argv)
    _WORKERS[0] = args.workers

    out_dir = None
    if args.out is not None:
        import pathlib

        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        print(f"=== {name} ===")
        text = EXPERIMENTS[name](not args.full)
        if out_dir is not None and text:
            (out_dir / f"{name}.txt").write_text(text + "\n")
        print(f"--- {name} done in {time.time() - started:.1f}s ---\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
