"""Declarative scenario builder — the high-level experiment API.

Everything the experiments in this repository do by hand (build a
topology, configure FANcY, attach traffic, inject failures, run, score)
can be declared in one place::

    from repro.scenario import Scenario

    result = (
        Scenario(duration_s=10)
        .entry("10.0.0.0/24", rate_bps=2e6, flows_per_second=20, dedicated=True)
        .entry("10.1.0.0/24", rate_bps=500e3, flows_per_second=5)
        .fail("10.1.0.0/24", loss_rate=0.3, at=2.0)
        .run()
    )
    assert result.flagged("10.1.0.0/24")
    print(result.detection_time("10.1.0.0/24"))

The builder covers the canonical two-switch setup; anything fancier
(chains, stars, custom hooks) drops down to the underlying modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .core.detector import FancyConfig, FancyLinkMonitor
from .core.hashtree import HashTreeParams
from .core.output import FailureKind, FailureReport
from .simulator.apps import FlowGenerator
from .simulator.engine import Simulator
from .simulator.failures import CompositeFailure, EntryLossFailure, UniformLossFailure
from .simulator.topology import TwoSwitchTopology
from .simulator.udp import UdpSource

__all__ = ["Scenario", "ScenarioResult"]

DEFAULT_TREE = HashTreeParams(width=32, depth=3, split=2, pipelined=True)


@dataclass
class _EntrySpec:
    entry: Any
    rate_bps: float
    flows_per_second: float
    dedicated: bool
    packet_size: int
    udp: bool


@dataclass
class _FailureSpec:
    entries: Optional[tuple]
    loss_rate: float
    at: float
    until: Optional[float]


@dataclass
class ScenarioResult:
    """Outcome of a scenario run, with the queries experiments need."""

    monitor: FancyLinkMonitor
    sim: Simulator
    failure_times: dict = field(default_factory=dict)

    def flagged(self, entry: Any) -> bool:
        return self.monitor.entry_is_flagged(entry)

    def reports(self, kind: Optional[FailureKind] = None) -> list[FailureReport]:
        if kind is None:
            return list(self.monitor.log.reports)
        return self.monitor.log.by_kind(kind)

    def detection_time(self, entry: Any) -> Optional[float]:
        """Seconds from the entry's failure onset to its first report."""
        onset = self.failure_times.get(entry)
        if onset is None:
            return None
        report = self.monitor.log.first_report(kind=FailureKind.DEDICATED_ENTRY,
                                               entry=entry)
        if report is None and self.monitor.tree_strategy is not None:
            hp = self.monitor.tree_strategy.tree.hash_path(entry)
            report = self.monitor.log.first_report(kind=FailureKind.TREE_LEAF,
                                                   hash_path=hp)
        if report is None or report.time < onset:
            return None
        return report.time - onset

    def uniform_detected(self) -> bool:
        return bool(self.monitor.log.by_kind(FailureKind.UNIFORM))


class Scenario:
    """Fluent builder for two-switch FANcY experiments."""

    def __init__(
        self,
        duration_s: float = 10.0,
        link_delay_s: float = 0.010,
        tree_params: Optional[HashTreeParams] = DEFAULT_TREE,
        dedicated_session_s: float = 0.050,
        tree_session_s: float = 0.200,
        seed: int = 0,
    ):
        self.duration_s = duration_s
        self.link_delay_s = link_delay_s
        self.tree_params = tree_params
        self.dedicated_session_s = dedicated_session_s
        self.tree_session_s = tree_session_s
        self.seed = seed
        self._entries: list[_EntrySpec] = []
        self._failures: list[_FailureSpec] = []
        self._uniform: Optional[_FailureSpec] = None

    # -- declaration -----------------------------------------------------------

    def entry(self, entry: Any, rate_bps: float = 1e6,
              flows_per_second: float = 10, dedicated: bool = False,
              packet_size: int = 1500, udp: bool = False) -> "Scenario":
        """Declare a monitored entry and its traffic."""
        if any(e.entry == entry for e in self._entries):
            raise ValueError(f"entry {entry!r} declared twice")
        self._entries.append(_EntrySpec(entry, rate_bps, flows_per_second,
                                        dedicated, packet_size, udp))
        return self

    def fail(self, *entries: Any, loss_rate: float = 1.0, at: float = 1.0,
             until: Optional[float] = None) -> "Scenario":
        """Inject a gray failure on the given entries."""
        if not entries:
            raise ValueError("fail() needs at least one entry")
        self._failures.append(_FailureSpec(tuple(entries), loss_rate, at, until))
        return self

    def fail_uniformly(self, loss_rate: float, at: float = 1.0,
                       until: Optional[float] = None) -> "Scenario":
        """Inject link-level random loss on all entries."""
        self._uniform = _FailureSpec(None, loss_rate, at, until)
        return self

    # -- execution ----------------------------------------------------------------

    def run(self) -> ScenarioResult:
        if not self._entries:
            raise ValueError("scenario has no entries")
        declared = {e.entry for e in self._entries}
        for spec in self._failures:
            unknown = set(spec.entries) - declared
            if unknown:
                raise ValueError(f"failing undeclared entries: {sorted(unknown)}")

        sim = Simulator()
        failures = []
        failure_times: dict[Any, float] = {}
        for i, spec in enumerate(self._failures):
            failures.append(EntryLossFailure(
                spec.entries, spec.loss_rate, start_time=spec.at,
                end_time=spec.until, seed=self.seed + i,
            ))
            for entry in spec.entries:
                failure_times.setdefault(entry, spec.at)
        if self._uniform is not None:
            failures.append(UniformLossFailure(
                self._uniform.loss_rate, start_time=self._uniform.at,
                end_time=self._uniform.until, seed=self.seed + 991,
            ))
        loss_model = CompositeFailure(failures) if failures else None

        topo = TwoSwitchTopology(sim, link_delay_s=self.link_delay_s,
                                 loss_model=loss_model)
        config = FancyConfig(
            high_priority=[e.entry for e in self._entries if e.dedicated],
            tree_params=self.tree_params,
            dedicated_session_s=self.dedicated_session_s,
            tree_session_s=self.tree_session_s,
            seed=self.seed,
        )
        monitor = FancyLinkMonitor(sim, topo.upstream, 1, topo.downstream, 1,
                                   config)
        for i, e in enumerate(self._entries):
            if e.udp:
                UdpSource(sim, topo.source.send, e.entry,
                          flow_id=(i + 1) * 1_000_000,
                          rate_bps=e.rate_bps,
                          packet_size=e.packet_size).start()
            else:
                FlowGenerator(
                    sim, topo.source, e.entry,
                    rate_bps=e.rate_bps,
                    flows_per_second=e.flows_per_second,
                    packet_size=e.packet_size,
                    seed=self.seed + 31 * i,
                    flow_id_base=(i + 1) * 1_000_000,
                ).start()
        monitor.start()
        sim.run(until=self.duration_s)
        return ScenarioResult(monitor=monitor, sim=sim,
                              failure_times=failure_times)
