"""Exporters: Prometheus text exposition format and JSON Lines.

Both exporters work off a live :class:`~repro.telemetry.registry.
MetricsRegistry` *or* one of its JSON snapshots, so the same code path
serves in-process use (the ``fancy-repro telemetry`` command) and
post-hoc tooling reading snapshots out of the runtime's JSONL run log.
"""

from __future__ import annotations

import json
from typing import Optional, Union

from .registry import MetricsRegistry

__all__ = ["to_prometheus", "to_jsonl", "hotspots"]

_PROM_KINDS = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}


def _entries(source: Union[MetricsRegistry, dict]) -> list[dict]:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()["metrics"]
    return list(source.get("metrics", ()))


def _label_str(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    """Escape a label value: backslash, double-quote, newline (v0.0.4)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    """Escape HELP text: only backslash and newline — a double quote is
    legal as-is there, and ``\\"`` would be read back as two characters."""
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt(value) -> str:
    if value is None:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus(source: Union[MetricsRegistry, dict],
                  help_of: Optional[dict] = None) -> str:
    """Render metrics in the Prometheus text exposition format (v0.0.4).

    Counters are suffixed ``_total`` when not already; histograms expose
    cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.

    Series are grouped by metric family first (families ordered by first
    occurrence in the input): the exposition format allows ``# HELP`` /
    ``# TYPE`` only once per family and requires all of a family's
    samples to follow its header contiguously — interleaved input must
    not split a family apart.
    """
    entries = _entries(source)
    helps = dict(help_of or {})
    if isinstance(source, MetricsRegistry):
        helps.update({name: source.help_of(name) for name in source.families()})

    families: dict[str, list[dict]] = {}
    for entry in entries:
        name = entry["name"]
        prom_name = (name if entry["kind"] != "counter"
                     or name.endswith("_total") else f"{name}_total")
        families.setdefault(prom_name, []).append(entry)

    lines: list[str] = []
    for prom_name, group in families.items():
        name = group[0]["name"]
        kind = group[0]["kind"]
        help_text = helps.get(name, "")
        if help_text:
            lines.append(f"# HELP {prom_name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {prom_name} {_PROM_KINDS.get(kind, 'untyped')}")
        for entry in group:
            labels = entry.get("labels", {})
            if entry["kind"] == "histogram":
                cumulative = 0
                for upper, count in zip(entry["buckets"], entry["counts"]):
                    cumulative += count
                    lines.append(
                        f"{prom_name}_bucket"
                        f"{_label_str(labels, {'le': _fmt(float(upper))})} "
                        f"{cumulative}"
                    )
                cumulative += entry["counts"][-1]
                lines.append(
                    f"{prom_name}_bucket{_label_str(labels, {'le': '+Inf'})} "
                    f"{cumulative}"
                )
                lines.append(
                    f"{prom_name}_sum{_label_str(labels)} {_fmt(entry['sum'])}")
                lines.append(
                    f"{prom_name}_count{_label_str(labels)} {entry['count']}")
            else:
                lines.append(
                    f"{prom_name}{_label_str(labels)} {_fmt(entry['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_jsonl(source: Union[MetricsRegistry, dict]) -> str:
    """One JSON object per instrument, one instrument per line."""
    lines = [json.dumps(entry, default=str) for entry in _entries(source)]
    return "\n".join(lines) + ("\n" if lines else "")


def hotspots(source: Union[MetricsRegistry, dict], metric: str = "sim_callback_seconds",
             top: int = 10) -> list[dict]:
    """Event-loop profile: callbacks ranked by total wall time.

    Reads the per-callback wall-time histograms the simulator engine
    records under ``--profile`` and returns, per callback, the call
    count, total / mean / max wall seconds — the profiling workflow's
    "where did the time go" table.
    """
    rows = []
    for entry in _entries(source):
        if entry["name"] != metric or entry["kind"] != "histogram":
            continue
        labels = entry.get("labels", {})
        count = entry.get("count", 0)
        total = entry.get("sum", 0.0)
        rows.append({
            "callback": labels.get("callback", "?"),
            "calls": count,
            "total_s": total,
            "mean_s": (total / count) if count else 0.0,
            "max_s": entry.get("max"),
        })
    rows.sort(key=lambda r: -r["total_s"])
    return rows[:top]
