"""Protocol state-machine timeline: *how* a detection unfolded.

The :class:`StateTimeline` is an append-only, monotonically timestamped
event log fed by the FANcY FSMs (:mod:`repro.core.protocol`), the
zooming strategy (:mod:`repro.core.zooming`), the link monitor
(:mod:`repro.core.detector`) and the experiment runners.  Event types:

========================  =====================================================
``fsm_transition``        an FSM changed state (fields: ``fsm``, ``role``,
                          ``from``, ``to``, ``session``)
``session_open`` /        a counting session opened / completed on a sender
``session_close``         FSM (fields: ``fsm``, ``session``)
``zoom_descend`` /        the tree's zooming frontier activated / retreated
``zoom_retreat``          from a node (fields: ``fsm``, ``path``, ``level``)
``failure_injected``      the experiment injected a gray failure (fields:
                          ``entry``, optional ``hash_path``)
``detection``             the monitor raised a failure report (fields:
                          ``kind``, ``fsm``, ``entry`` / ``hash_path``,
                          ``session``, ``lost``, ``control_bytes``)
========================  =====================================================

Ordering guarantee: :meth:`StateTimeline.record` **rejects** timestamps
that run backwards, so a timeline is monotone by construction (events at
equal timestamps keep insertion order via a sequence number).  The
simulator's clock is monotone, which makes this a cheap invariant — and
a loud canary for instrumentation wired up across two different
simulations by mistake.

:meth:`detection_records` pairs each ``failure_injected`` event with the
first matching ``detection`` (by entry for dedicated counters, by leaf
hash path for the tree) and derives the paper's headline quantities:
injection→flag latency (Fig. 9/10), counting sessions used by the
detecting FSM, and cumulative control bytes at detection time (Table 4's
overhead companion).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, IO, Iterator, Optional

__all__ = ["TimelineEvent", "StateTimeline", "DetectionRecord"]


@dataclass(frozen=True)
class TimelineEvent:
    """One timeline entry: a timestamp, a source, an event type, fields."""

    time: float
    seq: int
    source: str
    event: str
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {"time": self.time, "source": self.source, "event": self.event}
        for key, value in self.fields.items():
            out[key] = list(value) if isinstance(value, tuple) else value
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), default=str)


@dataclass(frozen=True)
class DetectionRecord:
    """Per-entry detection outcome derived from the timeline."""

    entry: Any
    injected_at: float
    detected_at: Optional[float]
    kind: Optional[str]
    sessions_used: Optional[int]
    control_bytes: Optional[int]

    @property
    def detected(self) -> bool:
        return self.detected_at is not None

    @property
    def latency(self) -> Optional[float]:
        if self.detected_at is None:
            return None
        return self.detected_at - self.injected_at

    def to_dict(self) -> dict:
        return {
            "entry": self.entry,
            "injected_at": self.injected_at,
            "detected_at": self.detected_at,
            "latency": self.latency,
            "kind": self.kind,
            "sessions_used": self.sessions_used,
            "control_bytes": self.control_bytes,
        }


class StateTimeline:
    """Append-only, monotonically timestamped event log."""

    def __init__(self, max_events: int = 1_000_000):
        self.max_events = max_events
        self.events: list[TimelineEvent] = []
        self.suppressed = 0
        self._last_time = float("-inf")
        self._seq = 0
        self._suppression_counter: Any = None

    def bind_suppression_counter(self, counter: Any) -> None:
        """Mirror bounded-suppression drops into a registry counter.

        A truncated timeline is a blindspot — detection pairing and FSM
        forensics silently lose their tail.  :class:`~repro.telemetry.
        session.Telemetry` binds ``telemetry_timeline_truncated_total``
        here so the drop count shows up in metric exports instead of
        only inside the (possibly never-serialized) timeline object.
        """
        self._suppression_counter = counter

    # -- recording ------------------------------------------------------------

    def record(self, time: float, source: str, event: str, **fields: Any) -> None:
        """Append one event; raises on a backwards timestamp."""
        if time < self._last_time:
            raise ValueError(
                f"timeline event {event!r} at t={time} is earlier than the "
                f"previously recorded t={self._last_time} — timelines must be "
                "monotonically timestamped (one StateTimeline per simulation)"
            )
        self._last_time = time
        if len(self.events) >= self.max_events:
            self.suppressed += 1
            if self._suppression_counter is not None:
                self._suppression_counter.inc()
            return
        self.events.append(TimelineEvent(time, self._seq, source, event, fields))
        self._seq += 1

    # -- queries --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TimelineEvent]:
        return iter(self.events)

    def select(self, event: Optional[str] = None, source: Optional[str] = None,
               predicate: Optional[Callable[[TimelineEvent], bool]] = None
               ) -> list[TimelineEvent]:
        out = []
        for ev in self.events:
            if event is not None and ev.event != event:
                continue
            if source is not None and ev.source != source:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    def transitions(self, fsm: Optional[str] = None) -> list[TimelineEvent]:
        """All ``fsm_transition`` events, optionally of one FSM."""
        return self.select(
            "fsm_transition",
            predicate=(lambda ev: ev.fields.get("fsm") == fsm) if fsm else None,
        )

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.event] = out.get(ev.event, 0) + 1
        return out

    # -- detection accounting ---------------------------------------------------

    def detection_records(self) -> list[DetectionRecord]:
        """Pair every injected failure with its first matching detection."""
        injections = self.select("failure_injected")
        detections = self.select("detection")
        session_opens = self.select("session_open")
        records = []
        for inj in injections:
            entry = inj.fields.get("entry")
            hash_path = inj.fields.get("hash_path")
            match = _first_match(detections, inj.time, entry, hash_path)
            if match is None:
                records.append(DetectionRecord(entry, inj.time, None, None, None, None))
                continue
            fsm = match.fields.get("fsm")
            sessions = sum(
                1 for ev in session_opens
                if inj.time < ev.time <= match.time
                and (fsm is None or ev.fields.get("fsm") == fsm)
            )
            records.append(DetectionRecord(
                entry=entry,
                injected_at=inj.time,
                detected_at=match.time,
                kind=match.fields.get("kind"),
                sessions_used=sessions,
                control_bytes=match.fields.get("control_bytes"),
            ))
        return records

    # -- serialization -----------------------------------------------------------

    def to_jsonl(self, fh: Optional[IO[str]] = None) -> Optional[str]:
        """Render as JSON Lines; returns the text when ``fh`` is None."""
        lines = [ev.to_json() for ev in self.events]
        if self.suppressed:
            lines.append(json.dumps({
                "event": "timeline_truncated",
                "suppressed": self.suppressed,
                "max_events": self.max_events,
            }))
        text = "\n".join(lines) + ("\n" if lines else "")
        if fh is None:
            return text
        fh.write(text)
        return None


def _first_match(detections: list[TimelineEvent], after: float,
                 entry: Any, hash_path: Any) -> Optional[TimelineEvent]:
    hp = list(hash_path) if isinstance(hash_path, tuple) else hash_path
    for ev in detections:
        if ev.time < after:
            continue
        ev_entry = ev.fields.get("entry")
        ev_path = ev.fields.get("hash_path")
        if entry is not None and ev_entry == entry:
            return ev
        if hp is not None and ev_path is not None:
            ev_hp = list(ev_path) if isinstance(ev_path, tuple) else ev_path
            if ev_hp == hp:
                return ev
        if ev.fields.get("kind") == "uniform" and entry is None and hp is None:
            return ev
    return None
