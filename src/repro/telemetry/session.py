"""The per-simulation telemetry session object.

A :class:`Telemetry` bundles what one simulation run emits:

* a :class:`~repro.telemetry.registry.MetricsRegistry` (counters,
  gauges, log-scale histograms),
* a :class:`~repro.telemetry.timeline.StateTimeline` (FSM transitions,
  session lifecycle, zooming descent, failure injection → detection),
* the ``profile`` switch that turns on per-callback wall-time
  histograms in the event engine.

Every instrumented component (`Simulator`, `Link`, `Switch`, the FANcY
FSMs, `FancyLinkMonitor`) takes ``telemetry=None``; passing a session
switches structured signals on, ``None`` keeps the hot paths free.

The **registry can be shared across runs** while timelines cannot: a
timeline is monotonically timestamped and every simulation restarts its
clock at zero.  :meth:`Telemetry.fork` hands out a sibling session with
the same registry (and profile flag) but a fresh timeline — what
``run_cell`` uses to aggregate metrics over a cell's repetitions.
"""

from __future__ import annotations

from typing import Optional

from .registry import MetricsRegistry
from .timeline import StateTimeline

__all__ = ["Telemetry"]


class Telemetry:
    """One simulation's metrics registry + state timeline + profile flag."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        timeline: Optional[StateTimeline] = None,
        profile: bool = False,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.timeline = timeline if timeline is not None else StateTimeline()
        self.profile = profile

    def fork(self) -> "Telemetry":
        """Sibling session: shared registry, fresh timeline."""
        return Telemetry(metrics=self.metrics, timeline=StateTimeline(
            max_events=self.timeline.max_events), profile=self.profile)

    def detection_records(self):
        return self.timeline.detection_records()

    def snapshot(self) -> dict:
        """JSON-serializable metrics snapshot (rides the JSONL run log)."""
        return self.metrics.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Telemetry(instruments={len(self.metrics)}, "
                f"timeline_events={len(self.timeline)}, profile={self.profile})")
