"""The per-simulation telemetry session object.

A :class:`Telemetry` bundles what one simulation run emits:

* a :class:`~repro.telemetry.registry.MetricsRegistry` (counters,
  gauges, log-scale histograms),
* a :class:`~repro.telemetry.timeline.StateTimeline` (FSM transitions,
  session lifecycle, zooming descent, failure injection → detection),
* the ``profile`` switch that turns on per-callback wall-time
  histograms in the event engine.

Every instrumented component (`Simulator`, `Link`, `Switch`, the FANcY
FSMs, `FancyLinkMonitor`) takes ``telemetry=None``; passing a session
switches structured signals on, ``None`` keeps the hot paths free.

The **registry can be shared across runs** while timelines cannot: a
timeline is monotonically timestamped and every simulation restarts its
clock at zero.  :meth:`Telemetry.fork` hands out a sibling session with
the same registry (and profile flag) but a fresh timeline *and a fresh
trace collector* — what ``run_cell`` uses to aggregate metrics over a
cell's repetitions, and what the fabric deployment uses to give each of
its 64 link monitors a private timeline/trace with shared counters.
Forks take a ``scope`` (the fabric passes the link id) that names the
trace ids minted by :attr:`Telemetry.traces` and labels the
``telemetry_timeline_truncated_total`` counter, making bounded-
suppression drops visible per fork instead of silent.
"""

from __future__ import annotations

from typing import Optional

from ..obs.trace import TraceCollector
from .registry import MetricsRegistry
from .timeline import StateTimeline

__all__ = ["Telemetry"]


class Telemetry:
    """One simulation's metrics registry + timeline + traces + profile."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        timeline: Optional[StateTimeline] = None,
        profile: bool = False,
        traces: Optional[TraceCollector] = None,
        scope: str = "",
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.timeline = timeline if timeline is not None else StateTimeline()
        self.profile = profile
        self.scope = scope
        self.traces = traces if traces is not None else TraceCollector(scope=scope)
        # Surface the timeline's bounded-suppression drops as a registry
        # counter (labelled per scope so fabric forks stay attributable).
        bind = getattr(self.timeline, "bind_suppression_counter", None)
        if bind is not None:
            bind(self.metrics.counter(
                "telemetry_timeline_truncated_total",
                "Timeline events dropped by the bounded-suppression cap",
                scope=scope or "root"))

    def fork(self, scope: Optional[str] = None) -> "Telemetry":
        """Sibling session: shared registry, fresh timeline and traces."""
        return Telemetry(
            metrics=self.metrics,
            timeline=StateTimeline(max_events=self.timeline.max_events),
            profile=self.profile,
            scope=self.scope if scope is None else scope,
        )

    def detection_records(self):
        return self.timeline.detection_records()

    def snapshot(self) -> dict:
        """JSON-serializable metrics snapshot (rides the JSONL run log)."""
        return self.metrics.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Telemetry(instruments={len(self.metrics)}, "
                f"timeline_events={len(self.timeline)}, profile={self.profile})")
