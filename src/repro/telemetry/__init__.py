"""First-class telemetry for the FANcY reproduction.

The paper's headline claims are observability claims — detection-latency
CDFs (Fig. 9/10), control-message overhead (Table 4), sessions to
detection for the zooming tree — and this package is their single source
of truth:

* :mod:`~repro.telemetry.registry` — counters, gauges and log-scale
  histograms, cheap enough to stay on by default (no-op when
  unregistered via :data:`NULL_REGISTRY`);
* :mod:`~repro.telemetry.timeline` — the protocol state-machine
  timeline: every FSM transition, session open/close, zooming descent,
  failure injection and detection, monotonically timestamped;
* :mod:`~repro.telemetry.export` — Prometheus text format and JSONL
  exporters plus the event-loop :func:`hotspots` profile;
* :mod:`~repro.telemetry.session` — the :class:`Telemetry` bundle that
  instrumented components accept as ``telemetry=``; it also carries a
  :class:`~repro.obs.trace.TraceCollector` (re-exported here) stringing
  each detection episode into a causal trace — see :mod:`repro.obs`.

See ``docs/TELEMETRY.md`` for the metric catalogue, the trace schema
and workflows.
"""

from ..obs.trace import Span, TraceCollector
from .export import hotspots, to_jsonl, to_prometheus
from .registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    merge_snapshots,
)
from .session import Telemetry
from .timeline import DetectionRecord, StateTimeline, TimelineEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "merge_snapshots",
    "Telemetry",
    "Span",
    "TraceCollector",
    "StateTimeline",
    "TimelineEvent",
    "DetectionRecord",
    "to_prometheus",
    "to_jsonl",
    "hotspots",
]
