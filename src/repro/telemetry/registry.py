"""Metrics primitives: counters, gauges and log-scale histograms.

The registry follows the Prometheus data model (metric *families*
identified by name, instruments identified by name + label set) but is
designed for a discrete-event simulator's hot path:

* instruments are plain Python objects with ``__slots__`` and one-line
  ``inc``/``set``/``observe`` methods;
* components *pre-bind* their instruments at construction time, so the
  per-event cost is one method call on an already-resolved object;
* a shared :data:`NULL_REGISTRY` hands out no-op instruments, which is
  what "telemetry disabled" means — callers never need ``if telemetry``
  checks on hot paths (though the simulator engine adds one anyway,
  because it executes millions of events).

Histograms use log-scale buckets (a geometric ladder), the right shape
for latency- and duration-like quantities that span several orders of
magnitude (per-event callback wall time, queue occupancy).

Snapshots are plain JSON-serializable dicts so they can ride the
runtime's JSONL run log and the content-addressed result cache;
:func:`merge_snapshots` folds the snapshots of repeated runs together
(counters add, gauges keep the latest, histograms merge bucket-wise).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "merge_snapshots",
]

#: Labels are carried as a sorted tuple of (key, value) pairs so that the
#: same label set always resolves to the same instrument.
LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: dict) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (events, packets, bytes)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Instantaneous value (queue depth, active explorations)."""

    __slots__ = ("name", "labels", "value", "max_value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"value": self.value, "max": self.max_value}


class Histogram:
    """Log-scale (geometric) histogram.

    Bucket ``i`` counts observations with ``value <= start * base**i``;
    one overflow bucket counts the rest (Prometheus ``+Inf``).  With the
    defaults (start 1e-6, base 10, 12 buckets) the ladder spans
    microseconds to ~10⁶ units, fine for wall-clock timings and queue
    depths alike.
    """

    __slots__ = ("name", "labels", "start", "base", "buckets", "counts",
                 "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelSet = (), *,
                 start: float = 1e-6, base: float = 10.0, n_buckets: int = 12):
        if start <= 0 or base <= 1 or n_buckets < 1:
            raise ValueError("histogram needs start > 0, base > 1, n_buckets >= 1")
        self.name = name
        self.labels = labels
        self.start = start
        self.base = base
        self.buckets = [start * base ** i for i in range(n_buckets)]
        self.counts = [0] * (n_buckets + 1)  # + overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= self.start:
            self.counts[0] += 1
            return
        idx = int(math.ceil(math.log(value / self.start, self.base) - 1e-12))
        if idx >= len(self.buckets):
            self.counts[-1] += 1
        else:
            self.counts[idx] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """Registry of named instruments, keyed by (name, label set).

    Calling :meth:`counter` / :meth:`gauge` / :meth:`histogram` returns
    the existing instrument for that name + label combination or creates
    it — the Prometheus ``labels()`` idiom.  A name registered with one
    instrument kind cannot be re-registered as another.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelSet], object] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}

    # -- instrument factories -------------------------------------------------

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", *,
                  start: float = 1e-6, base: float = 10.0, n_buckets: int = 12,
                  **labels: str) -> Histogram:
        key = (name, _labelset(labels))
        self._check_kind(name, "histogram", help)
        inst = self._instruments.get(key)
        if inst is None:
            inst = Histogram(name, key[1], start=start, base=base, n_buckets=n_buckets)
            self._instruments[key] = inst
        return inst  # type: ignore[return-value]

    def _get(self, cls, name: str, help: str, labels: dict):
        key = (name, _labelset(labels))
        self._check_kind(name, cls.kind, help)
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, key[1])
            self._instruments[key] = inst
        return inst

    def _check_kind(self, name: str, kind: str, help: str) -> None:
        seen = self._kinds.get(name)
        if seen is not None and seen != kind:
            raise ValueError(f"metric {name!r} already registered as {seen}, not {kind}")
        self._kinds[name] = kind
        if help and name not in self._help:
            self._help[name] = help

    # -- queries --------------------------------------------------------------

    def __iter__(self) -> Iterable:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def kind_of(self, name: str) -> Optional[str]:
        return self._kinds.get(name)

    def help_of(self, name: str) -> str:
        return self._help.get(name, "")

    def get(self, name: str, **labels: str):
        """Existing instrument or ``None`` (never creates)."""
        return self._instruments.get((name, _labelset(labels)))

    def value(self, name: str, **labels: str) -> float:
        """Scalar value of a counter/gauge; 0 when absent."""
        inst = self.get(name, **labels)
        if inst is None:
            return 0
        return inst.value  # type: ignore[union-attr]

    def total(self, name: str) -> float:
        """Sum of a counter family's values across all label sets."""
        return sum(
            inst.value for (n, _), inst in self._instruments.items()  # type: ignore[union-attr]
            if n == name and isinstance(inst, Counter)
        )

    def families(self) -> dict[str, list]:
        """Instruments grouped by metric name (sorted for stable output)."""
        out: dict[str, list] = {}
        for (name, _), inst in sorted(self._instruments.items()):
            out.setdefault(name, []).append(inst)
        return out

    # -- serialization ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable state of every instrument."""
        metrics = []
        for (name, labels), inst in sorted(self._instruments.items()):
            entry = {
                "name": name,
                "kind": inst.kind,  # type: ignore[attr-defined]
                "labels": {k: v for k, v in labels},
            }
            entry.update(inst.snapshot())  # type: ignore[attr-defined]
            metrics.append(entry)
        return {"metrics": metrics}


class _NullInstrument:
    """Shared do-nothing instrument handed out by :class:`NullRegistry`."""

    __slots__ = ()
    kind = "null"
    name = ""
    labels: LabelSet = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """Registry whose instruments do nothing — "telemetry disabled".

    Components can bind instruments unconditionally; when nobody
    registered a real registry, every ``inc``/``set``/``observe`` is a
    no-op on a shared singleton.
    """

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "", **labels: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, help: str = "", **kwargs):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"metrics": []}


#: The shared disabled registry.
NULL_REGISTRY = NullRegistry()


def merge_snapshots(*snapshots: dict) -> dict:
    """Fold registry snapshots together (e.g. across cell repetitions).

    Counters add; gauges keep the last value and the running max;
    histograms require identical bucket ladders and merge bucket-wise.
    """
    merged: dict[tuple[str, tuple], dict] = {}
    for snap in snapshots:
        for entry in snap.get("metrics", ()):
            key = (entry["name"], tuple(sorted(entry.get("labels", {}).items())))
            seen = merged.get(key)
            if seen is None:
                merged[key] = {
                    **entry,
                    "labels": dict(entry.get("labels", {})),
                    "buckets": list(entry.get("buckets", ())) or None,
                    "counts": list(entry.get("counts", ())) or None,
                }
                # strip the None placeholders for non-histograms
                if merged[key]["buckets"] is None:
                    merged[key].pop("buckets")
                    merged[key].pop("counts")
                continue
            kind = entry["kind"]
            if kind == "counter":
                seen["value"] += entry["value"]
            elif kind == "gauge":
                seen["value"] = entry["value"]
                seen["max"] = max(seen.get("max", 0), entry.get("max", 0))
            elif kind == "histogram":
                if seen.get("buckets") != entry.get("buckets"):
                    raise ValueError(
                        f"cannot merge histogram {entry['name']!r}: bucket ladders differ"
                    )
                seen["count"] += entry["count"]
                seen["sum"] += entry["sum"]
                mins = [m for m in (seen.get("min"), entry.get("min")) if m is not None]
                maxs = [m for m in (seen.get("max"), entry.get("max")) if m is not None]
                seen["min"] = min(mins) if mins else None
                seen["max"] = max(maxs) if maxs else None
                seen["counts"] = [a + b for a, b in zip(seen["counts"], entry["counts"])]
    return {"metrics": [merged[k] for k in sorted(merged)]}
