"""The gray-failure bug catalog (Table 1, §2.2).

The paper analyzes 150+ Cisco and Juniper bug reports and classifies the
resulting gray failures along two axes: which forwarding entries are
affected (one/some vs. all IP prefixes) and which packets per affected
entry are dropped (some vs. all).  This module carries the representative
examples of Table 1 as structured data, renders the table, and — the
operational part — maps each bug class to the executable failure model
that reproduces its drop behaviour in the simulator.

That mapping is what the integration suite uses to claim coverage of
"every failure class of Table 1": each catalog entry can be instantiated
as a live failure.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from .simulator.failures import (
    EntryLossFailure,
    PacketPropertyFailure,
    UniformLossFailure,
)
from .simulator.packet import Packet

__all__ = [
    "EntryScope",
    "PacketScope",
    "BugReport",
    "TABLE1_BUGS",
    "bugs_in_class",
    "failure_for",
    "render_table1",
]


class EntryScope(enum.Enum):
    """Which forwarding entries the bug affects (Table 1 rows)."""

    SOME_PREFIXES = "one or some IP prefixes"
    ALL_PREFIXES = "all IP prefixes"


class PacketScope(enum.Enum):
    """Which packets per affected entry are dropped (Table 1 columns)."""

    SOME_PACKETS = "some packets"
    ALL_PACKETS = "all packets"


@dataclass(frozen=True)
class BugReport:
    """One vendor bug report from the paper's reference list."""

    vendor: str
    bug_id: str
    description: str
    entry_scope: EntryScope
    packet_scope: PacketScope
    #: Hint for the failure factory: None, or a packet-predicate name.
    packet_selector: Optional[str] = None


#: Representative examples of Table 1 (references [1]-[13] of the paper).
TABLE1_BUGS: tuple[BugReport, ...] = (
    # ... some prefixes, some packets
    BugReport("Juniper", "PR1434567",
              "IPv6 neighbor solicitation packets dropped on PTX",
              EntryScope.SOME_PREFIXES, PacketScope.SOME_PACKETS,
              packet_selector="protocol"),
    BugReport("Juniper", "PR1398407",
              "BGP packets dropped under high CPU usage (SRX4600/SRX5000)",
              EntryScope.SOME_PREFIXES, PacketScope.SOME_PACKETS,
              packet_selector="protocol"),
    # ... some prefixes, all packets
    BugReport("Cisco", "CSCea91692",
              "PSA has a corrupted CEF entry, affecting IP-in-IP traffic",
              EntryScope.SOME_PREFIXES, PacketScope.ALL_PACKETS),
    BugReport("Cisco", "CSCti14290",
              "VPN aggregate label dmac corruption in hardware forwarding entry",
              EntryScope.SOME_PREFIXES, PacketScope.ALL_PACKETS),
    BugReport("Cisco", "CSCea91692/linecard",
              "Packets sent from a specific line card dropped",
              EntryScope.SOME_PREFIXES, PacketScope.ALL_PACKETS),
    # ... all prefixes, some packets
    BugReport("Cisco", "CSCtc33158",
              "7600-ES+40G3CXL drops random sized L2TPv3 packets with cookies",
              EntryScope.ALL_PREFIXES, PacketScope.SOME_PACKETS,
              packet_selector="size"),
    BugReport("Cisco", "CSCuv31196",
              "Random MPLS packet drops with IP ID field 0xE000 (ASR901)",
              EntryScope.ALL_PREFIXES, PacketScope.SOME_PACKETS,
              packet_selector="field"),
    BugReport("Juniper", "PR1313977",
              "Traffic loss when sending via the 40G interface",
              EntryScope.ALL_PREFIXES, PacketScope.SOME_PACKETS),
    BugReport("Juniper", "PR1309613",
              "Traffic drop on 'et' interfaces due to CRC errors",
              EntryScope.ALL_PREFIXES, PacketScope.SOME_PACKETS),
    # ... all prefixes, all packets
    BugReport("Juniper", "PR1296089",
              "Traffic from core not sent to locally attached circuit (QSN timeout)",
              EntryScope.ALL_PREFIXES, PacketScope.ALL_PACKETS),
    BugReport("Juniper", "PR1450545",
              "Traffic loss with ~80,000 routes in FIB",
              EntryScope.ALL_PREFIXES, PacketScope.ALL_PACKETS),
    BugReport("Juniper", "PR1441816",
              "Egress stream flush failure causing traffic blackhole",
              EntryScope.ALL_PREFIXES, PacketScope.ALL_PACKETS),
    BugReport("Juniper", "PR1459698",
              "Silent traffic drop after interface flap + DRD auto-recovery",
              EntryScope.ALL_PREFIXES, PacketScope.ALL_PACKETS),
)


def bugs_in_class(entry_scope: EntryScope, packet_scope: PacketScope) -> list[BugReport]:
    """All catalogued bugs in one Table 1 cell."""
    return [b for b in TABLE1_BUGS
            if b.entry_scope is entry_scope and b.packet_scope is packet_scope]


def failure_for(
    bug: BugReport,
    entries: Iterable[Any] = (),
    loss_rate: Optional[float] = None,
    start_time: float = 0.0,
    seed: int = 0,
):
    """Instantiate the failure model matching a bug's classification.

    Args:
        bug: the catalog entry.
        entries: affected entries (required for SOME_PREFIXES bugs).
        loss_rate: drop probability; defaults to 1.0 for ALL_PACKETS bugs
            and 0.3 for SOME_PACKETS bugs.
        start_time, seed: forwarded to the failure model.
    """
    if loss_rate is None:
        loss_rate = 1.0 if bug.packet_scope is PacketScope.ALL_PACKETS else 0.3

    if bug.entry_scope is EntryScope.SOME_PREFIXES:
        entries = list(entries)
        if not entries:
            raise ValueError(f"{bug.bug_id} affects specific prefixes: pass them")
        return EntryLossFailure(entries, loss_rate,
                                start_time=start_time, seed=seed)

    # ALL_PREFIXES bugs.
    if bug.packet_selector == "size":
        return PacketPropertyFailure(
            _random_size_predicate(seed), loss_rate,
            start_time=start_time, seed=seed,
        )
    if bug.packet_selector == "field":
        return PacketPropertyFailure(
            lambda p: (p.seq & 0xFFFF) == 0xE000, 1.0,
            start_time=start_time, seed=seed,
        )
    return UniformLossFailure(loss_rate, start_time=start_time, seed=seed)


def _random_size_predicate(seed: int):
    """'Random sized packets': a size-class predicate derived from the seed.

    Audited for FCY001: the RNG is a function-local seeded
    ``random.Random`` (allowed); the previously function-local ``import
    random`` is hoisted to module level so the factory is import-cost
    free on the failure-injection path.
    """
    rng = random.Random(seed)
    lo = rng.choice((64, 128, 256, 512))

    def predicate(packet: Packet) -> bool:
        return lo <= packet.size < lo * 2

    return predicate


def render_table1() -> str:
    """Render the Table 1 grid as text."""
    from .experiments.report import render_table

    rows = []
    for entry_scope in EntryScope:
        for packet_scope in PacketScope:
            for bug in bugs_in_class(entry_scope, packet_scope):
                rows.append([
                    entry_scope.value,
                    packet_scope.value,
                    bug.vendor,
                    bug.bug_id,
                    bug.description,
                ])
    return render_table(
        "Table 1 — representative gray-failure bug reports "
        "(Cisco and Juniper, from the paper's references)",
        ["affected entries", "dropped traffic", "vendor", "bug", "description"],
        rows,
    )


#: §2.1 — findings of the paper's anonymous NANOG operator survey
#: (46 respondents, 80 % operating a WAN).
SURVEY_FINDINGS: dict[str, str] = {
    "respondents": "46 operators; 80% operate a WAN",
    "affected": "≈90% consider gray failures an actual problem",
    "diagnose_daily": "13% need to diagnose gray failures every day",
    "diagnose_monthly": "46% at least once a month",
    "diagnose_semiannually": "73% at least once every half a year",
    "no_detector": "74% use no gray-failure detector at all",
    "debug_hours": "35% take hours to debug a gray failure",
    "debug_days": "20% take days",
    "debug_weeks": "20% take weeks",
    "method": "most common approach: manually dismissing assumptions one by one",
}


def render_survey() -> str:
    """Render the §2.1 survey findings."""
    from .experiments.report import render_table

    rows = [[k.replace("_", " "), v] for k, v in SURVEY_FINDINGS.items()]
    return render_table(
        "§2.1 — NANOG operator survey on gray failures",
        ["finding", "value"],
        rows,
    )


__all__ += ["SURVEY_FINDINGS", "render_survey"]
