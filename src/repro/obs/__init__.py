"""``repro.obs`` — causal detection tracing + operator surface.

Three layers (docs/TELEMETRY.md):

* :mod:`repro.obs.trace` — deterministic span collection per detection
  episode, JSONL + Chrome-trace exports (:class:`TraceCollector` rides
  every :class:`~repro.telemetry.Telemetry` session);
* :mod:`repro.obs.health` — :class:`FabricHealthReport` scoring each
  monitored link healthy/degraded/flagged/rerouted from monitor state
  and traces;
* :mod:`repro.obs.report` — the self-contained offline HTML dashboard
  behind ``fancy-repro report --html``.

Import discipline: this module eagerly exposes only the trace/schema
layer, which depends on nothing inside :mod:`repro` —
``repro.telemetry`` imports it, so pulling :mod:`repro.obs.health`
(which imports the fabric subsystem, which imports telemetry) in here
would be a cycle.  Health/report symbols resolve lazily.
"""

from __future__ import annotations

from typing import Any

from .schema import TRACE_SPAN_SCHEMA, validate_jsonl, validate_span, validate_spans
from .trace import (
    CATEGORIES,
    Span,
    TraceCollector,
    chrome_trace,
    chrome_trace_from_dicts,
    spans_to_jsonl,
)

__all__ = [
    "CATEGORIES",
    "Span",
    "TraceCollector",
    "chrome_trace",
    "chrome_trace_from_dicts",
    "spans_to_jsonl",
    "TRACE_SPAN_SCHEMA",
    "validate_span",
    "validate_spans",
    "validate_jsonl",
    "FabricHealthReport",
    "LinkHealth",
    "render_html",
]


def __getattr__(name: str) -> Any:
    if name in ("FabricHealthReport", "LinkHealth"):
        from . import health

        return getattr(health, name)
    if name == "render_html":
        from .report import render_html

        return render_html
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
