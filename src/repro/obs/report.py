"""Self-contained offline HTML dashboard for fabric health + traces.

:func:`render_html` produces one static page — inline CSS, no scripts,
no external assets (fonts, CDNs, images), so the artifact CI uploads
renders identically from a file:// URL on an air-gapped laptop.  Input
is the serialization-boundary shape the fabric experiments cache:
``{"name", "health" (FabricHealthReport.to_dict()), "spans" (span
dicts)}`` per section, so the renderer works equally off a live run or
a cached/unpickled result.

Layout per section: summary tiles → topology table → per-link health
table (status colour-coded) → one trace waterfall per detection episode
(spans as %-positioned bars on the episode's time axis, coloured by
category).
"""

from __future__ import annotations

import html
from typing import Any

__all__ = ["render_html"]

#: Category → bar colour (matches CATEGORIES in repro.obs.trace).
_CAT_COLORS = {
    "cause": "#b5651d",
    "fsm": "#8fa3bf",
    "protocol": "#4a6fa5",
    "control": "#9bc4e2",
    "counters": "#d9822b",
    "zoom": "#7b4fa6",
    "detect": "#c0392b",
    "reroute": "#27874f",
    "chaos": "#777777",
    "ladder": "#8e6fa8",
}

_STATUS_COLORS = {
    "healthy": "#27874f",
    "degraded": "#d9822b",
    "use_last_state": "#b8a53c",
    "freeze": "#8e6fa8",
    "flagged": "#c0392b",
    "declared": "#7b1f1f",
    "rerouted": "#4a6fa5",
}

_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 24px; background: #fafafa; color: #222; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 32px; }
h3 { font-size: 13px; margin: 18px 0 6px; }
table { border-collapse: collapse; margin: 8px 0 16px; font-size: 12px; }
th, td { border: 1px solid #ccc; padding: 3px 8px; text-align: left; }
th { background: #eee; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; margin: 12px 0; }
.tile { background: #fff; border: 1px solid #ddd; border-radius: 6px;
        padding: 8px 14px; }
.tile .v { font-size: 18px; font-weight: bold; }
.tile .k { font-size: 11px; color: #666; }
.badge { padding: 1px 7px; border-radius: 9px; color: #fff;
         font-size: 11px; }
.wf { position: relative; background: #fff; border: 1px solid #ddd;
      margin: 4px 0 14px; padding: 2px 0; }
.row { position: relative; height: 16px; }
.bar { position: absolute; height: 12px; top: 2px; border-radius: 2px;
       min-width: 3px; opacity: 0.9; }
.lbl { position: absolute; left: 4px; font-size: 10px; color: #333;
       line-height: 16px; white-space: nowrap; pointer-events: none; }
.axis { font-size: 10px; color: #666; margin-bottom: 2px; }
.legend span { margin-right: 10px; font-size: 11px; }
.note { font-size: 11px; color: #666; }
"""

#: Waterfalls rendered per section before truncating with a note.
_MAX_WATERFALLS = 12


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _badge(status: str) -> str:
    color = _STATUS_COLORS.get(status, "#555")
    return f'<span class="badge" style="background:{color}">{_esc(status)}</span>'


def _tiles(summary: dict[str, Any]) -> str:
    latency = summary.get("detection_latency", {})
    mean = latency.get("mean")
    tiles = [
        ("links", summary.get("links", 0)),
        ("sessions", summary.get("sessions_completed", 0)),
        ("detections", summary.get("detections", 0)),
        ("mean detect latency",
         "-" if mean is None else f"{mean * 1e3:.0f} ms"),
        ("unattributed (FP)", summary.get("unattributed_detections", 0)),
        ("sim time", f"{summary.get('sim_time', 0.0):.2f} s"),
    ]
    breaches = summary.get("invariant_breaches") or {}
    tiles.append(("invariant breaches", sum(breaches.values())))
    if summary.get("absorbed_exhaustions"):
        tiles.append(("absorbed exhaustions",
                      summary["absorbed_exhaustions"]))
    cells = "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="k">{_esc(k)}</div></div>' for k, v in tiles)
    # one colour-coded tile per status rung — the lattice at a glance
    status_cells = "".join(
        f'<div class="tile" style="border-top:3px solid '
        f'{_STATUS_COLORS.get(status, "#555")}">'
        f'<div class="v">{_esc(n)}</div>'
        f'<div class="k">{_esc(status)}</div></div>'
        for status, n in (summary.get("status") or {}).items())
    out = f'<div class="tiles">{cells}</div>'
    if status_cells:
        out += f'<div class="tiles">{status_cells}</div>'
    return out


def _topology_table(topology: list[dict[str, Any]]) -> str:
    if not topology:
        return '<p class="note">no topology recorded</p>'
    rows = "".join(
        f"<tr><td>{_esc(n['node'])}</td><td>{_esc(n['degree'])}</td>"
        f"<td>{_esc(', '.join(n['neighbors']))}</td>"
        f"<td>{_esc(n.get('monitored_out', 0))}</td></tr>"
        for n in topology)
    return ("<table><tr><th>node</th><th>degree</th><th>neighbors</th>"
            f"<th>monitored out-links</th></tr>{rows}</table>")


def _links_table(links: list[dict[str, Any]]) -> str:
    rows = []
    for link in links:
        latencies = link.get("detection_latencies", [])
        lat = f"{min(latencies) * 1e3:.0f} ms" if latencies else "-"
        detections = link.get("detections", {})
        det = ", ".join(f"{k}×{v}" for k, v in sorted(detections.items())) \
            or "-"
        rows.append(
            f"<tr><td>{_esc(link['link'])}</td>"
            f"<td>{_badge(link['status'])}</td>"
            f"<td>{_esc(link.get('sessions_completed', 0))}</td>"
            f"<td>{_esc(det)}</td>"
            f"<td>{_esc(', '.join(link.get('flagged_entries', [])) or '-')}"
            f"</td><td>{_esc(lat)}</td>"
            f"<td>{_esc(', '.join(link.get('rerouted_entries', [])) or '-')}"
            f"</td><td>{_esc(link.get('unattributed_detections', 0))}</td>"
            f"<td>{_esc(link.get('traces', 0))}/{_esc(link.get('spans', 0))}"
            f"</td></tr>")
    return ("<table><tr><th>link</th><th>status</th><th>sessions</th>"
            "<th>detections</th><th>flagged entries</th><th>latency</th>"
            "<th>rerouted</th><th>FP</th><th>traces/spans</th></tr>"
            + "".join(rows) + "</table>")


def _group_traces(spans: list[dict[str, Any]]
                  ) -> dict[str, list[dict[str, Any]]]:
    grouped: dict[str, list[dict[str, Any]]] = {}
    for span in spans:
        grouped.setdefault(span["trace"], []).append(span)
    return grouped


def _waterfall(trace_id: str, spans: list[dict[str, Any]]) -> str:
    t0 = min(s["start"] for s in spans)
    t1 = max(s["end"] if s["end"] is not None else s["start"] for s in spans)
    width = max(t1 - t0, 1e-9)
    rows = []
    for span in spans:
        end = span["end"] if span["end"] is not None else t1
        left = (span["start"] - t0) / width * 100.0
        bar_w = max((end - span["start"]) / width * 100.0, 0.35)
        color = _CAT_COLORS.get(span["cat"], "#555")
        attrs = "; ".join(f"{k}={v}" for k, v in span["attrs"].items())
        tip = (f"{span['cat']}:{span['name']} "
               f"t={span['start']:.4f}s d={end - span['start']:.4f}s"
               + (f" [{attrs}]" if attrs else ""))
        rows.append(
            f'<div class="row"><div class="bar" title="{_esc(tip)}" '
            f'style="left:{left:.2f}%;width:{bar_w:.2f}%;'
            f'background:{color}"></div>'
            f'<div class="lbl">{_esc(span["name"])}</div></div>')
    scope = spans[0].get("scope", "")
    head = (f"<h3>{_esc(trace_id)}"
            + (f' <span class="note">on {_esc(scope)}</span>' if scope else "")
            + "</h3>")
    axis = (f'<div class="axis">t = {t0:.4f} s … {t1:.4f} s '
            f"({(t1 - t0) * 1e3:.1f} ms, {len(spans)} spans)</div>")
    return head + axis + f'<div class="wf">{"".join(rows)}</div>'


def _legend() -> str:
    parts = "".join(
        f'<span><span class="badge" style="background:{color}">'
        f"{_esc(cat)}</span></span>"
        for cat, color in _CAT_COLORS.items())
    return f'<div class="legend">{parts}</div>'


def render_html(sections: list[dict[str, Any]],
                title: str = "FANcY fabric health report") -> str:
    """Render health + trace sections into one offline HTML page.

    Each section: ``{"name": str, "health": FabricHealthReport.to_dict()
    shape, "spans": [span dicts]}`` — ``health``/``spans`` may each be
    missing/empty.
    """
    body: list[str] = [f"<h1>{_esc(title)}</h1>"]
    for section in sections:
        body.append(f"<h2>{_esc(section.get('name', 'fabric'))}</h2>")
        health = section.get("health") or {}
        if health:
            body.append(_tiles(health.get("summary", {})))
            body.append("<h3>topology</h3>")
            body.append(_topology_table(health.get("topology", [])))
            body.append("<h3>per-link health</h3>")
            body.append(_links_table(health.get("links", [])))
        spans = section.get("spans") or []
        if spans:
            body.append("<h3>detection traces</h3>")
            body.append(_legend())
            grouped = _group_traces(spans)
            for i, (trace_id, trace_spans) in enumerate(grouped.items()):
                if i >= _MAX_WATERFALLS:
                    body.append(
                        f'<p class="note">… {len(grouped) - _MAX_WATERFALLS} '
                        "more trace(s) in the JSONL export</p>")
                    break
                body.append(_waterfall(trace_id, trace_spans))
        elif health:
            body.append('<p class="note">no detection traces recorded</p>')
    return ("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
            f"<title>{_esc(title)}</title><style>{_STYLE}</style></head>"
            f"<body>{''.join(body)}</body></html>\n")
