"""Causal detection traces: spans, episodes, deterministic exports.

The observability gap this closes (docs/TELEMETRY.md): metrics say *how
many* detections happened and timelines say *what each FSM did*, but
neither answers "why did link ``s3->s5`` flag entry 17 at t=2.31 s?".
A :class:`TraceCollector` strings the whole causal chain of one
*detection episode* — fault activation → counter divergence → zoom
descent → flag → reroute → recovery — into one trace, the span shape
NetSeer-style pipelines use to attribute per-flow events to data-plane
state changes.

Design constraints, in order:

* **Determinism.**  Spans are stamped with *simulated* time only, span
  ids are sequential per collector, and trace ids derive from the
  collector's scope plus an episode counter — two runs with the same
  seed serialize byte-identically (the fabric experiments assert this).
* **Free when healthy.**  A collector only records while an episode is
  open (:attr:`TraceCollector.active`); instrumentation points emit
  through ``if traces is not None and traces.active`` guards, so steady
  state pays one attribute check and no allocation.  Episodes open at
  fault-injection time (the chaos/experiment harnesses are the root
  cause) or lazily on an unattributed detection
  (:meth:`TraceCollector.ensure_episode` — exactly the false-positive
  sentinel case the health report surfaces).
* **Monotone.**  Like :class:`~repro.telemetry.timeline.StateTimeline`,
  a collector rejects backwards timestamps — one collector per
  simulation, a loud canary for cross-wired instrumentation.

Exports: :meth:`TraceCollector.to_jsonl` (one schema-checked object per
line, see :mod:`repro.obs.schema`) and :func:`chrome_trace` /
:func:`chrome_trace_from_dicts` (``chrome://tracing`` / Perfetto's
legacy JSON array format: one process, one thread per trace).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "CATEGORIES",
    "Span",
    "TraceCollector",
    "chrome_trace",
    "chrome_trace_from_dicts",
    "spans_to_jsonl",
]

#: The closed span-category vocabulary (schema-enforced, colour-coded in
#: the HTML report):
#:
#: ``cause``     episode root — a fault activation or, for unattributed
#:               episodes, the detection that opened them
#: ``fsm``       an FSM state transition (instant)
#: ``protocol``  one counting session on a sender FSM (durative)
#: ``control``   one control message put on the wire (instant)
#: ``counters``  upstream/downstream counter divergence (instant)
#: ``zoom``      one hash-tree exploration holding a frontier node
#:               (durative: activate → retreat/descend)
#: ``detect``    a failure flag raised by the monitor (instant)
#: ``reroute``   repair-path install (instant) and recovery — install →
#:               first packet steered (durative)
#: ``chaos``     fault-model side events, e.g. switch restarts (instant)
#: ``ladder``    a degradation-ladder rung change (instant) — the
#:               degraded-mode supervision layer (docs/ROBUSTNESS.md)
CATEGORIES = (
    "cause", "fsm", "protocol", "control", "counters", "zoom", "detect",
    "reroute", "chaos", "ladder",
)


def _json_safe(value: Any) -> Any:
    """Coerce an attribute value to a JSON-serializable equivalent.

    Tuples (hash paths) become lists, mappings recurse with string keys,
    and anything else falls back to ``repr`` — entry keys are arbitrary
    hashables, and the serialization boundary must never raise.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


@dataclass
class Span:
    """One node of a detection trace.

    ``end is None`` marks a span still open; instant events carry
    ``end == start``.  ``parent`` is ``None`` only for episode roots.
    """

    trace: str
    span: int
    parent: int | None
    name: str
    cat: str
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self, scope: str = "") -> dict[str, Any]:
        return {
            "scope": scope,
            "trace": self.trace,
            "span": self.span,
            "parent": self.parent,
            "name": self.name,
            "cat": self.cat,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
        }


class TraceCollector:
    """Deterministic span collector for one telemetry fork.

    Args:
        scope: identity prefix of minted trace ids — the fabric
            deployment forks one collector per monitored link with
            ``scope="A->B"``, so ``"s1->s2#001"`` names the first
            detection episode on that link.
        max_spans: hard bound; excess spans are counted in
            :attr:`suppressed` instead of recorded (mirrors the
            timeline's bounded suppression).
    """

    def __init__(self, scope: str = "", max_spans: int = 100_000) -> None:
        self.scope = scope
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.suppressed = 0
        self._episodes = 0
        self._next_span = 1
        self._root: Span | None = None
        self._open: dict[int, Span] = {}
        self._last_time = float("-inf")

    # -- episode lifecycle -------------------------------------------------

    @property
    def active(self) -> bool:
        """True while a detection episode is open (spans are recorded)."""
        return self._root is not None

    @property
    def trace_id(self) -> str | None:
        return self._root.trace if self._root is not None else None

    def begin_episode(self, time: float, cause: str, name: str | None = None,
                      **attrs: Any) -> str:
        """Open a new detection episode; returns its minted trace id.

        The episode's root span carries ``cause`` (``"fault"`` when a
        chaos/experiment harness opened it at injection time,
        ``"detection"``/``"divergence"`` for episodes auto-opened by
        :meth:`ensure_episode` — the unattributed/false-positive case).
        An already-open episode stays recorded; the new one becomes
        current, so overlapping faults each get their own trace.
        """
        self._episodes += 1
        trace = f"{self.scope or 'trace'}#{self._episodes:03d}"
        span_attrs = {"cause": cause}
        span_attrs.update(attrs)
        root = self._record(trace, None, name or cause, "cause", time,
                            end=None, attrs=span_attrs)
        self._open[root.span] = root
        self._root = root
        return trace

    def ensure_episode(self, time: float, cause: str, **attrs: Any) -> str:
        """Current trace id, opening an episode when none is active."""
        if self._root is not None:
            return self._root.trace
        return self.begin_episode(time, cause, **attrs)

    def end_episode(self, time: float) -> None:
        """Close the current episode and every span still open under it."""
        self._check_monotone(time)
        for span in list(self._open.values()):
            span.end = time
        self._open.clear()
        self._root = None

    def finalize(self, time: float) -> None:
        """Close all open spans at ``time`` (end-of-run flush)."""
        self.end_episode(time)

    # -- span emission -----------------------------------------------------

    def emit(self, name: str, time: float, category: str = "chaos",
             parent: int | None = None, **attrs: Any) -> int | None:
        """Record an instant span; no-op (returns None) when inactive."""
        root = self._root
        if root is None:
            return None
        span = self._record(root.trace, parent if parent is not None
                            else root.span, name, category, time, end=time,
                            attrs=attrs)
        return span.span

    def open_span(self, name: str, time: float, category: str = "chaos",
                  parent: int | None = None, **attrs: Any) -> int | None:
        """Open a durative span; close with :meth:`close_span`."""
        root = self._root
        if root is None:
            return None
        span = self._record(root.trace, parent if parent is not None
                            else root.span, name, category, time, end=None,
                            attrs=attrs)
        self._open[span.span] = span
        return span.span

    def close_span(self, span_id: int | None, time: float) -> None:
        """Close an open span; tolerates ``None`` and unknown ids.

        (A span opened while no episode was active returns ``None``;
        the matching close must be a silent no-op so call sites don't
        need to mirror the episode state.)
        """
        if span_id is None:
            return
        span = self._open.pop(span_id, None)
        if span is None:
            return
        self._check_monotone(time)
        span.end = time

    # -- internals ---------------------------------------------------------

    def _check_monotone(self, time: float) -> None:
        if time < self._last_time:
            raise ValueError(
                f"trace span at t={time} is earlier than the previously "
                f"recorded t={self._last_time} — collectors are monotone "
                "(one TraceCollector per simulation)"
            )
        self._last_time = time

    def _record(self, trace: str, parent: int | None, name: str, cat: str,
                start: float, end: float | None,
                attrs: dict[str, Any]) -> Span:
        self._check_monotone(start)
        span = Span(
            trace=trace, span=self._next_span, parent=parent, name=name,
            cat=cat, start=start, end=end,
            attrs={k: _json_safe(v) for k, v in attrs.items()},
        )
        self._next_span += 1
        if len(self.spans) >= self.max_spans:
            self.suppressed += 1
        else:
            self.spans.append(span)
        return span

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def traces(self) -> dict[str, list[Span]]:
        """Spans grouped by trace id, both in insertion order."""
        out: dict[str, list[Span]] = {}
        for span in self.spans:
            out.setdefault(span.trace, []).append(span)
        return out

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for span in self.spans:
            out[span.cat] = out.get(span.cat, 0) + 1
        return out

    # -- serialization -----------------------------------------------------

    def span_dicts(self) -> list[dict[str, Any]]:
        """Schema-shaped dicts (the JSONL/report/cache boundary)."""
        return [span.to_dict(self.scope) for span in self.spans]

    def to_jsonl(self) -> str:
        return spans_to_jsonl(self.span_dicts())


def spans_to_jsonl(span_dicts: Iterable[dict[str, Any]]) -> str:
    """Serialize span dicts as JSON Lines, key-sorted for byte stability."""
    lines = [json.dumps(d, sort_keys=True) for d in span_dicts]
    return "\n".join(lines) + ("\n" if lines else "")


def chrome_trace(collectors: Sequence[TraceCollector]) -> dict[str, Any]:
    """Chrome-trace (Perfetto-loadable) view of one or more collectors."""
    dicts: list[dict[str, Any]] = []
    for collector in collectors:
        dicts.extend(collector.span_dicts())
    return chrome_trace_from_dicts(dicts)


def chrome_trace_from_dicts(span_dicts: Iterable[dict[str, Any]]
                            ) -> dict[str, Any]:
    """Chrome-trace JSON object from schema-shaped span dicts.

    Each trace id becomes one "thread" (tid assigned in encounter order,
    named via metadata events); durative spans map to complete ``"X"``
    events, instants to ``"i"`` events.  Timestamps are microseconds, as
    the format requires.
    """
    events: list[dict[str, Any]] = []
    tids: dict[str, int] = {}
    open_horizon = 0.0
    for d in span_dicts:
        end = d["end"] if d["end"] is not None else d["start"]
        open_horizon = max(open_horizon, end)
    for d in span_dicts:
        trace = d["trace"]
        tid = tids.get(trace)
        if tid is None:
            tid = len(tids) + 1
            tids[trace] = tid
            label = f"{d['scope']} {trace}" if d["scope"] else trace
            events.append({
                "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
                "args": {"name": label},
            })
        start_us = d["start"] * 1e6
        end = d["end"] if d["end"] is not None else open_horizon
        args = dict(d["attrs"])
        args["span"] = d["span"]
        if d["parent"] is not None:
            args["parent"] = d["parent"]
        if end > d["start"]:
            events.append({
                "ph": "X", "name": d["name"], "cat": d["cat"], "pid": 1,
                "tid": tid, "ts": start_us, "dur": (end - d["start"]) * 1e6,
                "args": args,
            })
        else:
            events.append({
                "ph": "i", "name": d["name"], "cat": d["cat"], "pid": 1,
                "tid": tid, "ts": start_us, "s": "t", "args": args,
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}
