"""Fabric health: per-link scored status rolled up from metrics + traces.

:class:`FabricHealthReport` condenses what a :class:`~repro.fabric.
deployment.FabricDeployment` knows after (or during) a run into the
operator's status lattice, worst evidence wins:

``rerouted``        the controller installed a repair path around this
                    link
``declared``        LINK_DOWN stands — the protocol declared the link
                    dead (or its degradation ladder walked to DECLARED)
``flagged``         the monitor holds an active flag (dedicated entry
                    or tree leaf) nobody rerouted yet
``freeze``          the degradation ladder froze window advancement:
                    control-channel impairment persisted and flags are
                    held for re-validation (docs/ROBUSTNESS.md)
``use_last_state``  the ladder is serving the last verified counter
                    snapshot while the control channel recovers
``degraded``        protocol hardening fired (corrupt/stale rejections),
                    a switch restarted, an invariant breached, or the
                    telemetry timeline truncated — the link works but
                    something is off or under-observed
``healthy``         none of the above

Detection latency is derived from traces, not wall-math: each episode
whose root cause is a ``fault`` span contributes ``first flag span −
root span`` (the paper's injection→flag latency, per link, per
episode).  Episodes whose root is *not* a fault were opened lazily by a
detection with no known cause — the false-positive sentinel count the
ring soak watches (``s2->s3`` must stay at zero).

Everything here reads per-link state held on the monitors and their
private telemetry forks; the shared metrics registry is deliberately
not consulted for per-link numbers (its counters aggregate across all
64 forks of a fat tree and cannot be re-attributed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.output import FailureKind

__all__ = ["STATUSES", "LinkHealth", "FabricHealthReport"]

#: Status lattice, benign to severe (worst evidence wins).
STATUSES = ("healthy", "degraded", "use_last_state", "freeze", "flagged",
            "declared", "rerouted")


@dataclass
class LinkHealth:
    """Scored health of one monitored directed link."""

    link_id: str
    status: str
    flagged_entries: list[str] = field(default_factory=list)
    flagged_leaf_paths: int = 0
    link_down: bool = False
    detections: dict[str, int] = field(default_factory=dict)
    sessions_completed: int = 0
    rejected_corrupt: int = 0
    rejected_stale: int = 0
    restarts: int = 0
    timeline_truncated: int = 0
    rerouted_entries: list[str] = field(default_factory=list)
    #: episodes rooted at a fault span, with their injection→flag latency
    #: (None while undetected).
    detection_latencies: list[float] = field(default_factory=list)
    #: detection-opened episodes with no fault root — FP-sentinel signal.
    unattributed_detections: int = 0
    traces: int = 0
    spans: int = 0
    #: degradation-ladder rung (``None`` when no ladder is attached).
    ladder_state: str | None = None
    #: exhaustions the ladder absorbed instead of declaring LINK_DOWN.
    absorbed_exhaustions: int = 0
    #: online invariant breaches on this link, per invariant id.
    invariant_breaches: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "link": self.link_id,
            "status": self.status,
            "flagged_entries": list(self.flagged_entries),
            "flagged_leaf_paths": self.flagged_leaf_paths,
            "link_down": self.link_down,
            "detections": dict(self.detections),
            "sessions_completed": self.sessions_completed,
            "rejected_corrupt": self.rejected_corrupt,
            "rejected_stale": self.rejected_stale,
            "restarts": self.restarts,
            "timeline_truncated": self.timeline_truncated,
            "rerouted_entries": list(self.rerouted_entries),
            "detection_latencies": list(self.detection_latencies),
            "unattributed_detections": self.unattributed_detections,
            "traces": self.traces,
            "spans": self.spans,
            "ladder_state": self.ladder_state,
            "absorbed_exhaustions": self.absorbed_exhaustions,
            "invariant_breaches": dict(self.invariant_breaches),
        }


def _fsm_sum(monitor: Any, attr: str) -> int:
    total = 0
    for fsm in (monitor.dedicated_sender, monitor.tree_sender,
                monitor.dedicated_receiver, monitor.tree_receiver):
        if fsm is not None:
            total += getattr(fsm, attr, 0)
    return total


def _trace_stats(collector: Any) -> tuple[list[float], int, int, int]:
    """(fault latencies, unattributed episodes, n_traces, n_spans)."""
    latencies: list[float] = []
    unattributed = 0
    grouped = collector.traces()
    for spans in grouped.values():
        root = spans[0]
        first_flag = next((s for s in spans if s.cat == "detect"), None)
        if root.cat == "cause" and root.attrs.get("cause") == "fault":
            if first_flag is not None:
                latencies.append(first_flag.start - root.start)
        elif first_flag is not None or root.cat == "cause":
            unattributed += 1
    return latencies, unattributed, len(grouped), len(collector.spans)


class FabricHealthReport:
    """Per-link :class:`LinkHealth` rows plus a fabric-wide summary."""

    def __init__(self, links: list[LinkHealth],
                 topology: list[dict[str, Any]] | None = None,
                 sim_time: float = 0.0) -> None:
        self.links = links
        self.topology = topology or []
        self.sim_time = sim_time

    # -- construction ------------------------------------------------------

    @classmethod
    def from_deployment(cls, deployment: Any, controller: Any = None,
                        sim_time: float | None = None,
                        ladders: dict[str, Any] | None = None,
                        breaches: dict[str, dict[str, int]] | None = None,
                        ) -> "FabricHealthReport":
        """Score every monitored link of a fabric deployment.

        ``controller`` (a :class:`~repro.fabric.reroute.
        FabricRerouteController`) contributes the rerouted status;
        without one, flags stay at ``flagged``.  ``ladders`` maps link
        id to its :class:`~repro.service.ladder.DegradationLadder` (the
        serve supervisor's degraded-mode rungs become statuses);
        ``breaches`` maps link id to per-invariant breach counts from
        the online supervision layer.
        """
        rerouted_by_link: dict[str, list[str]] = {}
        if controller is not None:
            for (link_id, entry) in controller.reroute_times:
                rerouted_by_link.setdefault(link_id, []).append(repr(entry))
        completed = deployment.sessions_completed()

        links: list[LinkHealth] = []
        for link_id, monitor in deployment.monitors.items():
            detections: dict[str, int] = {}
            for report in monitor.log.reports:
                kind = report.kind.value
                detections[kind] = detections.get(kind, 0) + 1
            telemetry = monitor.telemetry
            truncated = 0
            latencies: list[float] = []
            unattributed = n_traces = n_spans = 0
            if telemetry is not None:
                truncated = getattr(telemetry.timeline, "suppressed", 0)
                collector = getattr(telemetry, "traces", None)
                if collector is not None:
                    latencies, unattributed, n_traces, n_spans = (
                        _trace_stats(collector))
            health = LinkHealth(
                link_id=link_id,
                status="healthy",
                flagged_entries=[repr(e) for e in monitor.flagged_entries()],
                flagged_leaf_paths=len(monitor.flagged_leaf_paths()),
                link_down=bool(detections.get(FailureKind.LINK_DOWN.value)),
                detections=detections,
                sessions_completed=completed.get(link_id, 0),
                rejected_corrupt=_fsm_sum(monitor, "rejected_corrupt"),
                rejected_stale=_fsm_sum(monitor, "rejected_stale"),
                restarts=_fsm_sum(monitor, "restarts"),
                timeline_truncated=truncated,
                rerouted_entries=sorted(rerouted_by_link.get(link_id, [])),
                detection_latencies=latencies,
                unattributed_detections=unattributed,
                traces=n_traces,
                spans=n_spans,
            )
            ladder = (ladders or {}).get(link_id)
            if ladder is not None:
                health.ladder_state = ladder.state.value
                health.absorbed_exhaustions = sum(
                    fsm.absorbed_exhaustions
                    for fsm in (monitor.dedicated_sender, monitor.tree_sender)
                    if fsm is not None)
            health.invariant_breaches = dict(
                (breaches or {}).get(link_id, {}))
            health.status = _score(health)
            links.append(health)

        topology = []
        graph = getattr(deployment.net, "graph", None)
        if graph is not None:
            monitored = set(deployment.monitors)
            for node in graph.nodes:
                neighbors = list(graph.neighbors(node))
                topology.append({
                    "node": node,
                    "degree": len(neighbors),
                    "neighbors": neighbors,
                    "monitored_out": sum(
                        1 for n in neighbors if f"{node}->{n}" in monitored),
                })
        if sim_time is None:
            sim_time = deployment.net.sim.now
        return cls(links, topology=topology, sim_time=sim_time)

    # -- queries -----------------------------------------------------------

    def status_of(self, link_id: str) -> str:
        for link in self.links:
            if link.link_id == link_id:
                return link.status
        raise KeyError(link_id)

    def counts(self) -> dict[str, int]:
        """Links per status, every status present (ladder order)."""
        out = {status: 0 for status in STATUSES}
        for link in self.links:
            out[link.status] += 1
        return out

    def summary(self) -> dict[str, Any]:
        latencies = [lat for link in self.links
                     for lat in link.detection_latencies]
        breach_totals: dict[str, int] = {}
        for link in self.links:
            for invariant, n in link.invariant_breaches.items():
                breach_totals[invariant] = breach_totals.get(invariant, 0) + n
        return {
            "invariant_breaches": dict(sorted(breach_totals.items())),
            "absorbed_exhaustions": sum(link.absorbed_exhaustions
                                        for link in self.links),
            "sim_time": self.sim_time,
            "links": len(self.links),
            "status": self.counts(),
            "detections": sum(sum(link.detections.values())
                              for link in self.links),
            "sessions_completed": sum(link.sessions_completed
                                      for link in self.links),
            "unattributed_detections": sum(link.unattributed_detections
                                           for link in self.links),
            "detection_latency": {
                "count": len(latencies),
                "min": min(latencies) if latencies else None,
                "mean": (sum(latencies) / len(latencies)) if latencies
                        else None,
                "max": max(latencies) if latencies else None,
            },
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "summary": self.summary(),
            "links": [link.to_dict() for link in self.links],
            "topology": list(self.topology),
        }

    def render_text(self) -> str:
        """Compact fixed-width table (the CLI's non-HTML output)."""
        summary = self.summary()
        status = " ".join(f"{k}={v}" for k, v in summary["status"].items())
        lines = [
            f"fabric health @ t={summary['sim_time']:.2f}s — "
            f"{summary['links']} links, {status}",
            f"{'link':<14} {'status':<9} {'sessions':>8} {'flags':>6} "
            f"{'latency':>9}  rerouted",
        ]
        for link in self.links:
            lat = (f"{min(link.detection_latencies) * 1e3:.0f} ms"
                   if link.detection_latencies else "-")
            flags = len(link.flagged_entries) + link.flagged_leaf_paths
            lines.append(
                f"{link.link_id:<14} {link.status:<9} "
                f"{link.sessions_completed:>8} {flags:>6} {lat:>9}  "
                f"{','.join(link.rerouted_entries) or '-'}"
            )
        if summary["unattributed_detections"]:
            lines.append(f"!! {summary['unattributed_detections']} "
                         "unattributed detection(s) — check FP sentinels")
        if summary["invariant_breaches"]:
            counts = " ".join(f"{k}={v}" for k, v in
                              summary["invariant_breaches"].items())
            lines.append(f"!! invariant breaches: {counts}")
        return "\n".join(lines)


def _score(health: LinkHealth) -> str:
    if health.rerouted_entries:
        return "rerouted"
    if health.link_down or health.ladder_state == "declared":
        return "declared"
    if (health.flagged_entries or health.flagged_leaf_paths
            or health.detections):
        return "flagged"
    if health.ladder_state == "freeze":
        return "freeze"
    if health.ladder_state == "use_last_state":
        return "use_last_state"
    if (health.rejected_corrupt or health.rejected_stale or health.restarts
            or health.timeline_truncated or health.unattributed_detections
            or health.invariant_breaches):
        return "degraded"
    return "healthy"
