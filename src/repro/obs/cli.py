"""``fancy-repro report`` — health dashboard + trace validation CLI.

Two modes:

* ``fancy-repro report [--html FILE] [--traces-out FILE]`` runs the
  fabric closed-loop experiments with tracing on (same cache semantics
  as ``fancy-repro fabric --trace``) and writes the self-contained
  offline dashboard, printing each case's health table to stdout;
* ``fancy-repro report --validate FILE [FILE ...]`` schema-checks trace
  JSONL exports (the CI ``fabric-smoke`` gate) and exits non-zero on
  the first invalid document.
"""

from __future__ import annotations

import argparse
import pathlib
from collections.abc import Sequence

from .schema import validate_jsonl

__all__ = ["main"]

# Kept in sync with repro.runtime.DEFAULT_CACHE_DIR; spelled out here so
# the --validate path never imports the runtime (and with it the whole
# simulator/experiment stack).
_DEFAULT_CACHE_DIR = ".fancy-cache"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fancy-repro report",
        description="Render the fabric health dashboard (HTML + trace "
                    "JSONL) or validate trace exports against the span "
                    "schema.",
    )
    parser.add_argument(
        "--validate", nargs="+", metavar="FILE", default=None,
        help="validate trace JSONL file(s) against the span schema and "
             "exit (no experiment run)")
    parser.add_argument(
        "--html", metavar="FILE", default="fabric-report.html",
        help="dashboard output path (default: fabric-report.html)")
    parser.add_argument(
        "--traces-out", metavar="FILE", default=None,
        help="also write every span of every case as one JSONL file")
    parser.add_argument(
        "--case", choices=("ring", "fat_tree", "both"), default="both",
        help="which closed-loop case(s) to run (default: both)")
    parser.add_argument("--full", action="store_true",
                        help="paper-faithful durations instead of quick")
    parser.add_argument("--seed", type=int, default=0, metavar="S")
    parser.add_argument("--workers", type=int, default=None, metavar="N")
    parser.add_argument("--cache-dir", metavar="DIR",
                        default=_DEFAULT_CACHE_DIR)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--quiet", action="store_true")
    return parser


def _validate_files(paths: list[str]) -> int:
    status = 0
    for path in paths:
        text = pathlib.Path(path).read_text()
        problems = validate_jsonl(text)
        n_lines = sum(1 for line in text.splitlines() if line.strip())
        if problems:
            status = 1
            print(f"{path}: INVALID ({len(problems)} problem(s) "
                  f"over {n_lines} span(s))")
            for problem in problems[:20]:
                print(f"  {problem}")
            if len(problems) > 20:
                print(f"  ... and {len(problems) - 20} more")
        else:
            print(f"{path}: ok ({n_lines} span(s))")
    return status


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(list(argv) if argv is not None else None)
    if args.validate:
        return _validate_files(args.validate)

    # Imported lazily: the validate path must not drag the experiment
    # stack (simulator, fabric, runtime executor) into the process.
    from ..experiments import fabric
    from ..runtime import RuntimeContext
    from .report import render_html
    from .trace import spans_to_jsonl

    runtime = RuntimeContext(
        workers=args.workers,
        cache_dir=None if args.no_cache else args.cache_dir,
        seed=args.seed,
        progress=not args.quiet,
    )
    config = fabric.FabricExpConfig(trace=True, seed=args.seed)
    cases = (("ring", "fat_tree") if args.case == "both" else (args.case,))
    result = fabric.run(config=config, quick=not args.full, runtime=runtime,
                        cases=cases)

    sections = []
    all_spans: list[dict] = []
    for case, data in result["cases"].items():
        obs = data.get("obs") or {}
        sections.append({"name": case, "health": obs.get("health"),
                         "spans": obs.get("spans")})
        all_spans.extend(obs.get("spans") or [])
        summary = (obs.get("health") or {}).get("summary")
        if summary is not None:
            status = " ".join(f"{k}={v}"
                              for k, v in summary["status"].items())
            print(f"[{case}] {summary['links']} links: {status}; "
                  f"{summary['detections']} detection(s), "
                  f"{summary['unattributed_detections']} unattributed")

    html_path = pathlib.Path(args.html)
    html_path.parent.mkdir(parents=True, exist_ok=True)
    html_path.write_text(render_html(sections))
    print(f"wrote {html_path}")
    if args.traces_out is not None:
        traces_path = pathlib.Path(args.traces_out)
        traces_path.parent.mkdir(parents=True, exist_ok=True)
        traces_path.write_text(spans_to_jsonl(all_spans))
        print(f"wrote {traces_path} ({len(all_spans)} span(s))")
    if result["errors"]:
        print(f"{len(result['errors'])} case(s) failed: "
              f"{sorted(result['errors'])}")
        return 1
    return 0
