"""Trace span schema + a dependency-free validator.

:data:`TRACE_SPAN_SCHEMA` is the JSON-Schema document describing one
line of a trace JSONL export (docs/TELEMETRY.md reproduces it); the CI
``fabric-smoke`` job validates every emitted trace line against it via
``fancy-repro report --validate``.  The container image deliberately has
no ``jsonschema`` package, so :func:`validate_span` implements the
subset the schema actually uses (types, required keys, enums, closed
properties) in plain python, plus the two cross-field constraints JSON
Schema cannot express cheaply: ``end >= start`` and non-negative sim
time.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from typing import Any

from .trace import CATEGORIES

__all__ = ["TRACE_SPAN_SCHEMA", "validate_span", "validate_spans",
           "validate_jsonl"]

#: JSON Schema (draft-07 vocabulary) for one serialized span.
TRACE_SPAN_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "FANcY detection-trace span",
    "type": "object",
    "required": ["scope", "trace", "span", "parent", "name", "cat",
                 "start", "end", "attrs"],
    "additionalProperties": False,
    "properties": {
        "scope": {"type": "string"},
        "trace": {"type": "string", "minLength": 1},
        "span": {"type": "integer", "minimum": 1},
        "parent": {"type": ["integer", "null"], "minimum": 1},
        "name": {"type": "string", "minLength": 1},
        "cat": {"type": "string", "enum": list(CATEGORIES)},
        "start": {"type": "number", "minimum": 0},
        "end": {"type": ["number", "null"], "minimum": 0},
        "attrs": {"type": "object"},
    },
}

_REQUIRED: tuple[str, ...] = tuple(TRACE_SPAN_SCHEMA["required"])


def _is_number(value: Any) -> bool:
    # bool is an int subclass; a span stamped `True` is a bug, not a time.
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_span(obj: Any) -> list[str]:
    """Problems with one decoded span object; empty list means valid."""
    if not isinstance(obj, dict):
        return [f"span must be an object, got {type(obj).__name__}"]
    problems = [f"missing required key {key!r}"
                for key in _REQUIRED if key not in obj]
    problems.extend(f"unknown key {key!r}" for key in obj
                    if key not in _REQUIRED)
    if problems:
        return problems

    if not isinstance(obj["scope"], str):
        problems.append("scope must be a string")
    if not isinstance(obj["trace"], str) or not obj["trace"]:
        problems.append("trace must be a non-empty string")
    if not isinstance(obj["span"], int) or isinstance(obj["span"], bool) \
            or obj["span"] < 1:
        problems.append("span must be an integer >= 1")
    parent = obj["parent"]
    if parent is not None and (not isinstance(parent, int)
                               or isinstance(parent, bool) or parent < 1):
        problems.append("parent must be null or an integer >= 1")
    if not isinstance(obj["name"], str) or not obj["name"]:
        problems.append("name must be a non-empty string")
    if obj["cat"] not in CATEGORIES:
        problems.append(f"cat {obj['cat']!r} not in {CATEGORIES}")
    if not _is_number(obj["start"]) or obj["start"] < 0:
        problems.append("start must be a number >= 0")
    end = obj["end"]
    if end is not None:
        if not _is_number(end):
            problems.append("end must be null or a number")
        elif _is_number(obj["start"]) and end < obj["start"]:
            problems.append(f"end {end} precedes start {obj['start']}")
    if not isinstance(obj["attrs"], dict):
        problems.append("attrs must be an object")
    if parent is not None and isinstance(obj.get("span"), int) \
            and not isinstance(parent, bool) and isinstance(parent, int) \
            and parent >= obj["span"]:
        problems.append(f"parent {parent} does not precede span {obj['span']}")
    return problems


def validate_spans(objs: Iterable[Any]) -> list[str]:
    """Validate many spans; problems are prefixed with their index."""
    problems: list[str] = []
    for i, obj in enumerate(objs):
        problems.extend(f"span[{i}]: {p}" for p in validate_span(obj))
    return problems


def validate_jsonl(text: str) -> list[str]:
    """Validate a trace JSONL document line by line (1-based line refs)."""
    problems: list[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: invalid JSON ({exc.msg})")
            continue
        problems.extend(f"line {lineno}: {p}" for p in validate_span(obj))
    return problems
